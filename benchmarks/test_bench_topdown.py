"""B3 — top-down (goal-directed) vs bottom-up on ground queries.

On a parts hierarchy, bottom-up computes everything; top-down proves one
goal.  The crossover the paper's Section 3.2 hints at: goal-directed wins
when you need one answer, loses when you need the whole relation."""

import pytest

from repro import parse_program
from repro.core import atom, const, var_a
from repro.engine import Database, TopDownProver
from repro.engine.setops import with_set_builtins
from repro.workloads import chain_graph


TC_SRC = """
t(X, Y) :- e(X, Y).
t(X, Z) :- e(X, Y), t(Y, Z).
"""


def chain_db(n):
    db = Database()
    for u, v in chain_graph(n):
        db.add("e", u, v)
    return db


@pytest.mark.parametrize("n", [16, 32])
def test_bottom_up_full_closure(benchmark, evaluate, n):
    db = chain_db(n)
    program = parse_program(TC_SRC)
    result = benchmark(lambda: evaluate(program, db))
    assert len(result.relation("t")) == n * (n + 1) // 2


@pytest.mark.parametrize("n", [16, 32])
def test_top_down_single_goal(benchmark, n):
    db = chain_db(n)
    program = parse_program(TC_SRC)
    prover = TopDownProver(program, database=db, max_depth=4 * n + 20)
    goal = atom("t", const("v0"), const(f"v{n}"))

    assert benchmark(lambda: prover.holds(goal))


@pytest.mark.parametrize("n", [16, 32])
def test_top_down_all_answers(benchmark, n):
    db = chain_db(n)
    program = parse_program(TC_SRC)
    prover = TopDownProver(program, database=db, max_depth=4 * n + 20)
    goal = atom("t", const("v0"), var_a("W"))

    answers = benchmark(lambda: prover.ask(goal))
    assert len(answers) == n
