"""B-durability — WAL-append overhead on the churn workload.

The durable write path adds, per committed batch: net-effect prediction,
record encoding (atoms → verified concrete syntax → checksummed JSON
line) and an appending write (+fsync under the ``always`` policy).  The
acceptance bound from the issue: the **os-buffered** durable writer stays
within 2× of the in-memory writer on the transitive-closure churn
workload — i.e. logging costs less than the maintenance sweep it
protects.  The fsync'd policy is also timed (it is dominated by device
sync latency, so it is recorded but not floor-asserted), as is recovery
(checkpoint load + WAL replay).
"""

import os
import shutil
import tempfile
import time

import pytest

from repro import parse_program
from repro.engine import Database, VersionedModel
from repro.engine.setops import with_set_builtins
from repro.storage import DurableModel
from repro.workloads import edge_churn, random_graph

TC = parse_program("""
t(X, Y) :- e(X, Y).
t(X, Z) :- e(X, Y), t(Y, Z).
""")

N_NODES, N_EDGES = 24, 60


def _db(edges):
    db = Database()
    for u, v in edges:
        db.add("e", u, v)
    return db


def _batch(seed=11):
    edges = random_graph(N_NODES, N_EDGES, seed=3)
    return edges, edge_churn(
        edges, n_batches=1, batch_size=1, n_nodes=N_NODES, seed=seed
    )[0]


def _churn(model, batch):
    """One batch + its exact inverse: the model returns to base state, so
    rounds are identical and one round times two committed writes."""
    model.apply_delta(adds=batch.adds, dels=batch.dels)
    model.apply_delta(adds=batch.dels, dels=batch.adds)


@pytest.fixture()
def store():
    d = tempfile.mkdtemp(prefix="lps-bench-durability-")
    yield d
    shutil.rmtree(d, ignore_errors=True)


def test_churn_in_memory(benchmark):
    """Baseline: the in-memory versioned writer."""
    edges, batch = _batch()
    model = VersionedModel(TC, _db(edges), builtins=with_set_builtins())
    benchmark(_churn, model, batch)
    assert model.current.relation("t")


def test_churn_durable_buffered(benchmark, store):
    """Durable writer, fsync="never" (OS-buffered appends)."""
    edges, batch = _batch()
    model = DurableModel(
        TC, store, _db(edges), builtins=with_set_builtins(),
        fsync="never", checkpoint_every=None,
    )
    benchmark(_churn, model, batch)
    model.close()
    assert model.current.relation("t")


def test_churn_durable_fsync(benchmark, store):
    """Durable writer, fsync="always" (every ack hits stable storage)."""
    edges, batch = _batch()
    model = DurableModel(
        TC, store, _db(edges), builtins=with_set_builtins(),
        fsync="always", checkpoint_every=None,
    )
    benchmark(_churn, model, batch)
    model.close()
    assert model.current.relation("t")


def test_recover_after_churn(benchmark, store):
    """Recovery cost: latest checkpoint + replay of a 64-record WAL."""
    edges = random_graph(N_NODES, N_EDGES, seed=3)
    batches = edge_churn(edges, n_batches=64, batch_size=1,
                         n_nodes=N_NODES, seed=11)
    model = DurableModel(
        TC, store, _db(edges), builtins=with_set_builtins(),
        fsync="never", checkpoint_every=None,
    )
    for b in batches:
        model.apply_delta(adds=b.adds, dels=b.dels)
    expected = model.version
    model.close()

    def recover():
        m = DurableModel.recover(
            store, builtins=with_set_builtins(), fsync="never",
            checkpoint_every=None,
        )
        assert m.version == expected
        m.close()

    benchmark(recover)


@pytest.mark.skipif(
    os.environ.get("SKIP_TIMING_ASSERTS") == "1",
    reason="wall-clock assertion disabled (coverage-instrumented CI job; "
           "the dedicated benchmarks job still enforces it)",
)
def test_wal_overhead_floor():
    """Acceptance floor: durable (buffered) churn ≤2× in-memory churn."""
    edges, batch = _batch()

    def best_of(make, k=5, rounds=20):
        best = float("inf")
        for _ in range(k):
            model, cleanup = make()
            try:
                _churn(model, batch)           # warm up
                t0 = time.perf_counter()
                for _ in range(rounds):
                    _churn(model, batch)
                best = min(best, (time.perf_counter() - t0) / rounds)
            finally:
                cleanup()
        return best

    def in_memory():
        m = VersionedModel(TC, _db(edges), builtins=with_set_builtins())
        return m, lambda: None

    def durable():
        d = tempfile.mkdtemp(prefix="lps-bench-durability-")

        def cleanup():
            m.close()
            shutil.rmtree(d, ignore_errors=True)

        m = DurableModel(
            TC, d, _db(edges), builtins=with_set_builtins(),
            fsync="never", checkpoint_every=None,
        )
        return m, cleanup

    base = best_of(in_memory)
    logged = best_of(durable)
    slowdown = logged / base
    assert slowdown <= 2.0, (
        f"WAL-append overhead {slowdown:.2f}x exceeds the 2x budget: "
        f"{base*1e3:.3f} ms/round in-memory vs {logged*1e3:.3f} ms/round "
        "durable (buffered)"
    )
