"""B-columnar — vectorized ID-column kernels vs the row executor.

The columnar executor (``engine/columnar.py``) must earn its keep where
set-at-a-time plans are join-bound: the same compiled plans evaluated
with ``EvalOptions.columnar`` on and off, on

* a selective join projection (``q(X) :- r(X,Y), s(Y,Z)`` — the head
  projects away the join width, so the ID-side dedup collapses the
  output before any decode),
* a multi-query program (four selective rules over the same two
  relations — the relation columns are encoded once and reused),
* transitive closure of a dense random digraph (many semi-naive rounds
  of delta-pinned joins),
* a wide-output join (``q(X, Z)``) where decode cost bounds the win —
  kept as coverage that output-heavy plans do not regress,
* repeated session queries against a warm query-service model (the
  relation columns are already cached, so this isolates plan execution
  from evaluator construction and bulk fact loading).

``test_columnar_speedup_floor`` enforces the acceptance criterion — the
columnar path at least 2× faster than the row executor on at least two
workloads — with min-of-k on both sides so scheduler noise cancels.
Record results under the ``columnar`` label::

    python benchmarks/run_benchmarks.py --label columnar --files test_bench_columnar.py
"""

import os
import random
import time

import pytest

from repro import parse_program
from repro.engine import Database, Evaluator
from repro.engine.columnar import HAS_NUMPY
from repro.engine.evaluation import EvalOptions
from repro.engine.setops import with_set_builtins

MODES = {"columnar": True, "row": False}

JOIN_SELECT = parse_program("q(X) :- r(X, Y), s(Y, Z).")
JOIN_WIDE = parse_program("q(X, Z) :- r(X, Y), s(Y, Z).")
MULTI = parse_program("""
q1(X) :- r(X, Y), s(Y, Z).
q2(Z) :- r(X, Y), s(Y, Z).
q3(Y) :- r(X, Y), s(Y, X).
q4(Y) :- r(X, Y), s(Y, Z), X = Z.
""")
TC = parse_program("""
t(X, Y) :- e(X, Y).
t(X, Z) :- e(X, Y), t(Y, Z).
""")


def join_db(n, keys, seed=0):
    rng = random.Random(seed)
    db = Database()
    for _ in range(n):
        db.add("r", f"a{rng.randrange(keys)}", f"b{rng.randrange(keys)}")
        db.add("s", f"b{rng.randrange(keys)}", f"c{rng.randrange(keys)}")
    return db


def rand_graph_db(n_nodes, n_edges, seed=2):
    rng = random.Random(seed)
    db = Database()
    for _ in range(n_edges):
        db.add("e", f"n{rng.randrange(n_nodes)}", f"n{rng.randrange(n_nodes)}")
    return db


def run(program, db, columnar: bool):
    options = EvalOptions(compile_plans=True, columnar=columnar)
    return Evaluator(program, db, builtins=with_set_builtins(),
                     options=options).run()


SERVER_QUERIES = [
    "r(X, Y), s(Y, X)",
    "r(X, Y), s(Y, Z), u(Z, X)",
]


def triple_db(n, keys, seed=1):
    rng = random.Random(seed)
    db = Database()
    for _ in range(n):
        db.add("r", f"k{rng.randrange(keys)}", f"k{rng.randrange(keys)}")
        db.add("s", f"k{rng.randrange(keys)}", f"k{rng.randrange(keys)}")
        db.add("u", f"k{rng.randrange(keys)}", f"k{rng.randrange(keys)}")
    return db


def open_service(db, columnar: bool):
    from repro.server import QueryService

    svc = QueryService("p(a) :- r(a, a).", database=db,
                       options=EvalOptions(columnar=columnar))
    session = svc.open_session()
    for q in SERVER_QUERIES:  # warm the model's relation columns
        session.query(q)
    return svc, session


@pytest.mark.parametrize("mode", MODES)
def test_join_select(benchmark, mode):
    db = join_db(20000, 2000)
    result = benchmark(lambda: run(JOIN_SELECT, db, MODES[mode]))
    assert result.relation("q")


@pytest.mark.parametrize("mode", MODES)
def test_join_wide(benchmark, mode):
    db = join_db(12000, 1500)
    result = benchmark(lambda: run(JOIN_WIDE, db, MODES[mode]))
    assert result.relation("q")


@pytest.mark.parametrize("mode", MODES)
def test_multi_query(benchmark, mode):
    db = join_db(20000, 2000)
    result = benchmark(lambda: run(MULTI, db, MODES[mode]))
    assert result.relation("q1") and result.relation("q2")


@pytest.mark.parametrize("mode", MODES)
def test_tc_random(benchmark, mode):
    db = rand_graph_db(350, 1200)
    result = benchmark(lambda: run(TC, db, MODES[mode]))
    assert result.relation("t")


@pytest.mark.parametrize("mode", MODES)
def test_server_queries(benchmark, mode):
    svc, session = open_service(triple_db(20000, 1000), MODES[mode])
    try:
        result = benchmark(
            lambda: [len(session.query(q).rows) for q in SERVER_QUERIES]
        )
        assert all(result)
    finally:
        svc.shutdown()


@pytest.mark.skipif(not HAS_NUMPY, reason="columnar kernels need numpy")
@pytest.mark.skipif(
    os.environ.get("SKIP_TIMING_ASSERTS") == "1",
    reason="wall-clock assertion disabled (coverage-instrumented CI job; "
           "the dedicated benchmarks job still enforces it)",
)
def test_columnar_speedup_floor():
    """Acceptance floor: ≥2× over the row executor on ≥2 workloads
    (observed: server-queries ~4-5×, join-select/multi-query ~2.5-3.5×,
    tc-random ~1.6-2.8×)."""

    def best_of(fn, k=3):
        best = float("inf")
        for _ in range(k):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    workloads = {
        "join-select": (JOIN_SELECT, join_db(20000, 2000)),
        "multi-query": (MULTI, join_db(20000, 2000)),
        "tc-random": (TC, rand_graph_db(350, 1200)),
    }
    speedups = {}
    for name, (program, db) in workloads.items():
        columnar = best_of(lambda: run(program, db, True))
        row = best_of(lambda: run(program, db, False))
        speedups[name] = row / columnar

    db = triple_db(20000, 1000)
    times = {}
    for mode, columnar in MODES.items():
        svc, session = open_service(db, columnar)
        try:
            times[mode] = best_of(
                lambda: [session.query(q) for q in SERVER_QUERIES]
            )
        finally:
            svc.shutdown()
    speedups["server-queries"] = times["row"] / times["columnar"]

    fast_enough = [n for n, s in speedups.items() if s >= 2.0]
    assert len(fast_enough) >= 2, (
        "columnar executor beat the row executor 2x on fewer than two "
        f"workloads: {({n: round(s, 2) for n, s in speedups.items()})}"
    )
