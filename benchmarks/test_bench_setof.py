"""E12 — Section 4.2's set construction with stratified negation.

The construction quantifies over candidate sets; with the subset_enum
materialiser that is 2^|A| candidates, so the sweep stays small — the
exponential IS the result (the paper's construction trades completeness of
the domain for definability)."""

import pytest

from repro.core import Program, atom, const, fact
from repro.transform import setof_program


@pytest.mark.parametrize("n_witnesses", [2, 4, 6, 8])
def test_setof_scaling(benchmark, evaluate, n_witnesses):
    base = Program.of(*(
        fact(atom("a", const(f"w{i}"))) for i in range(n_witnesses)
    ))
    program = setof_program("a", "b", base=base)

    result = benchmark(lambda: evaluate(program, db=None))
    (answer,) = {row[0] for row in result.relation("b")}
    assert len(answer) == n_witnesses


@pytest.mark.parametrize("n_witnesses", [2, 4, 6])
def test_grouping_vs_setof(benchmark, evaluate, n_witnesses):
    """The LDL-grouping route to the same set — linear, not exponential."""
    from repro import parse_program
    from repro.engine import Database

    db = Database()
    for i in range(n_witnesses):
        db.add("a", f"w{i}")
    program = parse_program("b(<X>) :- a(X).")

    result = benchmark(lambda: evaluate(program, db))
    (answer,) = {row[0] for row in result.relation("b")}
    assert len(answer) == n_witnesses
