"""Shared fixtures and helpers for the benchmark suite.

Each benchmark file regenerates one row of the experiment index in
DESIGN.md / EXPERIMENTS.md.  Sizes are chosen so the whole suite runs in a
couple of minutes; the generators are deterministic, so numbers are
comparable across runs.
"""

import pytest

from repro.engine import Evaluator
from repro.engine.evaluation import EvalOptions
from repro.engine.setops import with_set_builtins


def evaluate(program, db=None, **opts):
    options = EvalOptions(**opts) if opts else EvalOptions()
    return Evaluator(program, db, builtins=with_set_builtins(),
                     options=options).run()


@pytest.fixture(scope="session")
def set_builtin_registry():
    return with_set_builtins()
