"""Shared fixtures and helpers for the benchmark suite.

Each benchmark file regenerates one row of the experiment index in
DESIGN.md / EXPERIMENTS.md.  Sizes are chosen so the whole suite runs in a
couple of minutes; the generators are deterministic, so numbers are
comparable across runs.

The engine entry point is provided as the ``evaluate`` *fixture* (not a
module import) so the benchmark modules need no package-relative imports —
``python -m pytest`` collects them from the repository root without any
package context.
"""

import pytest

from repro.engine import Evaluator
from repro.engine.evaluation import EvalOptions
from repro.engine.setops import with_set_builtins


def run_engine(program, db=None, **opts):
    """Evaluate a program with the set builtins enabled."""
    options = EvalOptions(**opts) if opts else EvalOptions()
    return Evaluator(program, db, builtins=with_set_builtins(),
                     options=options).run()


@pytest.fixture(scope="session")
def evaluate():
    """Fixture-injected engine entry point (see module docstring)."""
    return run_engine


@pytest.fixture(scope="session")
def set_builtin_registry():
    return with_set_builtins()
