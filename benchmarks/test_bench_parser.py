"""B5 — parser and pretty-printer throughput on generated programs."""

import pytest

from repro.lang import parse_program
from repro.lang.pretty import pretty_program


def generated_source(n_clauses: int) -> str:
    lines = []
    for i in range(n_clauses):
        kind = i % 4
        if kind == 0:
            lines.append(f"e(v{i}, v{i + 1}).")
        elif kind == 1:
            lines.append(f"s{i}({{a{i}, b{i}, c{i}}}).")
        elif kind == 2:
            lines.append(f"p{i}(X, Y) :- e(X, Y), q{i}(Y).")
        else:
            lines.append(
                f"d{i}(S, T) :- forall A in S (forall B in T (A != B))."
            )
    return "\n".join(lines)


@pytest.mark.parametrize("n", [50, 200, 800])
def test_parse_throughput(benchmark, n):
    source = generated_source(n)
    program = benchmark(lambda: parse_program(source))
    assert len(program.clauses) >= n


@pytest.mark.parametrize("n", [50, 200])
def test_round_trip_throughput(benchmark, n):
    source = generated_source(n)
    program = parse_program(source)

    def round_trip():
        return parse_program(pretty_program(program))

    again = benchmark(round_trip)
    assert len(again.clauses) == len(program.clauses)
