"""B-plans — compiled set-at-a-time plans vs the tuple-at-a-time solver.

The plan pipeline (``engine/ir.py`` → ``engine/planner.py`` →
``engine/executor.py``) must earn its keep on join-heavy workloads: the
same programs evaluated with ``compile_plans`` on and off, on

* transitive closure (chains and grids — many semi-naive rounds of
  delta-pinned joins),
* the parts explosion roll-up of Example 6 (set-keyed joins plus
  arithmetic Compute conjuncts),
* a nested unnest workload (Example 4's ``y ∈ Y`` as an Unnest operator
  over wide set columns).

``test_plans_speedup_floor`` enforces the acceptance criterion — the
compiled path at least 1.5× faster than the tuple path on at least two
join-heavy workloads — with min-of-k on both sides so scheduler noise
cancels.  Record results under the ``plans`` label::

    python benchmarks/run_benchmarks.py --label plans --files test_bench_plans.py
"""

import os
import random
import time

import pytest

from repro import parse_program
from repro.engine import Database, Evaluator
from repro.engine.evaluation import EvalOptions
from repro.engine.setops import with_set_builtins
from repro.workloads import chain_graph, grid_graph, parts_database, parts_world

MODES = {"compiled": True, "tuple": False}

TC = parse_program("""
t(X, Y) :- e(X, Y).
t(X, Z) :- e(X, Y), t(Y, Z).
""")

PARTS = parse_program("""
item_cost(P, C) :- cost(P, C).
item_cost(P, C) :- obj_cost(P, C).
need(S) :- parts(P, S).
need(Y) :- need(Z), choose_min(X, Y, Z).
sum_costs({}, 0).
sum_costs(Z, K) :- need(Z), choose_min(P, Y, Z),
                   item_cost(P, C), sum_costs(Y, M), M + C = K.
obj_cost(P, C) :- parts(P, S), sum_costs(S, C).
""")

UNNEST = parse_program("s(X, E) :- r(X, Y), E in Y.")


def graph_db(edges):
    db = Database()
    for u, v in edges:
        db.add("e", u, v)
    return db


def unnest_db(n_rows=300, width=12, universe=200, seed=0):
    rng = random.Random(seed)
    db = Database()
    for i in range(n_rows):
        elems = frozenset(f"e{rng.randrange(universe)}" for _ in range(width))
        db.add("r", f"x{i}", elems)
    return db


def run(program, db, compiled: bool):
    options = EvalOptions(compile_plans=compiled)
    return Evaluator(program, db, builtins=with_set_builtins(),
                     options=options).run()


@pytest.mark.parametrize("n", [48, 64])
@pytest.mark.parametrize("mode", MODES)
def test_tc_chain(benchmark, mode, n):
    db = graph_db(chain_graph(n))
    result = benchmark(lambda: run(TC, db, MODES[mode]))
    assert len(result.relation("t")) == n * (n + 1) // 2


@pytest.mark.parametrize("mode", MODES)
def test_tc_grid(benchmark, mode):
    db = graph_db(grid_graph(6, 6))
    result = benchmark(lambda: run(TC, db, MODES[mode]))
    assert result.relation("t")


@pytest.mark.parametrize("mode", MODES)
def test_parts_explosion(benchmark, mode):
    world = parts_world(depth=3, fanout=2, seed=5)
    db = parts_database(world)
    result = benchmark(lambda: run(PARTS, db, MODES[mode]))
    assert result.relation("obj_cost")


@pytest.mark.parametrize("mode", MODES)
def test_nested_unnest(benchmark, mode):
    db = unnest_db()
    result = benchmark(lambda: run(UNNEST, db, MODES[mode]))
    assert result.relation("s")


@pytest.mark.skipif(
    os.environ.get("SKIP_TIMING_ASSERTS") == "1",
    reason="wall-clock assertion disabled (coverage-instrumented CI job; "
           "the dedicated benchmarks job still enforces it)",
)
def test_plans_speedup_floor():
    """Acceptance floor: ≥1.5× over the tuple path on ≥2 join-heavy
    workloads (observed: chain ~1.7×, grid ~2×, unnest ~1.6×, parts ~20×+)."""

    def best_of(fn, k=3):
        best = float("inf")
        for _ in range(k):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    workloads = {
        "tc-chain": (TC, graph_db(chain_graph(64))),
        "tc-grid": (TC, graph_db(grid_graph(6, 6))),
        "parts": (PARTS, parts_database(parts_world(depth=3, fanout=2, seed=5))),
        "unnest": (UNNEST, unnest_db()),
    }
    speedups = {}
    for name, (program, db) in workloads.items():
        compiled = best_of(lambda: run(program, db, True))
        tuple_t = best_of(lambda: run(program, db, False))
        speedups[name] = tuple_t / compiled
    fast_enough = [n for n, s in speedups.items() if s >= 1.5]
    assert len(fast_enough) >= 2, (
        "compiled plans beat the tuple path 1.5x on fewer than two "
        f"workloads: {({n: round(s, 2) for n, s in speedups.items()})}"
    )
