"""E1 — Examples 1-3: disj/subset/union over families of sets.

Regenerates the cost profile of the paper's flagship predicates as the
database of sets grows.  ``disj`` is quadratic in the number of sets and
bilinear in their widths; ``union`` (with the covering disjunction compiled
via Theorem 6) adds a third set argument.
"""

import pytest

from repro import parse_program
from repro.workloads import set_database


DISJ = """
disj(X, Y) :- s(X), s(Y), forall A in X (forall B in Y (A != B)).
"""

SUBSET = """
subset(X, Y) :- s(X), s(Y), forall A in X (A in Y).
"""

UNION = """
un(X, Y, Z) :- s(X), s(Y), s(Z),
               forall A in X (A in Z), forall B in Y (B in Z),
               forall C in Z (C in X or C in Y).
"""


@pytest.mark.parametrize("n_sets", [8, 16, 32])
def test_disj_scaling(benchmark, evaluate, n_sets):
    db = set_database("s", n_sets, universe=20, max_size=5, seed=1)
    program = parse_program(DISJ)
    result = benchmark(lambda: evaluate(program, db))
    assert len(result.relation("disj")) > 0


@pytest.mark.parametrize("n_sets", [8, 16, 32])
def test_subset_scaling(benchmark, evaluate, n_sets):
    db = set_database("s", n_sets, universe=20, max_size=5, seed=2)
    program = parse_program(SUBSET)
    result = benchmark(lambda: evaluate(program, db))
    # Reflexivity guarantees a non-trivial extension.
    assert len(result.relation("subset")) >= len(db.relation("s"))


@pytest.mark.parametrize("n_sets", [6, 10])
def test_union_scaling(benchmark, evaluate, n_sets):
    db = set_database("s", n_sets, universe=12, max_size=4, seed=3)
    program = parse_program(UNION)
    result = benchmark(lambda: evaluate(program, db))
    for xx, yy, zz in result.relation("un"):
        assert xx | yy == zz
