#!/usr/bin/env python
"""Benchmark entry point: time the ``benchmarks/`` suite and record results.

Runs pytest with pytest-benchmark *enabled* (the repository default disables
timing so the benchmarks double as plain correctness tests), parses the
benchmark JSON, and merges mean wall-clock seconds per benchmark into
``BENCH_results.json`` under a label.  Labels accumulate, so the file holds
a perf trajectory across PRs::

    {
      "labels": {
        "before": {"<benchmark id>": {"mean_s": ..., "rounds": ...}, ...},
        "after":  {...}
      }
    }

Usage::

    python benchmarks/run_benchmarks.py                    # label "current"
    python benchmarks/run_benchmarks.py --label after
    python benchmarks/run_benchmarks.py --files test_bench_seminaive.py
    python benchmarks/run_benchmarks.py --compare before after
    python benchmarks/run_benchmarks.py --check-regressions plans --quick

``--quick`` caps rounds/time per benchmark for CI-sized runs;
``--check-regressions`` re-times stored labels against the committed
baseline and fails on >2× slowdowns (the CI perf gate).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = Path(__file__).resolve().parent

#: The files a perf-sensitive PR must not regress (see ISSUE/ROADMAP).
CORE_FILES = (
    "test_bench_seminaive.py",
    "test_bench_fixpoint.py",
    "test_bench_topdown.py",
)


def run_pytest_benchmarks(files: list[str], quick: bool) -> dict[str, dict]:
    """Run pytest-benchmark on the files; return {benchmark id: stats}."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        json_path = tmp.name
    cmd = [
        sys.executable, "-m", "pytest",
        *[str(BENCH_DIR / f) for f in files],
        "-q",
        "--benchmark-enable",
        f"--benchmark-json={json_path}",
        "--benchmark-warmup=off",
        "--benchmark-disable-gc",
    ]
    if quick:
        cmd += ["--benchmark-min-rounds=1", "--benchmark-max-time=0.25"]
    else:
        cmd += ["--benchmark-min-rounds=3", "--benchmark-max-time=1.0"]
    proc = subprocess.run(cmd, cwd=REPO_ROOT)
    if proc.returncode != 0:
        raise SystemExit(f"pytest failed with exit code {proc.returncode}")
    with open(json_path) as fh:
        data = json.load(fh)
    out: dict[str, dict] = {}
    for bench in data.get("benchmarks", ()):
        out[bench["fullname"]] = {
            "mean_s": bench["stats"]["mean"],
            "min_s": bench["stats"]["min"],
            "rounds": bench["stats"]["rounds"],
        }
    return out


def load_results(path: Path) -> dict:
    if path.exists():
        with open(path) as fh:
            return json.load(fh)
    return {"labels": {}}


def calibrate() -> float:
    """Machine-speed probe: a fixed pure-Python workload, min-of-3 seconds.

    Stored next to each label so ``--check-regressions`` can compare
    wall-clock baselines recorded on one machine against a fresh run on a
    slower/faster one: ratios are normalized by the calibration ratio, so
    the gate measures *code* regressions, not hardware differences.
    """
    import time

    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        acc = 0
        d: dict = {}
        for i in range(200_000):
            d[i & 1023] = i
            acc += hash((i, i & 7))
        best = min(best, time.perf_counter() - t0)
    return best


def check_regressions(
    results: dict, labels: list[str], quick: bool, tolerance: float
) -> int:
    """Re-run each label's benchmark files and fail on >tolerance× slowdowns.

    The committed BENCH_results.json is the baseline: for every benchmark
    stored under a label, the file it lives in is re-timed and the fresh
    ``min_s`` compared against the stored one.  Minima (not means) are
    compared because scheduler noise inflates means, and ratios are
    normalized by the :func:`calibrate` machine-speed probe when the
    baseline recorded one, so a slower CI runner does not read as a code
    regression.  A baseline benchmark missing from the fresh run (renamed,
    skipped, deleted without updating the baseline) also fails — silently
    losing a benchmark is how regressions slip through.  Exit code 1 on
    any violation — the CI gate for perf-sensitive PRs.
    """
    stored_labels = results.get("labels", {})
    calibrations = results.get("calibration", {})
    if not labels:
        labels = sorted(stored_labels)
    fresh_cal = calibrate()
    exit_code = 0
    for label in labels:
        stored = stored_labels.get(label)
        if not stored:
            print(f"no committed baseline under label {label!r} "
                  f"(have {sorted(stored_labels)})")
            return 1
        base_cal = calibrations.get(label)
        scale = (fresh_cal / base_cal) if base_cal else 1.0
        allowed = tolerance * scale
        files = sorted({name.split("::")[0].split("/")[-1] for name in stored})
        print(f"label {label!r}: re-timing {files} "
              f"(machine-speed scale {scale:.2f}x, "
              f"allowed slowdown {allowed:.2f}x)")
        fresh = run_pytest_benchmarks(files, quick)
        print(f"{'benchmark':68s} {'base':>10s} {'fresh':>10s} {'ratio':>7s}")
        for name in sorted(stored):
            entry = fresh.get(name)
            if entry is None:
                print(f"{name[:68]:68s} {'MISSING':>10s}  << baseline "
                      "benchmark did not run (renamed/skipped/deleted?)")
                exit_code = 1
                continue
            base = stored[name]["min_s"]
            new = entry["min_s"]
            ratio = new / base if base > 0 else 0.0
            verdict = "" if ratio <= allowed else "  << REGRESSION"
            print(f"{name[:68]:68s} {base:10.4f} {new:10.4f} "
                  f"{ratio:6.2f}x{verdict}")
            if ratio > allowed:
                exit_code = 1
    if exit_code:
        print(f"\nFAIL: a baseline benchmark is missing or regressed more "
              f"than {tolerance:.1f}x (machine-normalized) against the "
              "committed baseline")
    else:
        print(f"\nOK: no benchmark regressed more than {tolerance:.1f}x "
              "(machine-normalized)")
    return exit_code


def compare(results: dict, base: str, new: str) -> int:
    labels = results.get("labels", {})
    if base not in labels or new not in labels:
        print(f"missing label(s): have {sorted(labels)}")
        return 1
    common = sorted(set(labels[base]) & set(labels[new]))
    if not common:
        print("no common benchmarks between labels")
        return 1
    print(f"{'benchmark':68s} {base:>10s} {new:>10s} {'speedup':>8s}")
    worst = float("inf")
    for name in common:
        b = labels[base][name]["mean_s"]
        n = labels[new][name]["mean_s"]
        speedup = b / n if n > 0 else float("inf")
        worst = min(worst, speedup)
        print(f"{name[:68]:68s} {b:10.4f} {n:10.4f} {speedup:7.2f}x")
    print(f"\nworst speedup: {worst:.2f}x over {len(common)} benchmarks")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="current",
                        help="label to store results under (default: current)")
    parser.add_argument("--files", nargs="*", default=list(CORE_FILES),
                        help="benchmark files to run (default: the core trio); "
                             "pass 'all' for the whole suite")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_results.json"))
    parser.add_argument("--quick", action="store_true",
                        help="single-round timing (CI-sized)")
    parser.add_argument("--compare", nargs=2, metavar=("BASE", "NEW"),
                        help="print speedups between two stored labels and exit")
    parser.add_argument("--check-regressions", nargs="*", metavar="LABEL",
                        default=None,
                        help="re-run the files behind the given stored "
                             "labels (default: all labels) and exit 1 if "
                             "any benchmark is slower than the committed "
                             "baseline by more than --tolerance")
    parser.add_argument("--tolerance", type=float, default=2.0,
                        help="allowed slowdown factor for "
                             "--check-regressions (default: 2.0)")
    args = parser.parse_args(argv)

    out_path = Path(args.output)
    results = load_results(out_path)

    if args.compare:
        return compare(results, *args.compare)
    if args.check_regressions is not None:
        return check_regressions(
            results, args.check_regressions, args.quick, args.tolerance
        )

    files = args.files
    if files == ["all"]:
        files = sorted(p.name for p in BENCH_DIR.glob("test_bench_*.py"))
    stats = run_pytest_benchmarks(files, args.quick)
    results.setdefault("labels", {}).setdefault(args.label, {}).update(stats)
    results.setdefault("calibration", {})[args.label] = calibrate()
    with open(out_path, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {len(stats)} benchmark timings to {out_path} "
          f"under label {args.label!r}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
