"""B4 — nested relational algebra throughput (nest/unnest/join)."""

import pytest

from repro.nested import (
    NestedRelation,
    Schema,
    natural_join,
    nest,
    project,
    unnest,
)
from repro.workloads import nested_relation_rows


def relation(rows, width, seed=0):
    r = NestedRelation(Schema.of("k", "vals*"))
    for k, vals in nested_relation_rows(rows, width, seed=seed):
        r.insert(k, vals)
    return r


@pytest.mark.parametrize("rows,width", [(200, 8), (1000, 8), (1000, 32)])
def test_unnest_throughput(benchmark, rows, width):
    r = relation(rows, width)
    out = benchmark(lambda: unnest(r, "vals"))
    assert len(out) > rows / 2


@pytest.mark.parametrize("rows,width", [(200, 8), (1000, 8), (1000, 32)])
def test_nest_throughput(benchmark, rows, width):
    flat = unnest(relation(rows, width), "vals")
    out = benchmark(lambda: nest(flat, "vals"))
    assert len(out) <= len(flat)


@pytest.mark.parametrize("rows", [100, 400])
def test_join_on_set_attribute(benchmark, rows):
    """Set-valued join keys: equality is frozenset equality."""
    r1 = relation(rows, 6, seed=1)
    r2 = NestedRelation(Schema.of("vals*", "tag"))
    for i, (_, vals) in enumerate(nested_relation_rows(rows, 6, seed=1)):
        r2.insert(vals, f"t{i % 7}")
    out = benchmark(lambda: natural_join(r1, r2))
    assert len(out) >= rows  # every row finds its own set at least


@pytest.mark.parametrize("rows", [1000, 4000])
def test_project_throughput(benchmark, rows):
    r = relation(rows, 4)
    out = benchmark(lambda: project(r, ["k"]))
    assert len(out) == len(r)
