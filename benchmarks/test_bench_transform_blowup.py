"""E9 — Theorem 6 compilation: program blow-up and compile time.

Measures the faithful (proof-literal) construction against the simplified
one on generated positive formulas of increasing depth, plus the evaluation
cost of the two outputs on the same database (they are semantically
equivalent — the tests prove it; here we measure the constant factors)."""

import pytest

from repro.core import Rule, atom, var_a, var_s
from repro.core.atoms import member
from repro.core.formulas import AtomF, ExistsIn, ForallIn, conj, disj
from repro.transform import compile_program
from repro.workloads import set_database


x, y, z = var_a("x"), var_a("y"), var_a("z")
X, Y, Z = var_s("X"), var_s("Y"), var_s("Z")


def formula_of_depth(depth):
    """A positive formula with alternating ∀/∨ structure of given depth."""
    body = disj(AtomF(member(x, X)), AtomF(member(x, Y)))
    for level in range(depth):
        var = var_a(f"q{level}")
        body = ForallIn(
            var, X if level % 2 == 0 else Y,
            disj(AtomF(member(var, Y)), conj(AtomF(member(var, X)),
                                             AtomF(atom("s", Z)))),
        )
    return conj(
        ForallIn(x, X, AtomF(member(x, Z))),
        body,
        ExistsIn(y, Z, AtomF(member(y, X))),
    )


@pytest.mark.parametrize("depth", [1, 2, 3])
@pytest.mark.parametrize("faithful", [False, True])
def test_compile_time_and_size(benchmark, depth, faithful):
    rule = Rule(atom("h", X, Y, Z), formula_of_depth(depth))

    program = benchmark(lambda: compile_program([rule], faithful=faithful))
    assert len(program.clauses) >= 1
    # Record blow-up in the benchmark's extra info.
    benchmark.extra_info["clauses"] = len(program.clauses)


@pytest.mark.parametrize("faithful", [False, True])
def test_evaluation_of_compiled_union(benchmark, evaluate, faithful):
    """Evaluate the two compilations of the union rule on the same sets."""
    body = conj(
        ForallIn(x, X, AtomF(member(x, Z))),
        ForallIn(y, Y, AtomF(member(y, Z))),
        ForallIn(z, Z, disj(AtomF(member(z, X)), AtomF(member(z, Y)))),
    )
    rule = Rule(atom("un", X, Y, Z), body)
    program = compile_program([rule], faithful=faithful)
    db = set_database("s", 8, universe=10, max_size=3, seed=4)

    result = benchmark(lambda: evaluate(program, db))
    for a_, b_, c_ in result.relation("un"):
        assert a_ | b_ == c_
