"""E2 — Example 4: unnest as an LPS rule vs the algebra operator.

Sweeps rows × set-width.  The algebra operator is a tight Python loop; the
LPS rule pays the generic-engine overhead — the measured ratio is the cost
of declarativity on this workload.
"""

import pytest

from repro.nested import (
    ATOMIC,
    NestedRelation,
    Schema,
    relation_to_database,
    unnest,
    unnest_program,
)
from repro.workloads import nested_relation_rows


SCHEMA = Schema.of("k", "vals*")


def make_relation(n_rows, width):
    r = NestedRelation(SCHEMA)
    for k, vals in nested_relation_rows(n_rows, width, seed=5):
        r.insert(k, vals)
    return r


@pytest.mark.parametrize("rows,width", [(50, 4), (100, 8), (200, 16)])
def test_unnest_algebra(benchmark, rows, width):
    r = make_relation(rows, width)
    out = benchmark(lambda: unnest(r, "vals"))
    assert len(out) > 0


@pytest.mark.parametrize("rows,width", [(50, 4), (100, 8), (200, 16)])
def test_unnest_lps_rule(benchmark, evaluate, rows, width):
    r = make_relation(rows, width)
    db = relation_to_database(r, "r")
    program = unnest_program(SCHEMA, "vals", "r", "s")
    result = benchmark(lambda: evaluate(program, db))
    assert len(result.relation("s")) == len(unnest(r, "vals"))
