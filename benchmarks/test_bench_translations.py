"""E14 — Theorem 10 in practice: the same query as ELPS, Horn+union and
Horn+scons, plus translation costs.

The quantifier-elimination translations replace each restricted quantifier
by a recursion over set decompositions; this benchmark measures what that
recursion costs at runtime relative to native quantifier evaluation."""

import pytest

from repro.core import Program, atom, clause, fact, member, setvalue, var_a, var_s
from repro.engine import Database
from repro.transform import to_horn_scons, to_horn_union
from repro.workloads import random_sets


x = var_a("x")
X, Y = var_s("X"), var_s("Y")


def subs_program():
    return Program.of(
        clause(atom("subs", X, Y), [(x, X)],
               [atom("s", X), atom("s", Y), member(x, Y)]),
    )


def sets_db(n):
    db = Database()
    for s in random_sets(n, universe=10, max_size=4, seed=6):
        db.add("s", s)
    return db


@pytest.mark.parametrize("n_sets", [6, 12])
def test_native_elps(benchmark, evaluate, n_sets):
    db = sets_db(n_sets)
    result = benchmark(lambda: evaluate(subs_program(), db))
    assert result.relation("subs")


@pytest.mark.parametrize("n_sets", [6, 12])
def test_horn_union(benchmark, evaluate, n_sets):
    db = sets_db(n_sets)
    program = to_horn_union(subs_program())
    result = benchmark(lambda: evaluate(program, db))
    assert result.relation("subs")


@pytest.mark.parametrize("n_sets", [6, 12])
def test_horn_scons(benchmark, evaluate, n_sets):
    db = sets_db(n_sets)
    program = to_horn_scons(subs_program())
    result = benchmark(lambda: evaluate(program, db))
    assert result.relation("subs")


def test_translation_cost(benchmark):
    program = subs_program()
    out = benchmark(lambda: (to_horn_union(program), to_horn_scons(program)))
    assert all(len(p.clauses) > len(program.clauses) for p in out)
