"""B-shard — sharded parallel evaluation vs the single-process fixpoint.

The tentpole claim of ``repro.parallel``: a recursive stratum whose join
work dominates its output parallelizes across shard workers, because the
partitioner picks a *communication-free* position (the head copies the
recursive occurrence's variable there, so every derivation lands on the
deriving shard) and the coordinator's serial work is only the initial
replica ship and the final gather.

Workloads:

* ``fixpoint`` — a two-hop recursive reachability program
  (``t(X,Z) :- e(X,Y), f(Y,W), t(W,Z)``) over random relations, sized so
  per-delta join expansion (which partitions) dwarfs the per-round
  per-worker fixed costs (which do not).  ``test_sharded_speedup_floor``
  enforces the ≥2× acceptance floor at 4 shards on ≥4-core machines.
* ``maintenance`` — the same program under insert/delete churn through
  ``MaterializedModel.apply_delta``, recording the per-batch cost of the
  coordinator re-shipping state each seeded closure (the known overhead
  of stateless workers; correctness is shard-count invariant either way).

Record results under the ``sharding`` label::

    python benchmarks/run_benchmarks.py --label sharding --files test_bench_sharding.py
"""

import os
import random
import time

import pytest

from repro import parse_program
from repro.engine import Database, Evaluator, MaterializedModel
from repro.engine.evaluation import EvalOptions
from repro.engine.setops import with_set_builtins
from repro.workloads import edge_churn, random_graph

TWO_HOP = parse_program("""
t(X, Z) :- b(X, Z).
t(X, Z) :- e(X, Y), f(Y, W), t(W, Z).
""")

TC = parse_program("""
t(X, Y) :- e(X, Y).
t(X, Z) :- e(X, Y), t(Y, Z).
""")

SHARD_COUNTS = [1, 4]


def two_hop_db(n_edges=8000, n_base=300, n_targets=40, n_nodes=500, seed=9):
    rng = random.Random(seed)
    db = Database()
    for _ in range(n_edges):
        db.add("e", f"n{rng.randrange(n_nodes)}", f"n{rng.randrange(n_nodes)}")
    for _ in range(n_edges):
        db.add("f", f"n{rng.randrange(n_nodes)}", f"n{rng.randrange(n_nodes)}")
    for _ in range(n_base):
        db.add("b", f"n{rng.randrange(n_nodes)}",
               f"z{rng.randrange(n_targets)}")
    return db


def evaluator(program, db, shards):
    return Evaluator(program, db, builtins=with_set_builtins(),
                     options=EvalOptions(shards=shards))


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_fixpoint_two_hop(benchmark, shards):
    """The acceptance workload: warm worker pool, repeated evaluation."""
    ev = evaluator(TWO_HOP, two_hop_db(), shards)
    try:
        ev.run()  # spawn + warm the pool outside the timed region
        result = benchmark(ev.run)
        assert len(result.interpretation.by_pred("t")) == 20000
    finally:
        ev.close()


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_maintenance_churn(benchmark, shards):
    """Insert/delete churn pairs on TC, maintained at each shard count.

    Every round applies one batch and its exact inverse, so the model
    returns to the base state and rounds stay comparable; one reported
    round therefore times **two** maintenance calls.
    """
    edges = random_graph(48, 140, seed=3)
    db = Database()
    for u, v in edges:
        db.add("e", u, v)
    m = MaterializedModel(TC, db, builtins=with_set_builtins(),
                          options=EvalOptions(shards=shards))
    batch = edge_churn(edges, n_batches=1, batch_size=2,
                       n_nodes=48, seed=11)[0]
    try:
        def churn():
            m.apply_delta(adds=batch.adds, dels=batch.dels)
            m.apply_delta(adds=batch.dels, dels=batch.adds)

        benchmark(churn)
        assert m.relation("t")
    finally:
        m._evaluator.close()


@pytest.mark.skipif(
    os.environ.get("SKIP_TIMING_ASSERTS") == "1",
    reason="timing asserts disabled",
)
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="speedup floor needs at least 4 cores",
)
def test_sharded_speedup_floor():
    """Acceptance floor: the 4-shard fixpoint ≥2× the single-process one
    on the two-hop workload (predicted ~2.5-3.5× on 4 cores: worker
    compute parallelizes, coordinator ship+gather is ~5% serial)."""

    def best_of(fn, k=3):
        best = float("inf")
        for _ in range(k):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    db = two_hop_db()
    times, models = {}, {}
    for shards in (1, 4):
        ev = evaluator(TWO_HOP, db, shards)
        try:
            models[shards] = ev.run().interpretation.sorted_atoms()
            times[shards] = best_of(ev.run)
        finally:
            ev.close()
    assert models[1] == models[4]
    speedup = times[1] / times[4]
    assert speedup >= 2.0, (
        f"4-shard evaluation only {speedup:.2f}x over single-process "
        f"({times[1]:.2f}s vs {times[4]:.2f}s)"
    )
