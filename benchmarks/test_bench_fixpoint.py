"""E8 — the reference ``T_P`` operator vs the optimised engine.

The brute-force Lemma-4 operator enumerates all assignments over a finite
universe; the engine plans joins and falls back to the domain only when it
must.  Both compute the same model (the tests prove it); this benchmark
records the gap, which is the value of the planner."""

import pytest

from repro.core import Program, atom, clause, fact, member, setvalue, var_a, var_s
from repro.core import const
from repro.semantics import Universe, least_fixpoint
from repro.workloads import random_sets


x = var_a("x")
X, Y = var_s("X"), var_s("Y")


def subset_program(n_sets):
    sets = random_sets(n_sets, universe=8, max_size=3, seed=13)
    facts = [fact(atom("s", setvalue([const(e) for e in s]))) for s in sets]
    rule = clause(atom("subs", X, Y), [(x, X)],
                  [atom("s", X), atom("s", Y), member(x, Y)])
    return Program.of(*facts, rule)


@pytest.mark.parametrize("n_sets", [4, 6])
def test_reference_tp(benchmark, n_sets):
    program = subset_program(n_sets)
    atoms = tuple(program.constants())
    sets = tuple(program.set_values()) + (setvalue([]),)
    universe = Universe(atoms, tuple(dict.fromkeys(sets)))

    result = benchmark(
        lambda: least_fixpoint(program, universe, max_rounds=50)
    )
    assert len(result.interpretation) > 0


@pytest.mark.parametrize("n_sets", [4, 6, 16])
def test_engine(benchmark, evaluate, n_sets):
    program = subset_program(n_sets)
    result = benchmark(lambda: evaluate(program))
    assert result.relation("subs")
