"""B-maint — incremental maintenance vs from-scratch recomputation.

The headline claim of the maintenance subsystem: absorbing a small EDB
delta through ``MaterializedModel.apply_delta`` beats re-running the
evaluator by an order of magnitude on the transitive-closure workload,
and stays ahead on the parts/cost roll-up (Example 6) under leaf
repricing churn.  ``test_single_fact_speedup`` enforces the ≥5× floor
from the issue's acceptance criteria; the ``benchmark`` cases record the
actual numbers in BENCH_results.json.

Deltas here are *churn pairs* (delete + re-insert of the same fact), so
every benchmark round starts and ends on the same model and rounds are
comparable; one reported round therefore times **two** maintenance calls.
"""

import os
import time

import pytest

from repro import parse_program
from repro.engine import Database, Evaluator, MaterializedModel
from repro.engine.setops import with_set_builtins
from repro.workloads import (
    chain_graph,
    cost_churn,
    edge_churn,
    parts_database,
    parts_world,
    random_graph,
)

TC = parse_program("""
t(X, Y) :- e(X, Y).
t(X, Z) :- e(X, Y), t(Y, Z).
""")

PARTS = parse_program("""
item_cost(P, C) :- cost(P, C).
item_cost(P, C) :- obj_cost(P, C).
need(S) :- parts(P, S).
need(Y) :- need(Z), choose_min(X, Y, Z).
sum_costs({}, 0).
sum_costs(Z, K) :- need(Z), choose_min(P, Y, Z),
                   item_cost(P, C), sum_costs(Y, M), M + C = K.
obj_cost(P, C) :- parts(P, S), sum_costs(S, C).
""")


def graph_db(edges):
    db = Database()
    for u, v in edges:
        db.add("e", u, v)
    return db


def materialize(program, db):
    return MaterializedModel(program, db, builtins=with_set_builtins())


@pytest.mark.parametrize("n", [64, 96])
def test_tc_single_fact_delta(benchmark, n):
    """One deleted + re-inserted chain edge, maintained incrementally."""
    m = materialize(TC, graph_db(chain_graph(n)))
    tail = ("e", f"v{n-1}", f"v{n}")

    def churn():
        m.apply_delta(dels=[tail])
        m.apply_delta(adds=[tail])

    benchmark(churn)
    assert m.model.holds_str(f"t(v0, v{n})")
    assert m.last_report.strategy == "incremental"


@pytest.mark.parametrize("n", [64, 96])
def test_tc_recompute_baseline(benchmark, evaluate, n):
    """The from-scratch cost the maintenance path is measured against."""
    db = graph_db(chain_graph(n))
    result = benchmark(lambda: evaluate(TC, db))
    assert len(result.relation("t")) == n * (n + 1) // 2


def test_tc_random_graph_churn(benchmark):
    """Mixed insert/delete batches on a random graph, reverted per round.

    Every round applies one churn batch and its exact inverse, so the
    model always returns to the base state: the batches stay valid net
    changes no matter how many rounds pytest-benchmark runs, and one
    reported round times **two** genuine maintenance calls.
    """
    edges = random_graph(32, 90, seed=3)
    m = materialize(TC, graph_db(edges))
    batches = edge_churn(edges, n_batches=1, batch_size=1,
                         n_nodes=32, seed=11)
    batch = batches[0]

    def churn():
        fwd = m.apply_delta(adds=batch.adds, dels=batch.dels)
        back = m.apply_delta(adds=batch.dels, dels=batch.adds)
        assert fwd.strategy == back.strategy == "incremental"

    benchmark(churn)
    assert m.relation("t")


def test_tc_random_graph_recompute_baseline(benchmark, evaluate):
    """From-scratch cost of the random-graph workload above."""
    db = graph_db(random_graph(32, 90, seed=3))
    result = benchmark(lambda: evaluate(TC, db))
    assert result.relation("t")


def test_parts_cost_churn(benchmark):
    """Leaf repricing maintained through the Example 6 roll-up program.

    Reprice one leaf and revert it within each round (two maintenance
    calls), keeping every round identical and genuinely incremental.
    """
    world = parts_world(depth=3, fanout=2, seed=5)
    m = materialize(PARTS, parts_database(world))
    batch = cost_churn(world, n_batches=1, seed=7)[0]

    def reprice():
        fwd = m.apply_delta(adds=batch.adds, dels=batch.dels)
        back = m.apply_delta(adds=batch.dels, dels=batch.adds)
        assert fwd.strategy == back.strategy == "incremental"

    benchmark(reprice)
    assert m.relation("obj_cost")


@pytest.mark.skipif(
    os.environ.get("SKIP_TIMING_ASSERTS") == "1",
    reason="wall-clock assertion disabled (coverage-instrumented CI job; "
           "the dedicated benchmarks job still enforces it)",
)
def test_single_fact_speedup():
    """Acceptance floor: maintenance ≥5× faster than recomputation for
    single-fact deltas on the transitive-closure workload.

    Measured in-process back to back with min-of-k on both sides, so
    scheduler noise cancels; the observed ratio is ~12–18× (see
    BENCH_results.json), leaving ample margin above the asserted floor.
    """
    n = 128
    edges = chain_graph(n)
    db = graph_db(edges)
    builtins = with_set_builtins()

    # min-of-k on BOTH sides: scheduler noise inflates means, not minima,
    # and an asymmetric comparison could fail CI on an unrelated stall.
    recompute = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        Evaluator(TC, db, builtins=builtins).run()
        recompute = min(recompute, time.perf_counter() - t0)

    m = MaterializedModel(TC, db, builtins=builtins)
    tail = ("e", f"v{n-1}", f"v{n}")
    per_delta = float("inf")
    for _ in range(6):
        t0 = time.perf_counter()
        m.apply_delta(dels=[tail])
        m.apply_delta(adds=[tail])
        per_delta = min(per_delta, (time.perf_counter() - t0) / 2)

    assert m.model.holds_str(f"t(v0, v{n})")
    speedup = recompute / per_delta
    assert speedup >= 5.0, (
        f"maintenance speedup {speedup:.1f}x below the 5x acceptance floor "
        f"(recompute {recompute*1e3:.1f}ms, delta {per_delta*1e3:.1f}ms)"
    )
