"""B-replication — read fan-out scaling and per-commit replication lag.

The replication claim: follower reads add *real* capacity, because each
follower is a separate process evaluating queries against its own
replicated model.  That makes the scaling benchmark GIL-honest by
construction — the leader and every follower here is a genuine
``lps serve`` subprocess, so aggregate read throughput can exceed what
any single Python process could serve.  ``test_fanout_floor`` enforces
the acceptance criterion (≥2× aggregate reads with 3 followers vs
leader-only); the ``benchmark`` cases record the actual numbers in
BENCH_results.json under the ``replication`` label (see
``run_benchmarks.py``).

The second metric is **replication lag per commit**: the time from a
locally-acknowledged write on the leader to the follower having durably
applied it, measured in-process (where the applied high-water mark is
observable without polling noise) over a churn run.
"""

import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.replication import FollowerService, ReplicationHub
from repro.server import LineClient, QueryService
from repro.workloads import edge_churn, random_graph

REPO_ROOT = Path(__file__).resolve().parent.parent

TC_SOURCE = """
t(X, Y) :- e(X, Y).
t(X, Z) :- e(X, Y), t(Y, Z).
"""

N_NODES = 24
N_EDGES = 60
READER_THREADS = 6
QUERIES_PER_THREAD = 12
#: The enumeration each read performs — the full transitive closure, so
#: per-request work is server-side evaluation + serialization, not I/O.
READ_GOAL = "t(X, Y)"


def _spawn(args, tmp_path):
    env = dict(os.environ, PYTHONPATH="src")
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro.repl.cli", *args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, cwd=REPO_ROOT, env=env,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError(
                f"server process exited (rc={proc.poll()})"
            )
        if "listening on" in line:
            return proc, line.rsplit(" ", 1)[-1].strip()
    raise RuntimeError("server never reported its address")


def _cluster(tmp_path, n_followers):
    """Spawn a leader subprocess (seeded with the graph) + N follower
    subprocesses, each a separate OS process with its own data dir."""
    prog = tmp_path / "prog.lps"
    prog.write_text(TC_SOURCE)
    procs = []
    leader_proc, leader_addr = _spawn(
        ["serve", str(prog), "--host", "127.0.0.1", "--port", "0",
         "--data-dir", str(tmp_path / "leader"), "--fsync", "never"],
        tmp_path,
    )
    procs.append(leader_proc)
    host, port = leader_addr.rsplit(":", 1)
    with LineClient(host, int(port), timeout=30.0) as c:
        c.send(":begin")
        for u, v in random_graph(N_NODES, N_EDGES, seed=7):
            c.send(f"+e({u}, {v}).")
        latest = c.send(":commit").version
    follower_addrs = []
    for i in range(n_followers):
        fproc, faddr = _spawn(
            ["serve", "--host", "127.0.0.1", "--port", "0",
             "--follow", leader_addr,
             "--data-dir", str(tmp_path / f"f{i}"), "--fsync", "never"],
            tmp_path,
        )
        procs.append(fproc)
        follower_addrs.append(faddr)
    for faddr in follower_addrs:          # wait for full catch-up
        fhost, fport = faddr.rsplit(":", 1)
        with LineClient(fhost, int(fport), timeout=30.0) as c:
            r = c.send(f":sync {latest} 60")
            assert r.ok, r.error
    return procs, leader_addr, follower_addrs


def _teardown(procs):
    for proc in procs:
        proc.kill()
    for proc in procs:
        proc.wait(timeout=10)
        proc.stdout.close()


def _aggregate_reads(endpoints):
    """Drive READER_THREADS client threads round-robin over the
    endpoints; returns (wall seconds, total queries served)."""
    errors: list = []

    def reader(idx):
        addr = endpoints[idx % len(endpoints)]
        host, port = addr.rsplit(":", 1)
        try:
            with LineClient(host, int(port), timeout=60.0) as client:
                for _ in range(QUERIES_PER_THREAD):
                    response = client.query(READ_GOAL)
                    assert response.ok and response.data["rows"]
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [
        threading.Thread(target=reader, args=(i,))
        for i in range(READER_THREADS)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    assert not errors, errors
    return wall, READER_THREADS * QUERIES_PER_THREAD


@pytest.mark.parametrize("n_followers", [0, 3])
def test_read_fanout_throughput(benchmark, tmp_path, n_followers):
    """Aggregate read throughput, leader-only vs fanned out over three
    follower processes.  Throughput is ``queries / time``; compare the
    0- and 3-follower rows to read off the scaling factor."""
    procs, leader_addr, follower_addrs = _cluster(tmp_path, n_followers)
    try:
        endpoints = follower_addrs or [leader_addr]
        wall, n_q = benchmark(_aggregate_reads, endpoints)
        assert n_q == READER_THREADS * QUERIES_PER_THREAD
    finally:
        _teardown(procs)


@pytest.mark.skipif(
    os.environ.get("SKIP_TIMING_ASSERTS") == "1",
    reason="wall-clock assertion disabled (coverage-instrumented CI job; "
           "the dedicated benchmarks job still enforces it)",
)
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="read fan-out needs ≥4 cores to demonstrate process scaling",
)
def test_fanout_floor(tmp_path):
    """Acceptance floor: ≥2× aggregate read throughput with 3 follower
    processes vs the leader alone, same client pressure."""
    procs, leader_addr, follower_addrs = _cluster(tmp_path, 3)
    try:
        solo_wall, n_q = _aggregate_reads([leader_addr])
        fan_wall, _ = _aggregate_reads(follower_addrs)
        solo_tput = n_q / solo_wall
        fan_tput = n_q / fan_wall
        assert fan_tput >= 2.0 * solo_tput, (
            f"read fan-out gained only {fan_tput / solo_tput:.2f}x "
            f"({solo_tput:.0f} -> {fan_tput:.0f} q/s) with 3 followers; "
            "the acceptance floor is 2x"
        )
    finally:
        _teardown(procs)


def _lag_run(svc, follower, batches):
    """Apply each batch on the leader, then wait for the follower to
    durably apply it; returns the per-commit lag samples."""
    lags = []
    for batch in batches:
        t0 = time.perf_counter()
        snap = svc.apply_delta(adds=batch.adds, dels=batch.dels)
        assert follower.wait_applied(snap.version, timeout=30)
        lags.append(time.perf_counter() - t0)
    return lags


def test_replication_lag_per_commit(benchmark, tmp_path):
    """Commit-to-applied lag under churn: each sample covers WAL append
    + shipping + follower replay + the follower's own WAL append."""
    svc = QueryService(
        TC_SOURCE, data_dir=tmp_path / "leader", fsync="never",
        checkpoint_every=None,
    )
    ReplicationHub.attach(svc)
    from repro.server import run_in_thread

    handle = run_in_thread(svc)
    follower = FollowerService(
        handle.addr, tmp_path / "f", fsync="never",
        checkpoint_every=None, read_timeout=0.25, backoff_initial=0.02,
    )
    follower.start()
    batches = edge_churn(
        random_graph(N_NODES, N_EDGES, seed=7),
        n_batches=20, batch_size=2, n_nodes=N_NODES, seed=3,
    )
    try:
        svc.apply_delta(adds=[
            ("e", u, v) for u, v in random_graph(N_NODES, N_EDGES, seed=7)
        ])
        lags = benchmark(_lag_run, svc, follower, batches)
        assert len(lags) == len(batches)
        assert max(lags) < 30.0
    finally:
        follower.stop()
        handle.stop()
        svc.shutdown()
