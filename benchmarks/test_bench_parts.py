"""E4 — Example 6: parts-explosion cost roll-up, fanout × depth sweep."""

import pytest

from repro import parse_program
from repro.workloads import parts_database, parts_world


RULES = parse_program("""
item_cost(P, C) :- cost(P, C).
item_cost(P, C) :- obj_cost(P, C).
need(S) :- parts(P, S).
need(Y) :- need(Z), choose_min(X, Y, Z).
sum_costs({}, 0).
sum_costs(Z, K) :- need(Z), choose_min(P, Y, Z),
                   item_cost(P, C), sum_costs(Y, M), M + C = K.
obj_cost(P, C) :- parts(P, S), sum_costs(S, C).
""")


@pytest.mark.parametrize("depth,fanout", [(2, 2), (3, 2), (3, 3), (4, 2)])
def test_parts_explosion(benchmark, evaluate, depth, fanout):
    world = parts_world(depth=depth, fanout=fanout, seed=11)
    db = parts_database(world)

    result = benchmark(lambda: evaluate(RULES, db))
    derived = dict(result.relation("obj_cost"))
    for obj, expected in world.expected.items():
        if obj in world.parts:
            assert derived[obj] == expected
