"""B-server — concurrent query throughput under snapshot isolation.

The service claim: because readers evaluate against immutable published
snapshots, adding reader threads scales *aggregate* request throughput on
the transitive-closure churn workload **with the churn writer active** —
no reader ever waits on the write lock or sees a half-applied delta.

Requests model a real served workload: each query carries a small
client-side turnaround (think time, ``THINK_S``) between requests, as a
remote client speaking the line protocol would.  Per-query CPU is far
smaller than the think time, so with snapshot-isolated reads N sessions
overlap their turnarounds and aggregate throughput approaches N× a
single session — whereas any reader/writer serialization (readers
blocking on the maintenance lock) would flatten the curve.  CPython's
GIL bounds the *CPU* term, which is why the workload keeps queries cheap
and the acceptance floor is 4× for 8 readers rather than 8×.

``test_reader_scaling_floor`` enforces the ≥4× acceptance criterion;
the ``benchmark`` cases record the actual 1/2/8-reader numbers in
BENCH_results.json under the ``server`` label (see
``run_benchmarks.py``).
"""

import os
import threading
import time

import pytest

from repro.server import QueryService
from repro.workloads import mixed_traffic, random_graph

#: Simulated client turnaround per request (network + client think).
THINK_S = 0.002

N_NODES = 24
N_EDGES = 60
QUERIES_PER_READER = 30


def _service(max_workers=8):
    svc = QueryService(
        "t(X, Y) :- e(X, Y).\n"
        "t(X, Z) :- e(X, Y), t(Y, Z).\n",
        max_workers=max_workers,
    )
    svc.apply_delta(adds=[
        ("e", u, v) for u, v in random_graph(N_NODES, N_EDGES, seed=7)
    ])
    return svc


def _run_traffic(svc, n_readers, with_writer=True, seed=1):
    """Drive N reader sessions + the churn writer; returns (wall, queries).

    Readers run on their own threads (as the TCP server's pool would),
    each with its own session, pausing ``THINK_S`` between requests.  The
    writer churns edges for the whole read phase, so every number this
    benchmark reports is measured **under write pressure**.
    """
    plan = mixed_traffic(
        random_graph(N_NODES, N_EDGES, seed=7),
        n_readers=n_readers,
        queries_per_reader=QUERIES_PER_READER,
        n_batches=400,              # more than the read phase consumes
        batch_size=2,
        n_nodes=N_NODES,
        seed=seed,
    )
    streams = plan.reader_streams
    batches = plan.writer_batches
    stop = threading.Event()
    errors: list = []

    def writer():
        i = 0
        while not stop.is_set() and i < len(batches):
            b = batches[i]
            try:
                svc.apply_delta(adds=b.adds, dels=b.dels)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)
                return
            i += 1

    def reader(stream):
        session = svc.open_session()
        try:
            for q in stream:
                session.query(q)
                time.sleep(THINK_S)
        except Exception as exc:  # pragma: no cover
            errors.append(exc)
        finally:
            session.close()

    threads = [
        threading.Thread(target=reader, args=(s,)) for s in streams
    ]
    writer_thread = (
        threading.Thread(target=writer) if with_writer else None
    )
    t0 = time.perf_counter()
    if writer_thread:
        writer_thread.start()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    stop.set()
    if writer_thread:
        writer_thread.join()
    wall = time.perf_counter() - t0
    assert not errors, errors
    return wall, n_readers * QUERIES_PER_READER


@pytest.mark.parametrize("n_readers", [1, 2, 8])
def test_reader_throughput_under_churn(benchmark, n_readers):
    """Aggregate read throughput with the churn writer active.

    The recorded time is one full traffic run; throughput is
    ``(n_readers × QUERIES_PER_READER) / time`` — compare the 1- and
    8-reader rows to read off the scaling factor.
    """
    svc = _service(max_workers=n_readers)
    try:
        wall, n_q = benchmark(_run_traffic, svc, n_readers)
        assert n_q == n_readers * QUERIES_PER_READER
    finally:
        svc.shutdown()


@pytest.mark.skipif(
    os.environ.get("SKIP_TIMING_ASSERTS") == "1",
    reason="wall-clock assertion disabled (coverage-instrumented CI job; "
           "the dedicated benchmarks job still enforces it)",
)
def test_reader_scaling_floor():
    """Acceptance floor: ≥4× aggregate query throughput with 8 reader
    threads vs 1, churn writer active throughout (min-of-k both sides)."""
    def best_of(n_readers, k=3):
        best = float("inf")
        for _ in range(k):
            svc = _service(max_workers=n_readers)
            try:
                wall, n_q = _run_traffic(svc, n_readers)
            finally:
                svc.shutdown()
            best = min(best, wall / n_q)    # seconds per query
        return best

    per_query_1 = best_of(1)
    per_query_8 = best_of(8)
    scaling = per_query_1 / per_query_8
    assert scaling >= 4.0, (
        f"8-reader aggregate throughput only {scaling:.1f}x the 1-reader "
        f"baseline (floor 4.0x): {per_query_1*1e3:.2f} ms/q vs "
        f"{per_query_8*1e3:.2f} ms/q under churn"
    )
