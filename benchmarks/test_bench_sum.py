"""E3 — Example 5: summing a set of numbers.

The paper's recursion decomposes a set into disjoint unions; the
deterministic ``choose_min`` strategy gives a linear derivation chain.
Swept over |X|; also benchmarked top-down (goal-directed, first answer).
"""

import pytest

from repro import parse_program
from repro.core import atom, const, setvalue, var_a
from repro.engine import Database, TopDownProver
from repro.engine.setops import with_set_builtins
from repro.workloads import number_set


RULES = """
need(Z) :- target(Z).
need(Y) :- need(Z), choose_min(X, Y, Z).
sum({}, 0).
sum(Z, K) :- need(Z), choose_min(X, Y, Z), sum(Y, M), M + X = K.
total(K) :- target(Z), sum(Z, K).
"""


@pytest.mark.parametrize("size", [4, 8, 16, 32])
def test_sum_bottom_up(benchmark, evaluate, size):
    numbers = number_set(size, seed=size)
    db = Database()
    db.add("target", numbers)
    program = parse_program(RULES)
    result = benchmark(lambda: evaluate(program, db))
    assert result.relation("total") == {(sum(numbers),)}


@pytest.mark.parametrize("size", [4, 8, 16])
def test_sum_top_down(benchmark, size):
    numbers = number_set(size, seed=size)
    program = parse_program("""
        sum({}, 0).
        sum(Z, K) :- choose_min(X, Y, Z), sum(Y, M), M + X = K.
    """)
    prover = TopDownProver(program, builtins=with_set_builtins(),
                           max_depth=10 * size + 50)
    target = setvalue([const(n) for n in numbers])
    k = var_a("K")

    def ask():
        return prover.ask(atom("sum", target, k), limit=1)

    answers = benchmark(ask)
    assert answers[0].apply(k) == const(sum(numbers))
