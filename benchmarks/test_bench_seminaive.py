"""B2 — naive vs semi-naive fixpoint evaluation.

Transitive closure on chains and grids: semi-naive differentiation should
win by an increasing factor as the number of iterations grows (chains are
the worst case for naive evaluation).  Also includes a set-heavy workload
(quantified rules), where the engine falls back to change-detection
re-evaluation — the honest cost of quantifiers under semi-naive.
"""

import pytest

from repro import parse_program
from repro.engine import Database
from repro.workloads import chain_graph, grid_graph, set_database


TC = parse_program("""
t(X, Y) :- e(X, Y).
t(X, Z) :- e(X, Y), t(Y, Z).
""")


def graph_db(edges):
    db = Database()
    for u, v in edges:
        db.add("e", u, v)
    return db


@pytest.mark.parametrize("n", [16, 32, 64])
@pytest.mark.parametrize("mode", ["seminaive", "naive"])
def test_chain_closure(benchmark, evaluate, n, mode):
    db = graph_db(chain_graph(n))
    result = benchmark(
        lambda: evaluate(TC, db, semi_naive=(mode == "seminaive"))
    )
    assert len(result.relation("t")) == n * (n + 1) // 2


@pytest.mark.parametrize("side", [4, 6])
@pytest.mark.parametrize("mode", ["seminaive", "naive"])
def test_grid_closure(benchmark, evaluate, side, mode):
    db = graph_db(grid_graph(side, side))
    result = benchmark(
        lambda: evaluate(TC, db, semi_naive=(mode == "seminaive"))
    )
    assert result.relation("t")


SETS = parse_program("""
disj(X, Y) :- s(X), s(Y), forall A in X (forall B in Y (A != B)).
chainable(X, Z) :- disj(X, Y), disj(Y, Z).
""")


@pytest.mark.parametrize("mode", ["seminaive", "naive"])
def test_quantified_workload(benchmark, evaluate, mode):
    db = set_database("s", 14, universe=18, max_size=4, seed=9)
    result = benchmark(
        lambda: evaluate(SETS, db, semi_naive=(mode == "seminaive"))
    )
    assert result.relation("chainable")
