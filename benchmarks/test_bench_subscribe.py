"""B-subscribe — standing-query diff latency vs naive re-evaluation.

The headline claim of the subscription subsystem: after a commit, getting
the exact answer-set diff to *K* standing queries costs far less than
re-running all *K* queries and diffing, because the delta-plan path
builds **one** adds-executor and **one** dels-executor per commit
(pinned to the commit's per-predicate delta) and every standing query
reuses them — per-query work is proportional to the delta, not to the
answer set.

Rounds time the **serving stage only**: the commit itself (incremental
maintenance, identical under both strategies) runs untimed in the round
setup; the timed body is "all K subscribers know their exact diffs" —
dispatcher catch-up + frame drain on the delta path, K re-evaluations +
set diffs on the naive path.  The workload is a layered DAG whose
materialized closure is large (what naive re-evaluation pays for) while
the churned edge moves a small closure slice (what the delta path pays
for) — the regime standing queries exist for.

``test_delta_vs_naive_floor`` enforces the ≥5× floor from the issue's
acceptance criteria at 100 standing queries; the ``benchmark`` cases
record per-commit serving latency at K ∈ {1, 100, 1000} under both
strategies in BENCH_results.json (compare ``delta``/``naive`` at equal
K).
"""

import os
import random
import time

import pytest

from repro.engine import Database
from repro.server import QueryService
from repro.workloads import chain_graph

TC = """
t(X, Y) :- e(X, Y).
t(X, Z) :- e(X, Y), t(Y, Z).
"""

N_NODES = 128


def _forward_shortcuts(n, m, seed=7):
    """Random forward (a < b) shortcut edges: a DAG, so the closure is
    large (~n²/2 pairs over the spine) but acyclic."""
    rng = random.Random(seed)
    out = set()
    while len(out) < m:
        a, b = rng.randrange(n), rng.randrange(n)
        if a < b:
            out.add((f"v{a}", f"v{b}"))
    return out


#: Spine + forward shortcuts + a sink reachable only through the churned
#: edge: deleting ``e(v1, sink)`` moves exactly the ``t({v0,v1}, sink)``
#: slice, so the per-commit delta stays tiny while the closure the naive
#: strategy re-scans holds ~n²/2 tuples.
EDGES = sorted(set(chain_graph(N_NODES - 1))
               | _forward_shortcuts(N_NODES, 2 * N_NODES)
               | {("v1", "sink")})
CHURN_EDGE = ("e", "v1", "sink")


def _graph_db():
    db = Database()
    for u, v in EDGES:
        db.add("e", u, v)
    return db


def _goals(k):
    return [f"t(v{i % N_NODES}, X)" for i in range(k)]


def _subscribed_service(k):
    """A service with K standing queries registered on one session."""
    svc = QueryService(
        TC, database=_graph_db(), max_pending_diffs=4 * k + 16
    )
    session = svc.open_session()
    for goal in _goals(k):
        response = session.subscribe(goal)
        assert response.ok
    return svc, session


def _commit_toggle(svc, state):
    """One commit: delete the churn edge if live, else re-insert it —
    alternating rounds return the model to its starting state."""
    if state["live"]:
        svc.apply_delta(dels=[CHURN_EDGE])
    else:
        svc.apply_delta(adds=[CHURN_EDGE])
    state["live"] = not state["live"]


@pytest.mark.parametrize("k", [1, 100, 1000])
def test_subscribe_delta_diffs(benchmark, k):
    """Serving latency per commit, delta-plan path, K subscriptions."""
    svc, session = _subscribed_service(k)
    state = {"live": True}
    frames = []

    def serve():
        assert svc.subscriptions.wait_caught_up(svc.model.version)
        frames.extend(session.take_push_frames())

    try:
        benchmark.pedantic(
            serve, setup=lambda: _commit_toggle(svc, state) or ((), {}),
            rounds=10,
        )
        assert frames                 # the churn really moves answers
    finally:
        svc.shutdown()


@pytest.mark.parametrize("k", [1, 100, 1000])
def test_subscribe_naive_reeval(benchmark, k):
    """The re-run-and-diff baseline the delta path is measured against."""
    svc = QueryService(TC, database=_graph_db())
    state = {"live": True}
    try:
        session = svc.open_session()
        goals = _goals(k)
        prev_rows = {
            goal: {
                tuple(str(t) for t in row)
                for row in session.query(goal).rows
            }
            for goal in goals
        }
        n_diffs = [0]

        def serve():
            for goal in goals:
                rows = {
                    tuple(str(t) for t in row)
                    for row in session.query(goal).rows
                }
                if rows != prev_rows[goal]:
                    n_diffs[0] += 1
                prev_rows[goal] = rows

        benchmark.pedantic(
            serve, setup=lambda: _commit_toggle(svc, state) or ((), {}),
            rounds=10,
        )
        assert n_diffs[0]
    finally:
        svc.shutdown()


@pytest.mark.skipif(
    os.environ.get("SKIP_TIMING_ASSERTS") == "1",
    reason="wall-clock assertion disabled (coverage-instrumented CI job; "
           "the dedicated benchmarks job still enforces it)",
)
def test_delta_vs_naive_floor():
    """Acceptance floor: at 100 standing queries, serving a commit's
    diffs through the delta-plan path beats naive re-evaluation ≥5×
    (min-of-k both sides, commits untimed on both sides)."""
    k = 100
    rounds = 10

    def best_delta():
        svc, session = _subscribed_service(k)
        state = {"live": True}
        try:
            best = float("inf")
            for _ in range(rounds):
                _commit_toggle(svc, state)
                t0 = time.perf_counter()
                assert svc.subscriptions.wait_caught_up(svc.model.version)
                session.take_push_frames()
                best = min(best, time.perf_counter() - t0)
            return best
        finally:
            svc.shutdown()

    def best_naive():
        svc = QueryService(TC, database=_graph_db())
        state = {"live": True}
        try:
            session = svc.open_session()
            goals = _goals(k)
            prev_rows = {
                goal: {
                    tuple(str(t) for t in row)
                    for row in session.query(goal).rows
                }
                for goal in goals
            }
            best = float("inf")
            for _ in range(rounds):
                _commit_toggle(svc, state)
                t0 = time.perf_counter()
                for goal in goals:
                    rows = {
                        tuple(str(t) for t in row)
                        for row in session.query(goal).rows
                    }
                    prev_rows[goal] = rows
                best = min(best, time.perf_counter() - t0)
            return best
        finally:
            svc.shutdown()

    delta_s = best_delta()
    naive_s = best_naive()
    speedup = naive_s / delta_s
    assert speedup >= 5.0, (
        f"delta-plan diff serving only {speedup:.1f}x faster than naive "
        f"re-evaluation at {k} standing queries (floor 5.0x): "
        f"{delta_s*1e3:.2f} ms vs {naive_s*1e3:.2f} ms per commit"
    )
