"""B1 — the introduction's contrast: LPS set rules vs Prolog list iteration.

The paper motivates LPS with ``member`` and ``disj``: in Prolog the
programmer encodes sets as lists and writes recursion; in LPS the
definition is one declarative rule.  This benchmark runs both — our
bottom-up LPS engine against our from-scratch SLD Prolog on the list
encodings — on identical workloads, measuring end-to-end query time.

Expected shape: both are polynomial here; Prolog's per-query backtracking
wins on single small queries, while the LPS engine amortises over the whole
disj relation (it computes all pairs at once).  The point is expressiveness
at comparable cost, not a knockout.
"""

import pytest

from repro import parse_program
from repro.baseline import ListSetBaseline
from repro.workloads import random_sets


def make_db(n_sets, width, seed=0):
    from repro.engine import Database

    sets = random_sets(n_sets, universe=width * 4, min_size=width,
                       max_size=width, seed=seed)
    db = Database()
    for s in sets:
        db.add("s", s)
    return db, sets


DISJ_PROGRAM = parse_program("""
disj(X, Y) :- s(X), s(Y), forall A in X (forall B in Y (A != B)).
""")


@pytest.mark.parametrize("width", [4, 8, 16])
def test_lps_disj_all_pairs(benchmark, evaluate, width):
    db, _ = make_db(12, width)
    result = benchmark(lambda: evaluate(DISJ_PROGRAM, db))
    assert result.relation("disj") is not None


@pytest.mark.parametrize("width", [4, 8, 16])
def test_prolog_disj_all_pairs(benchmark, width):
    _, sets = make_db(12, width)
    lists = [sorted(s) for s in sets]
    lib = ListSetBaseline()

    def all_pairs():
        return sum(
            1
            for s1 in lists
            for s2 in lists
            if lib.disjoint(s1, s2)
        )

    count = benchmark(all_pairs)
    assert 0 <= count <= len(lists) ** 2


@pytest.mark.parametrize("width", [8, 32, 128])
def test_prolog_member_scaling(benchmark, width):
    lib = ListSetBaseline()
    xs = list(range(width))

    def probe():
        hits = sum(1 for i in range(0, width, 4) if lib.member(i, xs))
        misses = lib.member(width + 1, xs)
        return hits, misses

    hits, misses = benchmark(probe)
    assert hits == len(range(0, width, 4)) and not misses


@pytest.mark.parametrize("width", [8, 32, 128])
def test_lps_member_scaling(benchmark, evaluate, width):
    """Membership is primitive in LPS — the engine checks it structurally."""
    from repro.core import atom, const, member, setvalue

    target = setvalue([const(i) for i in range(width)])

    program = parse_program("probe(yes) :- s(S), 0 in S.")
    from repro.engine import Database

    db = Database()
    db.add("s", frozenset(range(width)))
    result = benchmark(lambda: evaluate(program, db))
    assert result.relation("probe") == {("yes",)}
