"""Nested relations: sets of tuples whose components may be sets of atoms.

Values are plain Python: atomic components are ``str``/``int``; set-valued
components are ``frozenset`` of ``str``/``int``.  The class enforces the
schema at insertion, so algebra operators can assume well-kinded rows.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from .schema import ATOMIC, Attribute, Schema, SchemaError

AtomValue = Any  # str | int
Row = tuple


def _check_value(attr: Attribute, value: Any) -> Any:
    if attr.kind == ATOMIC:
        if isinstance(value, (frozenset, set)):
            raise SchemaError(
                f"attribute {attr.name!r} is atomic; got set value {value!r}"
            )
        return value
    if isinstance(value, (set, frozenset, list, tuple)):
        for e in value:
            if isinstance(e, (set, frozenset, list, tuple)):
                raise SchemaError(
                    f"attribute {attr.name!r} contains a nested set {e!r}; "
                    "LPS-style nested relations hold sets of atoms"
                )
        return frozenset(value)
    raise SchemaError(
        f"attribute {attr.name!r} is set-valued; got atomic value {value!r}"
    )


class NestedRelation:
    """An in-memory nested relation over a fixed schema."""

    def __init__(self, schema: Schema, rows: Iterable[Row] = ()) -> None:
        self.schema = schema
        self._rows: set[Row] = set()
        for r in rows:
            self.insert(*r)

    def insert(self, *values: Any) -> Row:
        if len(values) != self.schema.arity:
            raise SchemaError(
                f"expected {self.schema.arity} values, got {len(values)}"
            )
        row = tuple(
            _check_value(a, v) for a, v in zip(self.schema.attributes, values)
        )
        self._rows.add(row)
        return row

    def extend(self, rows: Iterable[Row]) -> None:
        for r in rows:
            self.insert(*r)

    def rows(self) -> frozenset[Row]:
        return frozenset(self._rows)

    def column(self, name: str) -> list[Any]:
        i = self.schema.index_of(name)
        return [r[i] for r in sorted(self._rows, key=repr)]

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: Row) -> bool:
        return tuple(row) in self._rows

    def __eq__(self, other: object) -> bool:
        if isinstance(other, NestedRelation):
            return self.schema == other.schema and self._rows == other._rows
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - rarely used
        return hash((self.schema, frozenset(self._rows)))

    def pretty(self) -> str:
        header = " | ".join(str(a) for a in self.schema.attributes)
        lines = [header, "-" * len(header)]
        for r in sorted(self._rows, key=repr):
            cells = []
            for a, v in zip(self.schema.attributes, r):
                if a.kind == ATOMIC:
                    cells.append(str(v))
                else:
                    cells.append("{" + ", ".join(sorted(map(str, v))) + "}")
            lines.append(" | ".join(cells))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"NestedRelation({self.schema}, {len(self)} rows)"
