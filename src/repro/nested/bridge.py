"""Bridge between nested relations and the LPS engine.

Example 4 of the paper expresses unnest as the LPS rule
``S(x, y) :- R(x, Y) ∧ y ∈ Y``; the tests use this bridge to check that the
algebra operators of :mod:`repro.nested.algebra` and the corresponding LPS
programs compute the same relations:

* :func:`relation_to_database` loads a nested relation as facts of a
  predicate (set-valued attributes become set values);
* :func:`relation_from_model` reads a predicate's extension back into a
  nested relation under a given schema;
* :func:`unnest_program` / :func:`nest_program` emit the LPS/LDL rule form
  of the two restructuring operators.
"""

from __future__ import annotations

from typing import Optional

from ..core.atoms import Atom, pos
from ..core.clauses import GroupingClause, LPSClause
from ..core.program import Program
from ..core.sorts import SORT_A, SORT_S
from ..core.terms import Var
from ..core.atoms import member
from ..engine.database import Database, from_term
from ..engine.evaluation import Model
from .relation import NestedRelation
from .schema import ATOMIC, SETOF, Schema


def relation_to_database(
    rel: NestedRelation, pred: str, db: Optional[Database] = None
) -> Database:
    """Load a nested relation as facts ``pred(...)``."""
    db = db or Database()
    for row in rel:
        db.add(pred, *row)
    return db


def relation_from_model(
    model: Model, pred: str, schema: Schema
) -> NestedRelation:
    """Read a predicate's extension from a model into a nested relation."""
    out = NestedRelation(schema)
    for values in model.relation(pred):
        out.insert(*values)
    return out


def _head_vars(schema: Schema, prefix: str = "V") -> list[Var]:
    out = []
    for i, attr in enumerate(schema.attributes):
        sort = SORT_S if attr.kind == SETOF else SORT_A
        out.append(Var(f"{prefix}{i}", sort))
    return out


def unnest_program(
    schema: Schema, name: str, src_pred: str, dst_pred: str
) -> Program:
    """Example 4's rule: ``dst(..., y, ...) :- src(..., Y, ...) ∧ y ∈ Y``."""
    pos_i = schema.index_of(name)
    if schema.attribute(name).kind != SETOF:
        raise ValueError(f"attribute {name!r} is not set-valued")
    src_vars = _head_vars(schema)
    elem = Var("E", SORT_A)
    dst_args = list(src_vars)
    dst_args[pos_i] = elem
    rule = LPSClause(
        head=Atom(dst_pred, tuple(dst_args)),
        body=(
            pos(Atom(src_pred, tuple(src_vars))),
            pos(member(elem, src_vars[pos_i])),
        ),
    )
    return Program.of(rule)


def unnest_via_engine(
    rel: NestedRelation, name: str, src_pred: str = "r", dst_pred: str = "s"
) -> NestedRelation:
    """Example 4 round-trip: run μ as an LPS rule through the engine.

    Loads the relation as facts, evaluates :func:`unnest_program` (whose
    rule compiles to a ``Scan → Unnest`` plan executed set-at-a-time —
    the same operator semantics :func:`repro.nested.algebra.unnest` runs
    on values), and reads the result back under the unnested schema.
    """
    from ..engine.evaluation import Evaluator

    program = unnest_program(rel.schema, name, src_pred, dst_pred)
    db = relation_to_database(rel, src_pred)
    model = Evaluator(program, db).run()
    out_schema = rel.schema.with_kind(name, ATOMIC)
    return relation_from_model(model, dst_pred, out_schema)


def nest_via_engine(
    rel: NestedRelation, name: str, src_pred: str = "r", dst_pred: str = "s"
) -> NestedRelation:
    """ν as an LDL grouping clause evaluated by the engine (``GroupBy``
    plan operator), read back under the nested schema."""
    from ..engine.evaluation import Evaluator

    program = nest_program(rel.schema, name, src_pred, dst_pred)
    db = relation_to_database(rel, src_pred)
    model = Evaluator(program, db).run()
    out_schema = rel.schema.with_kind(name, SETOF)
    return relation_from_model(model, dst_pred, out_schema)


def nest_program(
    schema: Schema, name: str, src_pred: str, dst_pred: str
) -> Program:
    """The grouping form of ν: ``dst(..., ⟨x⟩, ...) :- src(..., x, ...)``."""
    pos_i = schema.index_of(name)
    if schema.attribute(name).kind != ATOMIC:
        raise ValueError(f"attribute {name!r} is not atomic")
    src_vars = _head_vars(schema)
    group_var = src_vars[pos_i]
    other = tuple(v for i, v in enumerate(src_vars) if i != pos_i)
    g = GroupingClause(
        pred=dst_pred,
        head_args=other,
        group_pos=pos_i,
        group_var=group_var,
        body=(pos(Atom(src_pred, tuple(src_vars))),),
    )
    return Program.of(g)
