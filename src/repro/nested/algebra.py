"""Nested relational algebra: nest/unnest plus the classical operators.

Jaeschke and Schek's algebra ([JS82], which the paper cites for Example 4)
extends the flat relational algebra with two restructuring operators:

* :func:`unnest` — replace a set-valued attribute by its elements, one row
  per element (the paper's Example 4 rule ``S(x, y) :- R(x, Y) ∧ y ∈ Y``);
* :func:`nest` — group rows on the remaining attributes and collect one
  attribute's values into a set (LDL's grouping, Definition 14, is exactly
  this in rule form).

The classical operators (select/project/rename/join/union/difference) are
included so the examples and benchmarks can express complete queries.  The
algebra is value-level and independent of the LPS engine — but it is *not*
an independent implementation: every operator is a thin schema-handling
wrapper over the row kernels of :mod:`repro.engine.ir`, the same kernels
the plan executor runs on ground terms.  Example 4 therefore round-trips
through one shared operator semantics, whether a query is written against
relations here or as LPS rules compiled to plans (see
:mod:`repro.nested.bridge` for the conversion, and
``bridge.unnest_via_engine`` / ``bridge.nest_via_engine`` for the
engine-executed forms the tests compare against).

Known (and classical) caveat, tested explicitly: ``unnest`` drops rows whose
set component is empty, so ``nest ∘ unnest`` is the identity only on
relations without empty sets, while ``unnest ∘ nest`` is the identity on
flat relations.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping

from ..engine.ir import (
    anti_join_rows,
    join_rows,
    nest_rows,
    project_rows,
    select_rows,
    unnest_rows,
)
from .relation import NestedRelation, Row
from .schema import ATOMIC, SETOF, Attribute, Schema, SchemaError


def select(
    rel: NestedRelation, predicate: Callable[[Mapping[str, Any]], bool]
) -> NestedRelation:
    """σ: keep rows satisfying a predicate over an attribute-name mapping."""
    names = rel.schema.names()
    out = NestedRelation(rel.schema)
    out.extend(select_rows(rel, lambda row: predicate(dict(zip(names, row)))))
    return out


def project(rel: NestedRelation, names: Iterable[str]) -> NestedRelation:
    """π: project onto the named attributes (set semantics: dedupes)."""
    names = list(names)
    idx = tuple(rel.schema.index_of(n) for n in names)
    out = NestedRelation(rel.schema.project(names))
    out.extend(project_rows(rel, idx))
    return out


def rename(rel: NestedRelation, mapping: Mapping[str, str]) -> NestedRelation:
    """ρ: rename attributes."""
    out = NestedRelation(rel.schema.rename(dict(mapping)))
    for row in rel:
        out.insert(*row)
    return out


def union(r1: NestedRelation, r2: NestedRelation) -> NestedRelation:
    if r1.schema != r2.schema:
        raise SchemaError("union requires identical schemas")
    out = NestedRelation(r1.schema)
    for row in r1:
        out.insert(*row)
    for row in r2:
        out.insert(*row)
    return out


def difference(r1: NestedRelation, r2: NestedRelation) -> NestedRelation:
    if r1.schema != r2.schema:
        raise SchemaError("difference requires identical schemas")
    all_idx = tuple(range(r1.schema.arity))
    out = NestedRelation(r1.schema)
    out.extend(anti_join_rows(list(r1), list(r2), all_idx, all_idx))
    return out


def natural_join(r1: NestedRelation, r2: NestedRelation) -> NestedRelation:
    """⋈ on shared attribute names (set-valued attributes join by equality).

    Delegates to the executor's hash-join kernel
    (:func:`repro.engine.ir.join_rows`) — attribute names play the role
    plan variables play in compiled rule bodies.
    """
    shared = [n for n in r1.schema.names() if n in set(r2.schema.names())]
    for n in shared:
        if r1.schema.attribute(n).kind != r2.schema.attribute(n).kind:
            raise SchemaError(f"join attribute {n!r} has conflicting kinds")
    right_only = [n for n in r2.schema.names() if n not in shared]
    out_schema = Schema(
        r1.schema.attributes
        + tuple(r2.schema.attribute(n) for n in right_only)
    )
    lkey = tuple(r1.schema.index_of(n) for n in shared)
    rkey = tuple(r2.schema.index_of(n) for n in shared)
    rtake = tuple(r2.schema.index_of(n) for n in right_only)
    out = NestedRelation(out_schema)
    out.extend(join_rows(list(r1), list(r2), lkey, rkey, rtake))
    return out


def unnest(rel: NestedRelation, name: str) -> NestedRelation:
    """μ: flatten a set-valued attribute (Example 4's unnest).

    Rows with an empty set at ``name`` produce no output rows — the
    classical information loss of the operator, preserved identically by
    the shared kernel (:func:`repro.engine.ir.unnest_rows`) and by the
    engine's ``Unnest`` plan operator.
    """
    attr = rel.schema.attribute(name)
    if attr.kind != SETOF:
        raise SchemaError(f"cannot unnest atomic attribute {name!r}")
    pos = rel.schema.index_of(name)
    out = NestedRelation(rel.schema.with_kind(name, ATOMIC))
    out.extend(unnest_rows(rel, pos, iter))
    return out


def nest(rel: NestedRelation, name: str) -> NestedRelation:
    """ν: group on all other attributes, collecting ``name`` into a set
    (the value-level twin of the engine's ``GroupBy`` plan operator)."""
    attr = rel.schema.attribute(name)
    if attr.kind != ATOMIC:
        raise SchemaError(f"cannot nest set-valued attribute {name!r}")
    pos = rel.schema.index_of(name)
    out = NestedRelation(rel.schema.with_kind(name, SETOF))
    out.extend(nest_rows(rel, pos, frozenset))
    return out
