"""Nested relational algebra: nest/unnest plus the classical operators.

Jaeschke and Schek's algebra ([JS82], which the paper cites for Example 4)
extends the flat relational algebra with two restructuring operators:

* :func:`unnest` — replace a set-valued attribute by its elements, one row
  per element (the paper's Example 4 rule ``S(x, y) :- R(x, Y) ∧ y ∈ Y``);
* :func:`nest` — group rows on the remaining attributes and collect one
  attribute's values into a set (LDL's grouping, Definition 14, is exactly
  this in rule form).

The classical operators (select/project/rename/join/union/difference) are
included so the examples and benchmarks can express complete queries.  The
algebra is value-level and independent of the LPS engine;
:mod:`repro.nested.bridge` converts between relations and LPS facts so the
tests can check, per the paper, that the algebra and the rules agree.

Known (and classical) caveat, tested explicitly: ``unnest`` drops rows whose
set component is empty, so ``nest ∘ unnest`` is the identity only on
relations without empty sets, while ``unnest ∘ nest`` is the identity on
flat relations.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping

from .relation import NestedRelation, Row
from .schema import ATOMIC, SETOF, Attribute, Schema, SchemaError


def select(
    rel: NestedRelation, predicate: Callable[[Mapping[str, Any]], bool]
) -> NestedRelation:
    """σ: keep rows satisfying a predicate over an attribute-name mapping."""
    names = rel.schema.names()
    out = NestedRelation(rel.schema)
    for row in rel:
        if predicate(dict(zip(names, row))):
            out.insert(*row)
    return out


def project(rel: NestedRelation, names: Iterable[str]) -> NestedRelation:
    """π: project onto the named attributes (set semantics: dedupes)."""
    names = list(names)
    idx = [rel.schema.index_of(n) for n in names]
    out = NestedRelation(rel.schema.project(names))
    for row in rel:
        out.insert(*(row[i] for i in idx))
    return out


def rename(rel: NestedRelation, mapping: Mapping[str, str]) -> NestedRelation:
    """ρ: rename attributes."""
    out = NestedRelation(rel.schema.rename(dict(mapping)))
    for row in rel:
        out.insert(*row)
    return out


def union(r1: NestedRelation, r2: NestedRelation) -> NestedRelation:
    if r1.schema != r2.schema:
        raise SchemaError("union requires identical schemas")
    out = NestedRelation(r1.schema)
    for row in r1:
        out.insert(*row)
    for row in r2:
        out.insert(*row)
    return out


def difference(r1: NestedRelation, r2: NestedRelation) -> NestedRelation:
    if r1.schema != r2.schema:
        raise SchemaError("difference requires identical schemas")
    out = NestedRelation(r1.schema)
    for row in r1:
        if row not in r2:
            out.insert(*row)
    return out


def natural_join(r1: NestedRelation, r2: NestedRelation) -> NestedRelation:
    """⋈ on shared attribute names (set-valued attributes join by equality)."""
    shared = [n for n in r1.schema.names() if n in set(r2.schema.names())]
    for n in shared:
        if r1.schema.attribute(n).kind != r2.schema.attribute(n).kind:
            raise SchemaError(f"join attribute {n!r} has conflicting kinds")
    right_only = [n for n in r2.schema.names() if n not in shared]
    out_schema = Schema(
        r1.schema.attributes
        + tuple(r2.schema.attribute(n) for n in right_only)
    )
    idx1 = {n: r1.schema.index_of(n) for n in r1.schema.names()}
    idx2 = {n: r2.schema.index_of(n) for n in r2.schema.names()}

    by_key: dict[tuple, list[Row]] = {}
    for row in r2:
        key = tuple(row[idx2[n]] for n in shared)
        by_key.setdefault(key, []).append(row)
    out = NestedRelation(out_schema)
    for row in r1:
        key = tuple(row[idx1[n]] for n in shared)
        for other in by_key.get(key, ()):
            out.insert(*row, *(other[idx2[n]] for n in right_only))
    return out


def unnest(rel: NestedRelation, name: str) -> NestedRelation:
    """μ: flatten a set-valued attribute (Example 4's unnest).

    Rows with an empty set at ``name`` produce no output rows — the
    classical information loss of the operator.
    """
    attr = rel.schema.attribute(name)
    if attr.kind != SETOF:
        raise SchemaError(f"cannot unnest atomic attribute {name!r}")
    pos = rel.schema.index_of(name)
    out = NestedRelation(rel.schema.with_kind(name, ATOMIC))
    for row in rel:
        for elem in row[pos]:
            new_row = list(row)
            new_row[pos] = elem
            out.insert(*new_row)
    return out


def nest(rel: NestedRelation, name: str) -> NestedRelation:
    """ν: group on all other attributes, collecting ``name`` into a set."""
    attr = rel.schema.attribute(name)
    if attr.kind != ATOMIC:
        raise SchemaError(f"cannot nest set-valued attribute {name!r}")
    pos = rel.schema.index_of(name)
    groups: dict[tuple, set] = {}
    for row in rel:
        key = row[:pos] + row[pos + 1:]
        groups.setdefault(key, set()).add(row[pos])
    out = NestedRelation(rel.schema.with_kind(name, SETOF))
    for key, values in groups.items():
        new_row = list(key)
        new_row.insert(pos, frozenset(values))
        out.insert(*new_row)
    return out
