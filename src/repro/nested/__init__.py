"""Nested (non-1NF) relations — the database substrate the paper targets.

* :mod:`repro.nested.schema` / :mod:`repro.nested.relation` — the data
  model: relations whose components may be sets of atoms;
* :mod:`repro.nested.algebra` — [JS82]'s nest/unnest plus the classical
  operators;
* :mod:`repro.nested.bridge` — conversion to/from LPS facts and the rule
  forms of unnest (Example 4) and nest (LDL grouping).
"""

from .schema import ATOMIC, SETOF, Attribute, Schema, SchemaError
from .relation import NestedRelation
from .algebra import (
    difference,
    natural_join,
    nest,
    project,
    rename,
    select,
    union,
    unnest,
)
from .bridge import (
    nest_program,
    relation_from_model,
    relation_to_database,
    unnest_program,
)

__all__ = [
    "ATOMIC",
    "SETOF",
    "Attribute",
    "Schema",
    "SchemaError",
    "NestedRelation",
    "select",
    "project",
    "rename",
    "union",
    "difference",
    "natural_join",
    "nest",
    "unnest",
    "relation_to_database",
    "relation_from_model",
    "unnest_program",
    "nest_program",
]
