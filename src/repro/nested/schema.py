"""Schemas for nested (non-1NF) relations.

The paper motivates LPS as a query language for **nested relations** — the
non-first-normal-form model of [JS82] and its relatives, where a tuple
component may be a *set* of values rather than an atomic value (Example 4's
``R(x, Y)``, Example 6's ``parts(x, Y)``).

A :class:`Schema` assigns each attribute either the atomic kind
(:data:`ATOMIC`) or the set kind (:data:`SETOF`).  One nesting level matches
LPS; nested schemas (sets of tuples) are deliberately out of scope — the
paper's data model is sets of *atoms*, so ours is too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..core.errors import LPSError

#: Attribute kinds.
ATOMIC = "atomic"
SETOF = "setof"


class SchemaError(LPSError):
    """Schema violation: bad attribute, kind mismatch, arity mismatch."""


@dataclass(frozen=True)
class Attribute:
    """A named, kinded column."""

    name: str
    kind: str = ATOMIC

    def __post_init__(self) -> None:
        if self.kind not in (ATOMIC, SETOF):
            raise SchemaError(f"unknown attribute kind {self.kind!r}")

    def __str__(self) -> str:
        return self.name if self.kind == ATOMIC else f"{self.name}*"


@dataclass(frozen=True)
class Schema:
    """An ordered list of attributes with unique names."""

    attributes: tuple[Attribute, ...]

    def __post_init__(self) -> None:
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in {names}")

    @staticmethod
    def of(*specs: str) -> "Schema":
        """Build a schema from specs like ``Schema.of("part", "components*")``
        — a trailing ``*`` marks a set-valued attribute."""
        attrs = []
        for s in specs:
            if s.endswith("*"):
                attrs.append(Attribute(s[:-1], SETOF))
            else:
                attrs.append(Attribute(s, ATOMIC))
        return Schema(tuple(attrs))

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    def index_of(self, name: str) -> int:
        for i, a in enumerate(self.attributes):
            if a.name == name:
                return i
        raise SchemaError(f"no attribute {name!r} in {self}")

    def attribute(self, name: str) -> Attribute:
        return self.attributes[self.index_of(name)]

    def project(self, names: Iterable[str]) -> "Schema":
        return Schema(tuple(self.attribute(n) for n in names))

    def drop(self, name: str) -> "Schema":
        self.index_of(name)
        return Schema(tuple(a for a in self.attributes if a.name != name))

    def rename(self, mapping: dict[str, str]) -> "Schema":
        return Schema(tuple(
            Attribute(mapping.get(a.name, a.name), a.kind)
            for a in self.attributes
        ))

    def with_kind(self, name: str, kind: str) -> "Schema":
        return Schema(tuple(
            Attribute(a.name, kind) if a.name == name else a
            for a in self.attributes
        ))

    def is_flat(self) -> bool:
        """Whether every attribute is atomic (first normal form)."""
        return all(a.kind == ATOMIC for a in self.attributes)

    def __str__(self) -> str:
        return "(" + ", ".join(str(a) for a in self.attributes) + ")"
