"""Follower side: tail the leader's WAL stream into a local durable model.

A :class:`FollowerService` owns three things:

* a **DurableModel of its own** — every shipped record is re-logged into
  the follower's data directory before its version is published locally,
  so a follower crash recovers exactly like a leader crash (same code
  path), and a recovered follower resumes the stream from its durable
  applied version, not from zero;
* the **tail loop** — a daemon thread that connects to the leader, sends
  ``:repl from <applied>``, replays each frame through
  ``MaterializedModel.apply_delta`` (the maintenance engine, not a second
  evaluation path), acks every applied version, and reconnects with
  exponential backoff + jitter when the stream drops.  Redelivered
  records (``version <= applied``) are skipped, so a torn stream plus
  reconnect is idempotent;
* a read-only :class:`~repro.server.service.QueryService` — sessions are
  :class:`FollowerSession`: writes come back ``read_only`` with the
  leader's address, and ``:at N`` beyond the applied high-water mark is
  the *retryable* ``not_yet_applied`` (the version may exist upstream).

**Fencing.**  The follower tracks the leader's epoch from the stream.  A
record carrying a *lower* epoch than the follower has durably seen raises
:class:`~repro.storage.durable.FencingError` and stops the tail loop for
good — that is the deposed leader trying to extend a fenced lineage.
:meth:`FollowerService.promote` is the other side: stop tailing, bump the
local epoch past anything the old leader ever announced, attach a
:class:`~repro.replication.hub.ReplicationHub`, and open for writes.
Version numbers continue monotonically from the applied high-water mark.
"""

from __future__ import annotations

import logging
import select
import socket
import threading
import time
from pathlib import Path
from typing import Optional, Union

from ..engine.database import Database
from ..engine.evaluation import EvalOptions
from ..engine.setops import with_set_builtins
from ..server.protocol import Backoff
from ..server.service import QueryService
from ..server.session import E_NOT_YET, E_READ_ONLY, Response, Session
from ..storage.codec import (
    KIND_DELTA,
    KIND_EPOCH,
    KIND_PROGRAM,
    KIND_REPL_HELLO,
    KIND_REPL_SNAPSHOT,
    CodecError,
    StorageError,
    decode_atom,
    decode_atoms,
    decode_program,
    decode_record,
)
from ..storage.checkpoint import list_checkpoints
from ..storage.durable import DurableModel, FencingError, has_state
from ..storage.wal import FSYNC_ALWAYS, WriteAheadLog

logger = logging.getLogger("repro.replication")


class ReplicationError(StorageError):
    """The replication stream violated its protocol (gap, bad frame,
    refused subscription, divergent replay).  Recoverable by reconnecting
    — unlike :class:`FencingError`, which is terminal for the stream."""


def _parse_addr(addr: Union[str, tuple]) -> tuple[str, int]:
    if isinstance(addr, tuple):
        return addr[0], int(addr[1])
    host, _, port = addr.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {addr!r}")
    return host, int(port)


class FollowerSession(Session):
    """Read-only session over a follower's applied state.

    All divergences from the base session are structural responses: a
    write is ``read_only`` plus the leader's address, ``:at N`` past the
    applied high-water mark is the retryable ``not_yet_applied``, and
    ``:promote`` triggers failover.  After promotion the hooks fall
    through to the base behavior — existing connections become writable
    without reconnecting.
    """

    def _follower(self) -> Optional["FollowerService"]:
        return self._service.follower if self._service is not None else None

    def _future_version(self, version: int, latest: int) -> Response:
        if self._follower() is None:
            return super()._future_version(version, latest)
        with self._lock:
            self.stats.errors += 1
        return Response(
            ok=False, kind="error", code=E_NOT_YET,
            error=(
                f"version {version} is not applied on this follower yet "
                f"(applied up to {latest})"
            ),
            data={"retryable": True, "latest": latest},
        )

    def _promote(self) -> Response:
        follower = self._follower()
        if follower is None:
            return super()._promote()
        data = follower.promote()
        return Response(
            ok=True, kind="role", data=data, version=self._model.version
        )


class FollowerService:
    """Maintain a read-only replica of a leader over the line protocol."""

    def __init__(
        self,
        leader: Union[str, tuple],
        data_dir: Union[str, Path],
        builtins=None,
        options: Optional[EvalOptions] = None,
        keep_versions: int = 8,
        fsync: str = FSYNC_ALWAYS,
        checkpoint_every: Optional[int] = 512,
        max_workers: int = 8,
        max_batch: int = 10_000,
        connect_timeout: float = 5.0,
        read_timeout: float = 5.0,
        backoff_initial: float = 0.05,
        backoff_max: float = 2.0,
    ) -> None:
        self.leader_host, self.leader_port = _parse_addr(leader)
        self.data_dir = Path(data_dir)
        self._builtins = (
            builtins if builtins is not None else with_set_builtins()
        )
        self._options = options
        self._keep_versions = keep_versions
        self._fsync = fsync
        self._checkpoint_every = checkpoint_every
        self._max_workers = max_workers
        self._max_batch = max_batch
        self.connect_timeout = connect_timeout
        self.read_timeout = read_timeout
        self._backoff = Backoff(backoff_initial, backoff_max)
        self.model: Optional[DurableModel] = None
        self.service: Optional[QueryService] = None
        self.promoted = False
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._sock: Optional[socket.socket] = None
        self._cond = threading.Condition()
        self._connected = False
        self._fenced = False
        self._leader_epoch = 0
        self._last_error: Optional[str] = None
        self._promote_lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------------

    def start(self, timeout: float = 30.0) -> QueryService:
        """Recover or bootstrap, start tailing, return the read service.

        Blocks until the replica holds *some* applied state: recovered
        locally, or snapshot-bootstrapped from the leader (a fresh
        store's initial version lives only in its checkpoint, so a new
        follower always starts from a shipped snapshot).
        """
        if has_state(self.data_dir):
            self.model = DurableModel.recover(
                self.data_dir,
                builtins=self._builtins,
                options=self._options,
                keep_versions=self._keep_versions,
                fsync=self._fsync,
                checkpoint_every=self._checkpoint_every,
            )
        self._thread = threading.Thread(
            target=self._run, name="lps-follower", daemon=True
        )
        self._thread.start()
        deadline = time.monotonic() + timeout
        with self._cond:
            while self.model is None:
                if self._fenced:
                    raise FencingError(
                        self._last_error or "follower was fenced"
                    )
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(min(remaining, 0.1))
        if self.model is None:
            self.stop()
            raise ReplicationError(
                f"could not bootstrap from leader {self.leader_host}:"
                f"{self.leader_port} within {timeout:g}s"
                + (f": {self._last_error}" if self._last_error else "")
            )
        service = QueryService(
            model=self.model,
            max_workers=self._max_workers,
            max_batch=self._max_batch,
        )
        service.follower = self
        service.session_class = FollowerSession
        with self._cond:
            # A floor-lag re-seed may have swapped ``self.model`` while
            # the service was being built; publish the service and the
            # freshest model together so neither can be missed.
            service.model = self.model
            self.service = service
        return self.service

    def stop_tailing(self) -> None:
        """Stop the shipping thread (keeps serving reads)."""
        self._stop.set()
        sock = self._sock
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=10.0)

    def stop(self) -> None:
        """Full shutdown: tail loop, service, durable model."""
        self.stop_tailing()
        if self.service is not None:
            self.service.shutdown()        # closes the model too
        elif self.model is not None:
            self.model.close()

    def __enter__(self) -> "FollowerService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- role --------------------------------------------------------------------

    def refuse_write(self) -> Response:
        return Response(
            ok=False, kind="error", code=E_READ_ONLY,
            error=(
                "this server is a follower; send writes to the leader"
            ),
            data={"leader": f"{self.leader_host}:{self.leader_port}"},
        )

    def role_info(self) -> dict:
        return {
            "role": "follower",
            "leader": f"{self.leader_host}:{self.leader_port}",
            "connected": self._connected,
            "fenced": self._fenced,
            "leader_epoch": self._leader_epoch,
        }

    def promote(self) -> dict:
        """Fail over: stop tailing, fence the old lineage, open writes.

        The epoch is bumped past both the follower's durable epoch and
        anything the old leader ever *announced* (hello frames), the bump
        is WAL-logged before it takes effect, and a
        :class:`~repro.replication.hub.ReplicationHub` is attached so
        surviving peers can re-subscribe here.  Idempotent.
        """
        from .hub import ReplicationHub

        with self._promote_lock:
            if self.service is None or self.model is None:
                raise ReplicationError(
                    "cannot promote: the follower is not started"
                )
            if self.promoted:
                return self.service.role_info()
            self.stop_tailing()
            new_epoch = max(self.model.epoch, self._leader_epoch) + 1
            self.model.bump_epoch(new_epoch)
            ReplicationHub.attach(self.service)
            self.service.follower = None   # writes flow from here on
            self.service.session_class = Session
            self.promoted = True
            logger.warning(
                "promoted to leader at version %d epoch %d",
                self.model.version, new_epoch,
            )
            return self.service.role_info()

    def retarget(self, leader: Union[str, tuple]) -> None:
        """Re-point a surviving follower at a newly promoted leader.

        Drops the current stream (if any); the tail loop reconnects to
        the new address from the follower's applied version.  The new
        leader's higher epoch arrives as an ordinary epoch record and is
        adopted durably — while any straggling frame still carrying the
        old leader's epoch is rejected by the stale-epoch check.
        """
        host, port = _parse_addr(leader)
        if (host, port) == (self.leader_host, self.leader_port):
            return
        logger.info(
            "retargeting follower from %s:%d to %s:%d",
            self.leader_host, self.leader_port, host, port,
        )
        self.leader_host, self.leader_port = host, port
        sock = self._sock
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def wait_applied(self, version: int, timeout: float = 10.0) -> bool:
        """Test/demo helper: block until ``version`` is applied here."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while self.model is None or self.model.version < version:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
        return True

    # -- the tail loop -----------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self._sync_once()
                self._backoff.reset()
            except FencingError as exc:
                with self._cond:
                    self._fenced = True
                    self._last_error = str(exc)
                    self._cond.notify_all()
                logger.error("follower fenced, tailing stops: %s", exc)
                return
            except (OSError, ConnectionError, StorageError) as exc:
                with self._cond:
                    self._last_error = str(exc)
                if not self._stop.is_set():
                    logger.warning(
                        "replication stream to %s:%d dropped (%s); "
                        "reconnecting", self.leader_host, self.leader_port,
                        exc,
                    )
            finally:
                self._set_connected(False)
            if self._stop.wait(self._backoff.next_delay()):
                return

    def _sync_once(self) -> None:
        applied = self.model.version if self.model is not None else 0
        sock = socket.create_connection(
            (self.leader_host, self.leader_port),
            timeout=self.connect_timeout,
        )
        self._sock = sock
        try:
            sock.settimeout(self.connect_timeout)   # bounds sendall only
            sock.sendall(f":repl from {applied}\n".encode("ascii"))
            self._set_connected(True)
            # Select-driven line reader: a blocking buffered readline
            # cannot be safely interrupted for heartbeats, so buffer by
            # hand and poll with ``read_timeout`` as the idle interval.
            buf = b""
            while not self._stop.is_set():
                while b"\n" in buf:
                    raw, buf = buf.split(b"\n", 1)
                    line = raw.decode("ascii", errors="replace").strip()
                    if line:
                        self._handle_line(line, sock)
                try:
                    ready, _, _ = select.select(
                        [sock], [], [], self.read_timeout
                    )
                except (ValueError, OSError):
                    # The socket was closed under us (stop/sever/retarget).
                    raise ConnectionError(
                        "replication socket closed"
                    ) from None
                if self._stop.is_set():
                    return
                if not ready:
                    # Idle stream: heartbeat our applied version.
                    if self.model is not None:
                        self._ack(sock)
                    continue
                chunk = sock.recv(1 << 16)
                if not chunk:
                    raise ConnectionError(
                        "leader closed the replication stream"
                    )
                buf += chunk
        finally:
            self._sock = None
            try:
                sock.close()
            except OSError:
                pass

    def _handle_line(self, line: str, sock: socket.socket) -> None:
        try:
            kind, data = decode_record(line)
        except CodecError as exc:
            resp = _maybe_response(line)
            if resp is not None:
                raise ReplicationError(
                    f"leader refused replication: {resp.error} "
                    f"({resp.code})"
                ) from None
            raise ReplicationError(
                f"undecodable replication frame: {exc}"
            ) from exc
        self._apply_record(kind, data, sock)

    def _apply_record(
        self, kind: str, data: dict, sock: socket.socket
    ) -> None:
        if kind == KIND_REPL_HELLO:
            epoch = data.get("epoch", 0)
            if self.model is not None and epoch < self.model.epoch:
                raise FencingError(
                    f"leader announces epoch {epoch} but this follower "
                    f"has durably seen epoch {self.model.epoch}; that "
                    "leader was fenced"
                )
            self._leader_epoch = max(self._leader_epoch, epoch)
            return
        if kind == KIND_REPL_SNAPSHOT:
            self._bootstrap(data)
            self._ack(sock)
            return
        if self.model is None:
            raise ReplicationError(
                f"{kind!r} record arrived before any snapshot or local "
                "state"
            )
        if kind == KIND_EPOCH:
            epoch = data.get("epoch")
            if not isinstance(epoch, int):
                raise ReplicationError(
                    "epoch record without an epoch number"
                )
            if epoch < self.model.epoch:
                raise FencingError(
                    f"epoch regression on the stream: {epoch} after "
                    f"{self.model.epoch}"
                )
            if epoch > self.model.epoch:
                self.model.bump_epoch(epoch)   # durably, via our own WAL
            self._note_applied()
            self._ack(sock)
            return
        if kind in (KIND_DELTA, KIND_PROGRAM):
            version = data.get("version")
            if not isinstance(version, int):
                raise ReplicationError(f"{kind!r} record without a version")
            if version <= self.model.version:
                return                     # redelivery after reconnect
            if version != self.model.version + 1:
                raise ReplicationError(
                    f"gap in the replication stream: applied "
                    f"{self.model.version}, received {version}"
                )
            rec_epoch = data.get("epoch", 0)
            if rec_epoch < self.model.epoch:
                raise FencingError(
                    f"stale-epoch record for version {version}: epoch "
                    f"{rec_epoch} after {self.model.epoch} — a fenced "
                    "leader's write, rejected"
                )
            if rec_epoch > self.model.epoch:
                raise ReplicationError(
                    f"record for version {version} claims epoch "
                    f"{rec_epoch} which no epoch record announced"
                )
            if kind == KIND_DELTA:
                snap = self.model.apply_delta(
                    adds=decode_atoms(data.get("adds", ())),
                    dels=decode_atoms(data.get("dels", ())),
                )
            else:
                snap = self.model.replace_program(
                    decode_program(data.get("source"))
                )
            if snap.version != version:
                raise ReplicationError(
                    f"replaying version {version} published "
                    f"{snap.version}; this follower diverges from the "
                    "leader"
                )
            self._note_applied()
            self._ack(sock)
            return
        raise ReplicationError(f"unknown replication frame kind {kind!r}")

    def _bootstrap(self, data: dict) -> None:
        version = data.get("version")
        epoch = data.get("epoch", 0)
        if self.model is not None:
            if isinstance(version, int) and version <= self.model.version:
                return                     # we already cover it
            if epoch < self.model.epoch:
                raise FencingError(
                    f"snapshot at epoch {epoch} after this follower "
                    f"durably saw epoch {self.model.epoch}; that leader "
                    "was fenced"
                )
            # The leader only offers a *newer* snapshot when it can no
            # longer replay the gap from its WAL (this follower fell
            # behind the checkpoint-truncated floor).  Local state is a
            # strict-past prefix of the snapshot, so discard it and fall
            # through to the fresh-seed path instead of erroring out.
            logger.warning(
                "behind the leader's WAL floor (local version %d, "
                "snapshot at %d): discarding local state and re-seeding",
                self.model.version, version,
            )
            self._discard_local_state()
        if not isinstance(version, int) or version < 1:
            raise ReplicationError("snapshot without a valid version")
        program = decode_program(data.get("program"))
        db = Database()
        for s in data.get("facts", ()):
            db.add_atom(decode_atom(s))
        model = DurableModel(
            program,
            self.data_dir,
            db,
            builtins=self._builtins,
            options=self._options,
            keep_versions=self._keep_versions,
            fsync=self._fsync,
            checkpoint_every=self._checkpoint_every,
            base_version=version - 1,
            epoch=epoch,
        )
        with self._cond:
            self.model = model
            if self.service is not None:
                # Re-seed while serving: new sessions read the fresh
                # model; existing sessions keep their pinned snapshots.
                self.service.model = model
            self._cond.notify_all()
        if self.service is not None:
            # Standing queries follow the replacement model; subscribers
            # get one catch-up diff spanning the re-seed jump.
            self.service.subscriptions.retarget(model)
        logger.info(
            "bootstrapped from leader snapshot at version %d epoch %d "
            "(%d facts)", version, epoch, len(data.get("facts", ())),
        )

    def _discard_local_state(self) -> None:
        """Close and delete the local WAL + checkpoints (floor-lag
        re-seed): the caller immediately rebuilds a fresh durable model
        from the leader's snapshot in the same directory.  The stale
        model object stays installed (closed models still serve reads)
        until the caller swaps in the fresh one, so concurrent readers
        never observe a model-less follower."""
        model = self.model
        if model is not None:
            model.close()
        for p in WriteAheadLog(self.data_dir).segments():
            p.unlink()
        for p in list_checkpoints(self.data_dir):
            p.unlink()

    def _ack(self, sock: socket.socket) -> None:
        sock.sendall(f":ack {self.model.version}\n".encode("ascii"))

    def _note_applied(self) -> None:
        with self._cond:
            self._cond.notify_all()

    def _set_connected(self, connected: bool) -> None:
        with self._cond:
            self._connected = connected
            self._cond.notify_all()


def _maybe_response(line: str) -> Optional[Response]:
    try:
        return Response.from_json(line)
    except (ValueError, KeyError):
        return None
