"""Replication & failover: WAL-shipping followers over the line protocol.

The design (DESIGN.md, "Replication & failover") in one paragraph: the
leader's :class:`~repro.storage.durable.DurableModel` already produces a
totally ordered, checksummed, crash-recoverable log of every acknowledged
commit — replication *ships that log*.  A follower tails the stream over
the ``:repl from N`` protocol extension, replays each record through the
same ``MaterializedModel.apply_delta`` engine that recovery uses, logs it
into its **own** durable directory (so a follower is independently
crash-recoverable), and serves read-only sessions at its applied version.
Failover bumps a fencing **epoch** stamped into every record: a promoted
follower's lineage rejects any append still carrying the deposed leader's
epoch, so acknowledged history can never fork silently.

* :class:`ReplicationHub` — leader side: subscribes to the model's commit
  stream under the write lock (gap-free), fans records out to followers,
  collects ``:ack N`` confirmations, and gates write acknowledgement on
  ``ack_replicas``.
* :class:`FollowerService` — follower side: bootstrap (snapshot or local
  recovery), tail/replay/ack loop with reconnect backoff, read-only
  sessions, :meth:`FollowerService.promote`.
* :class:`ReplicaClient` — client side: writes to the leader, reads
  fanned out across followers, read-your-writes via version tokens.
* :func:`promote_best` — pick the follower with the highest durable
  version and promote it.
"""

from .client import ReplicaClient, promote_best
from .follower import FollowerService, FollowerSession, ReplicationError
from .hub import ReplicationHub, ReplicationLagError

__all__ = [
    "ReplicationHub",
    "ReplicationLagError",
    "FollowerService",
    "FollowerSession",
    "ReplicationError",
    "ReplicaClient",
    "promote_best",
]
