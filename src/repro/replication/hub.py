"""Leader-side WAL shipping: fan commits out, collect follower acks.

A follower opens an ordinary protocol connection and sends
``:repl from N`` — "I have durably applied every version up to N".  The
connection then becomes a dedicated replication stream:

* **downstream** (leader → follower): :mod:`repro.storage.codec` record
  frames, one per line, CRC-checked exactly like the WAL file they came
  from.  First a ``repl-hello`` (the leader's epoch and latest version),
  then — if the leader's WAL no longer covers ``N`` — one
  ``repl-snapshot`` carrying the full program + EDB, then the committed
  history after ``N``, then live commits as they happen.
* **upstream** (follower → leader): ``:ack V`` lines, "version V is
  durable here".  Acks drive :meth:`ReplicationHub.wait_replicated`, the
  ``ack_replicas`` write-acknowledgement gate.

**Gap freedom.**  The handoff from history to live tailing is atomic:
:meth:`DurableModel.subscribe_replication` reads the WAL tail and
registers the commit listener under the model's write lock, so no commit
can fall between "what the file held" and "what the listener sees".  The
listener itself runs on the writer's thread under that lock, so it only
does ``loop.call_soon_threadsafe(queue.put_nowait, …)`` — the socket work
happens on the server's event loop.

A slow or dead follower never blocks the leader's writers: records queue
per subscriber — **bounded** by ``max_queue``.  A follower that stops
reading fills its queue (the serve loop is parked in ``drain()`` on the
stalled socket) and is then cut off: the overflow handler aborts the
transport, the stream unwinds, and the follower reconnects from its
applied version through the ordinary snapshot/history handoff (duplicate
suppression on the follower makes redelivery harmless).  Leader memory
per subscriber therefore stays O(``max_queue``) no matter how long a
connected-but-stalled follower lingers.
"""

from __future__ import annotations

import asyncio
import logging
import threading
import time
from typing import Optional

from ..storage.codec import (
    KIND_REPL_HELLO,
    KIND_REPL_SNAPSHOT,
    StorageError,
    encode_record,
)
from ..server.session import Response

logger = logging.getLogger("repro.replication")


class ReplicationLagError(StorageError):
    """``ack_replicas`` could not be satisfied in time.

    The write *is* locally durable and published — what failed is the
    replication guarantee the deployment asked for.  Carries the stable
    protocol code ``replication_lag`` so sessions surface it structurally.
    """

    code = "replication_lag"


def _frame(kind: str, data: dict) -> bytes:
    return encode_record(kind, data).encode("ascii") + b"\n"


#: Default per-subscriber queue bound: enough to ride out transient
#: stalls (GC pauses, a slow fsync on the follower) without letting a
#: wedged-but-connected follower grow leader memory under write churn.
DEFAULT_MAX_QUEUE = 1024


class ReplicationHub:
    """Fan a leader's commit stream out to its follower subscribers."""

    def __init__(self, service, max_queue: int = DEFAULT_MAX_QUEUE) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.service = service
        self.model = service.model
        self.max_queue = max_queue
        if not hasattr(self.model, "subscribe_replication"):
            raise StorageError(
                "replication requires a durable model (data_dir); an "
                "in-memory model has no WAL to ship"
            )
        self._ids = 0
        self._cond = threading.Condition()
        #: subscriber id -> highest version it acknowledged as durable.
        self._acks: dict[int, int] = {}

    @classmethod
    def attach(
        cls, service, max_queue: int = DEFAULT_MAX_QUEUE
    ) -> "ReplicationHub":
        """Create a hub and install it as ``service.hub``."""
        hub = cls(service, max_queue=max_queue)
        service.hub = hub
        return hub

    # -- ack bookkeeping (any thread) --------------------------------------------

    def _register(self, from_version: int) -> int:
        with self._cond:
            self._ids += 1
            sub_id = self._ids
            self._acks[sub_id] = from_version
            self._cond.notify_all()
            return sub_id

    def _unregister(self, sub_id: int) -> None:
        with self._cond:
            self._acks.pop(sub_id, None)
            self._cond.notify_all()

    def note_ack(self, sub_id: int, version: int) -> None:
        with self._cond:
            if sub_id in self._acks and version > self._acks[sub_id]:
                self._acks[sub_id] = version
                self._cond.notify_all()

    def replica_info(self) -> dict:
        with self._cond:
            return {
                "replicas": len(self._acks),
                "acked": sorted(self._acks.values(), reverse=True),
            }

    def wait_replicated(
        self, version: int, replicas: int, timeout: float = 30.0
    ) -> None:
        """Block until ``replicas`` followers acked ``version`` durable.

        Called by the service *after* the local commit and *outside* the
        model write lock (stalled acks must not stall other writers).
        Raises :class:`ReplicationLagError` on timeout — the write stays
        locally durable; only the requested replication level failed.
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                confirmed = sum(
                    1 for v in self._acks.values() if v >= version
                )
                if confirmed >= replicas:
                    return
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ReplicationLagError(
                        f"version {version} confirmed durable by only "
                        f"{confirmed}/{replicas} replicas within "
                        f"{timeout:g}s"
                    )
                self._cond.wait(remaining)

    # -- the streaming connection (server event loop) ----------------------------

    async def serve_subscriber(
        self,
        line: str,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        shutdown: Optional[asyncio.Future] = None,
    ) -> None:
        """Run one ``:repl from N`` connection until it drops."""
        from_version = _parse_repl_request(line)
        if from_version is None:
            writer.write(
                Response.failure(
                    "repl_protocol",
                    f"usage: :repl from VERSION (got {line!r})",
                ).to_json().encode() + b"\n"
            )
            await writer.drain()
            return
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue(maxsize=self.max_queue)

        def enqueue(item: tuple) -> None:
            # Event loop thread.  A full queue means the serve loop below
            # has been parked in drain() on a stalled socket for max_queue
            # commits: cut the subscriber off rather than buffer without
            # bound.  abort() (not close()) tears the transport down
            # immediately so the blocked drain() raises and the stream
            # unwinds; the follower reconnects from its applied version
            # through the snapshot/history handoff.
            try:
                queue.put_nowait(item)
            except asyncio.QueueFull:
                logger.warning(
                    "replication subscriber overflowed its %d-record "
                    "queue (stalled consumer); dropping the stream",
                    self.max_queue,
                )
                transport = writer.transport
                if transport is not None:
                    transport.abort()

        def on_commit(kind: str, data: dict) -> None:
            # Writer's thread, under the model write lock: hand off only.
            loop.call_soon_threadsafe(enqueue, (kind, data))

        # Subscription takes the model write lock (it may wait behind a
        # maintenance sweep): keep it off the event loop.
        history, snapshot, version, epoch = await loop.run_in_executor(
            self.service._pool,
            self.model.subscribe_replication, on_commit, from_version,
        )
        sub_id = self._register(from_version)
        logger.info(
            "replica %d subscribed from version %d (leader at %d, "
            "epoch %d, %s)", sub_id, from_version, version, epoch,
            "snapshot bootstrap" if snapshot is not None
            else f"{len(history)} backlog records",
        )
        ack_task = asyncio.ensure_future(self._read_acks(reader, sub_id))
        try:
            writer.write(_frame(KIND_REPL_HELLO, {
                "version": version, "epoch": epoch, "from": from_version,
            }))
            if snapshot is not None:
                writer.write(_frame(KIND_REPL_SNAPSHOT, snapshot))
            for kind, data in history:
                writer.write(_frame(kind, data))
            await writer.drain()
            while True:
                get_task = asyncio.ensure_future(queue.get())
                waits = {get_task, ack_task}
                if shutdown is not None:
                    waits.add(shutdown)
                done, _ = await asyncio.wait(
                    waits, return_when=asyncio.FIRST_COMPLETED
                )
                if get_task not in done:
                    get_task.cancel()
                    try:
                        await get_task
                    except (asyncio.CancelledError, Exception):
                        pass
                    break                  # follower died or shutdown
                kind, data = get_task.result()
                writer.write(_frame(kind, data))
                while not queue.empty():   # opportunistic batching
                    kind, data = queue.get_nowait()
                    writer.write(_frame(kind, data))
                await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            self.model.unsubscribe_replication(on_commit)
            ack_task.cancel()
            try:
                await ack_task
            except (asyncio.CancelledError, Exception):
                pass
            self._unregister(sub_id)
            logger.info("replica %d unsubscribed", sub_id)

    async def _read_acks(
        self, reader: asyncio.StreamReader, sub_id: int
    ) -> None:
        """Drain ``:ack N`` lines; returns (ending the stream) on EOF."""
        while True:
            raw = await reader.readline()
            if not raw:
                return
            text = raw.decode("ascii", errors="replace").strip()
            if not text.startswith(":ack"):
                continue
            parts = text.split()
            if len(parts) == 2 and parts[1].isdigit():
                self.note_ack(sub_id, int(parts[1]))


def _parse_repl_request(line: str) -> Optional[int]:
    parts = line.split()
    if len(parts) == 3 and parts[0] == ":repl" and parts[1] == "from" \
            and parts[2].isdigit():
        return int(parts[2])
    return None
