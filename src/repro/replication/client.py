"""Topology-aware client: leader writes, follower read fan-out, failover.

:class:`ReplicaClient` wraps one :class:`~repro.server.protocol.LineClient`
per endpoint (created lazily, reconnecting with bounded backoff) and adds
the routing policy a replicated deployment needs:

* **writes → leader.**  A ``read_only`` refusal means the presumed
  leader is actually a follower; the refusal carries the real leader's
  address and the write is redirected there once.
* **reads → followers.**  Round-robin over the follower list, falling
  back to the leader when no follower answers — read capacity scales
  with followers (see ``benchmarks/test_bench_replication.py``).
* **read-your-writes.**  Every acknowledged write's version becomes the
  client's *version token*; a follower read is preceded by
  ``:sync <token>``, so the session never observes a state older than
  its own writes no matter which replica serves it.
* **failover.**  :func:`promote_best` asks every follower for its
  applied version, promotes the highest, and the client's
  :meth:`ReplicaClient.set_leader` repoints writes.
"""

from __future__ import annotations

import logging
from typing import Iterable, Optional, Union

from ..server.protocol import LineClient
from ..server.session import E_READ_ONLY, Response
from .follower import ReplicationError, _parse_addr

logger = logging.getLogger("repro.replication")


class ReplicaClient:
    """Route requests across a leader and its followers (single-threaded,
    like the :class:`LineClient` connections it manages)."""

    def __init__(
        self,
        leader: Union[str, tuple],
        followers: Iterable[Union[str, tuple]] = (),
        timeout: float = 10.0,
        max_attempts: int = 3,
        sync_timeout: float = 10.0,
    ) -> None:
        self.leader_addr = _parse_addr(leader)
        self.follower_addrs = [_parse_addr(a) for a in followers]
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.sync_timeout = sync_timeout
        #: The read-your-writes version token.
        self.last_write_version = 0
        self._clients: dict[tuple, LineClient] = {}
        self._rr = 0

    # -- connections -------------------------------------------------------------

    def _client(self, addr: tuple) -> LineClient:
        client = self._clients.get(addr)
        if client is None:
            client = LineClient(
                addr[0], addr[1],
                timeout=self.timeout, max_attempts=self.max_attempts,
            )
            self._clients[addr] = client
        return client

    def _drop(self, addr: tuple) -> None:
        client = self._clients.pop(addr, None)
        if client is not None:
            client.close()

    def close(self) -> None:
        for addr in list(self._clients):
            self._drop(addr)

    def __enter__(self) -> "ReplicaClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- routing -----------------------------------------------------------------

    def set_leader(self, addr: Union[str, tuple]) -> None:
        new = _parse_addr(addr)
        if new != self.leader_addr:
            old = self.leader_addr
            self.leader_addr = new
            if new not in self.follower_addrs:
                # The promoted follower stops being a read-only target.
                self.follower_addrs = [
                    a for a in self.follower_addrs if a != new
                ]
            logger.info("leader repointed %s -> %s", old, new)

    def write(self, line: str) -> Response:
        """Send a write to the leader, following one redirect."""
        response = self._client(self.leader_addr).send(line)
        if (
            not response.ok
            and response.code == E_READ_ONLY
            and isinstance(response.data, dict)
            and response.data.get("leader")
        ):
            self.set_leader(response.data["leader"])
            response = self._client(self.leader_addr).send(line)
        if response.ok and response.version is not None:
            self.last_write_version = max(
                self.last_write_version, response.version
            )
        return response

    def read(self, goal: str) -> Response:
        """Fan a query out: next follower (synced to the write token),
        then the remaining followers, then the leader."""
        candidates = self._read_candidates()
        last_exc: Optional[Exception] = None
        for addr in candidates:
            try:
                client = self._client(addr)
                if addr != self.leader_addr and self.last_write_version:
                    synced = client.send(
                        f":sync {self.last_write_version} "
                        f"{self.sync_timeout:g}"
                    )
                    if not synced.ok:
                        continue           # lagging replica: try the next
                return client.query(goal)
            except (ConnectionError, OSError) as exc:
                last_exc = exc
                self._drop(addr)
        raise ConnectionError(
            f"no endpoint answered the read ({len(candidates)} tried): "
            f"{last_exc}"
        )

    def _read_candidates(self) -> list[tuple]:
        followers = [
            a for a in self.follower_addrs if a != self.leader_addr
        ]
        if followers:
            self._rr = (self._rr + 1) % len(followers)
            followers = followers[self._rr:] + followers[:self._rr]
        return followers + [self.leader_addr]

    # -- convenience -------------------------------------------------------------

    def assert_fact(self, fact: str) -> Response:
        return self.write(f"+{fact.rstrip('.')}.")

    def retract_fact(self, fact: str) -> Response:
        return self.write(f"-{fact.rstrip('.')}.")

    def role(self, addr: Union[str, tuple, None] = None) -> Response:
        target = _parse_addr(addr) if addr is not None else self.leader_addr
        return self._client(target).send(":role")


def promote_best(
    followers: Iterable[Union[str, tuple]], timeout: float = 10.0
) -> tuple[tuple, dict]:
    """Fail over: promote the reachable follower with the highest
    applied version (so no acknowledged-and-replicated write is lost).

    Returns ``((host, port), role_data)`` of the new leader; raises
    :class:`ConnectionError` when no follower is reachable and
    :class:`ReplicationError` when the chosen follower refuses.
    """
    best: Optional[tuple] = None
    best_version = -1
    for addr in (_parse_addr(a) for a in followers):
        try:
            with LineClient(addr[0], addr[1], timeout=timeout) as client:
                response = client.send(":version")
        except (ConnectionError, OSError):
            continue
        if response.ok and isinstance(response.data, dict):
            version = response.data.get("latest", -1)
            if isinstance(version, int) and version > best_version:
                best, best_version = addr, version
    if best is None:
        raise ConnectionError(
            "no follower is reachable; cannot promote"
        )
    with LineClient(best[0], best[1], timeout=timeout) as client:
        response = client.send(":promote")
    if not response.ok:
        raise ReplicationError(
            f"promotion of {best[0]}:{best[1]} (version {best_version}) "
            f"failed: {response.error}"
        )
    logger.warning(
        "promoted %s:%d at version %d", best[0], best[1], best_version
    )
    return best, response.data if isinstance(response.data, dict) else {}
