"""``lps`` — a small command-line front end.

Usage::

    lps run PROGRAM.lps            evaluate and print the model
    lps query PROGRAM.lps 'p(X)'   evaluate, then print query bindings
    lps repl [PROGRAM.lps]         interactive loop

In the REPL, enter clauses terminated by ``.`` to extend the program, or
``?- atom.`` to query the (re-evaluated) model; ``:quit`` exits and
``:model`` prints the current model.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from ..core.errors import LPSError
from ..engine.evaluation import Model, solve
from ..engine.setops import with_set_builtins
from ..engine.evaluation import EvalOptions, Evaluator
from ..lang import parse_atom, parse_program
from ..lang.pretty import pretty_atom


def _evaluate(source: str) -> Model:
    program = parse_program(source)
    evaluator = Evaluator(program, builtins=with_set_builtins())
    return evaluator.run()


def cmd_run(path: str) -> int:
    with open(path) as f:
        source = f.read()
    model = _evaluate(source)
    print(model.pretty())
    return 0


def cmd_query(path: str, query: str) -> int:
    with open(path) as f:
        source = f.read()
    model = _evaluate(source)
    pattern = parse_atom(query)
    found = False
    for theta in model.query(pattern):
        found = True
        if len(theta) == 0:
            print("true")
        else:
            print(", ".join(f"{v.name} = {t}" for v, t in sorted(
                theta.items(), key=lambda kv: kv[0].name)))
    if not found:
        print("false")
    return 0


def cmd_repl(path: Optional[str]) -> int:
    source_lines: list[str] = []
    if path:
        with open(path) as f:
            source_lines.append(f.read())
    print("LPS repl — clauses end with '.', queries start with '?-', "
          ":model prints the model, :quit exits.")
    while True:
        try:
            line = input("lps> ").strip()
        except EOFError:
            print()
            return 0
        if not line:
            continue
        if line in (":quit", ":q"):
            return 0
        try:
            if line == ":model":
                model = _evaluate("\n".join(source_lines))
                print(model.pretty())
            elif line.startswith("?-"):
                query = line[2:].strip().rstrip(".")
                model = _evaluate("\n".join(source_lines))
                pattern = parse_atom(query)
                answers = list(model.query(pattern))
                if not answers:
                    print("false")
                for theta in answers:
                    if len(theta) == 0:
                        print("true")
                    else:
                        print(", ".join(
                            f"{v.name} = {t}" for v, t in sorted(
                                theta.items(), key=lambda kv: kv[0].name)
                        ))
            else:
                parse_program("\n".join(source_lines + [line]))  # validate
                source_lines.append(line)
        except LPSError as exc:
            print(f"error: {exc}", file=sys.stderr)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="lps", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    p_run = sub.add_parser("run", help="evaluate a program, print the model")
    p_run.add_argument("path")
    p_query = sub.add_parser("query", help="evaluate, then answer a query")
    p_query.add_argument("path")
    p_query.add_argument("query")
    p_repl = sub.add_parser("repl", help="interactive loop")
    p_repl.add_argument("path", nargs="?")
    args = parser.parse_args(argv)
    try:
        if args.command == "run":
            return cmd_run(args.path)
        if args.command == "query":
            return cmd_query(args.path, args.query)
        return cmd_repl(args.path)
    except LPSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
