"""``lps`` — a small command-line front end.

Usage::

    lps run PROGRAM.lps            evaluate and print the model
    lps query PROGRAM.lps 'p(X)'   evaluate, then print query bindings
    lps repl [PROGRAM.lps]         interactive loop
    lps serve [PROGRAM.lps]        line-protocol TCP server (--host/--port);
                                   --data-dir makes it durable + replicable,
                                   --follow HOST:PORT runs it as a follower
    lps ctl status ADDR...         role/version/epoch of each server
    lps ctl promote ADDR...        fail over to the most caught-up follower

The REPL is a **thin client of the query-service session API**
(:mod:`repro.server`): it owns one
:class:`~repro.server.service.QueryService` with one local
:class:`~repro.server.session.Session`, the same objects the TCP server
multiplexes across many concurrent clients — so interactive behaviour and
served behaviour cannot drift apart.

* clauses terminated by ``.`` extend the program (the model is rebuilt
  over the surviving fact store),
* ``+fact.`` asserts and ``-fact.`` retracts a ground fact — the model is
  *maintained*, not recomputed, so churning facts against a large program
  stays cheap,
* ``?- goal.`` queries the current snapshot (conjunctive goals are
  planned and executed like rule bodies), ``:model`` prints the model,
* ``:plan rule.`` pretty-prints the relational-algebra plan the engine
  compiles the rule body to (or why it stays on the tuple path),
* ``:stats`` shows what the last delta did plus the set-at-a-time
  executor's counters (batches, rows in/out per operator), ``:quit``
  exits,
* ``:subscribe goal.`` registers a standing query: the full answer set
  prints once, then every commit that moves it prints an exact
  ``[sub N vV] +row -row`` diff (computed from the commit's delta, not
  by re-running the query).  ``:unsubscribe N`` cancels, ``:diffs``
  drains queued frames explicitly.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from ..core.errors import LPSError
from ..engine.evaluation import EvalOptions, Evaluator, Model
from ..engine.setops import with_set_builtins
from ..lang import parse_atom, parse_program
from ..server import QueryService
from ..server.session import Session as ServiceSession


def _evaluate(source: str, shards: int = 1) -> Model:
    program = parse_program(source)
    evaluator = Evaluator(
        program, builtins=with_set_builtins(),
        options=EvalOptions(shards=shards),
    )
    try:
        return evaluator.run()
    finally:
        evaluator.close()


def cmd_run(path: str, shards: int = 1) -> int:
    with open(path) as f:
        source = f.read()
    model = _evaluate(source, shards=shards)
    print(model.pretty())
    return 0


def _print_answers(model, pattern) -> None:
    found = False
    for theta in model.query(pattern):
        found = True
        if len(theta) == 0:
            print("true")
        else:
            print(", ".join(f"{v.name} = {t}" for v, t in sorted(
                theta.items(), key=lambda kv: kv[0].name)))
    if not found:
        print("false")


def cmd_query(path: str, query: str) -> int:
    with open(path) as f:
        source = f.read()
    model = _evaluate(source)
    _print_answers(model, parse_atom(query))
    return 0


class Session:
    """The REPL's client state: one service, one session.

    A thin facade over :class:`~repro.server.session.Session` keeping the
    REPL's historical surface (``add_clause`` / ``assert_fact`` /
    ``retract_fact`` / ``plan_text`` / ``stats_text``); everything
    semantic happens in the service layer.
    """

    def __init__(
        self, source: str = "", data_dir: Optional[str] = None
    ) -> None:
        self._service = QueryService(
            source if source.strip() else None, data_dir=data_dir
        )
        self._session: ServiceSession = self._service.open_session()
        self.data_dir = data_dir

    @property
    def service(self) -> QueryService:
        return self._service

    @property
    def model(self):
        """The current published snapshot (supports query/pretty)."""
        return self._session.snapshot()

    def add_clause(self, line: str) -> None:
        self._session.add_clause(line)

    def assert_fact(self, text: str):
        self._session.assert_fact(text)
        return self._service.model.last_report

    def retract_fact(self, text: str):
        self._session.retract_fact(text)
        return self._service.model.last_report

    def plan_text(self, text: str) -> str:
        return self._session.plan_text(text)

    def print_answers(self, goal: str) -> None:
        """Answer a (possibly conjunctive) goal through the session's
        parse → plan → execute path, REPL-formatted."""
        result = self._session.query(goal)
        if not result.rows:
            print("false")
            return
        for row in result.rows:
            if not row:
                print("true")
            else:
                print(", ".join(
                    f"{v} = {t}" for v, t in zip(result.vars, row)
                ))

    def save(self, path: str) -> str:
        """``:save DIR`` — persist the current state as a durable store.

        On a durable session pointing at the same directory this is a
        checkpoint (snapshot + WAL truncation); otherwise the model is
        frozen into a fresh directory that ``:open DIR`` (or ``lps repl
        --data-dir DIR``) recovers.
        """
        from pathlib import Path

        from ..storage import save_snapshot

        model = self._service.model
        own_dir = getattr(model, "data_dir", None)
        if own_dir is not None and \
                Path(path).resolve() == Path(own_dir).resolve():
            return str(model.checkpoint())
        return str(save_snapshot(path, model))

    def open(self, path: str) -> "Session":
        """``:open DIR`` — switch to the durable store at ``DIR``.

        Recovers existing state (or creates an empty store), shuts the
        current service down, and returns the replacement session.
        """
        replacement = Session(data_dir=path)
        self._service.shutdown()
        return replacement

    def command(self, line: str) -> "object":
        """Run one protocol line through the service session — used for
        the subscription commands, whose grammar lives server-side."""
        return self._session.execute(line)

    def take_diffs(self) -> list[dict]:
        """Drain queued push frames (``diff`` / ``sub_dropped``).

        The diff dispatcher runs on its own thread; when standing
        queries are active, wait (briefly) until it has processed the
        latest published version so a ``+fact.`` prints its diff
        immediately rather than one prompt later.
        """
        manager = self._service.subscriptions
        if manager.active_count():
            manager.wait_caught_up(
                self._service.model.version, timeout=2.0
            )
        return self._session.take_push_frames()

    def stats_text(self) -> str:
        """The ``:stats`` payload: last-delta summary + executor counters."""
        data = self._session.stats_data()
        last = data["last_delta"]
        if last is None:
            lines = ["no deltas applied yet"]
        else:
            lines = [
                f"last delta: strategy={last['strategy']} "
                f"+{last['atoms_added']}/-{last['atoms_removed']} "
                "model atoms"
            ]
        lines.append(
            f"session: {data['queries']} queries, {data['answers']} "
            f"answers, {data['writes']} writes, {data['errors']} errors"
        )
        lines.append(data["executor"])
        return "\n".join(lines)


def _print_push_frame(frame: dict) -> None:
    """One queued push frame, REPL-formatted."""
    sub = frame.get("sub")
    version = frame.get("version")
    if frame.get("kind") == "sub_dropped":
        print(f"[sub {sub}] dropped at version {version}: "
              f"{frame.get('reason')}")
        return
    changes = [f"+({', '.join(row)})" for row in frame.get("adds") or []]
    changes += [f"-({', '.join(row)})" for row in frame.get("dels") or []]
    print(f"[sub {sub} v{version}] " + " ".join(changes))


def _print_subscription_response(response) -> None:
    if not response.ok:
        print(f"error: {response.error}", file=sys.stderr)
        return
    if response.kind == "subscribed":
        data = response.data
        head = ", ".join(data["vars"])
        print(f"sub {data['sub']} on ({head}) at version "
              f"{response.version}: {len(data['rows'])} row(s)")
        for row in data["rows"]:
            print("  " + (", ".join(row) if row else "true"))
    elif response.kind == "diffs":
        for frame in response.data["frames"]:
            _print_push_frame(frame)
        if response.data["pending"]:
            print(f"({response.data['pending']} more pending)")
    else:
        print("ok.")


#: Colon commands the REPL forwards verbatim to the service session.
_SUBSCRIPTION_COMMANDS = (":subscribe", ":unsubscribe", ":diffs")


def cmd_repl(path: Optional[str], data_dir: Optional[str] = None) -> int:
    session = Session(data_dir=data_dir)
    if path:
        with open(path) as f:
            session.add_clause(f.read())
    print("LPS repl — clauses end with '.', queries start with '?-', "
          "+fact./-fact. insert/delete facts, :model prints the model, "
          ":plan rule. shows its compiled plan, :subscribe goal. pushes "
          "per-commit diffs of a standing query (:unsubscribe N cancels), "
          ":save DIR/:open DIR persist/recover durable state, :quit "
          "exits.")
    while True:
        try:
            line = input("lps> ").strip()
        except EOFError:
            print()
            return 0
        if not line:
            continue
        if line in (":quit", ":q"):
            return 0
        try:
            if line == ":model":
                print(session.model.pretty())
            elif line == ":stats":
                print(session.stats_text())
            elif line.startswith(":plan"):
                print(session.plan_text(line[len(":plan"):].strip()))
            elif line.startswith(":save"):
                target = line[len(":save"):].strip() or session.data_dir
                if not target:
                    print("usage: :save DIR", file=sys.stderr)
                else:
                    print(f"saved {session.save(target)}")
            elif line.startswith(":open"):
                target = line[len(":open"):].strip()
                if not target:
                    print("usage: :open DIR", file=sys.stderr)
                else:
                    session = session.open(target)
                    print(f"opened {target} at version "
                          f"{session.service.model.version}")
            elif line.split(None, 1)[0] in _SUBSCRIPTION_COMMANDS:
                _print_subscription_response(session.command(line))
            elif line.startswith("+"):
                report = session.assert_fact(line[1:])
                print("added." if report.net_added else "no change.")
            elif line.startswith("-"):
                report = session.retract_fact(line[1:])
                print("removed." if report.net_removed else "no change.")
            elif line.startswith("?-"):
                session.print_answers(line[2:].strip().rstrip("."))
            else:
                session.add_clause(line)
            for frame in session.take_diffs():
                _print_push_frame(frame)
        except LPSError as exc:
            print(f"error: {exc}", file=sys.stderr)


def cmd_serve(
    path: Optional[str], host: str, port: int,
    data_dir: Optional[str] = None,
    follow: Optional[str] = None,
    ack_replicas: int = 0,
    fsync: str = "always",
    shards: int = 1,
) -> int:
    """Serve the line protocol over TCP until interrupted.

    With ``--data-dir`` the server is durable *and replicable*: followers
    may subscribe with ``:repl from N``.  With ``--follow HOST:PORT`` it
    runs as a read-only follower of that leader instead (``--data-dir``
    required — a follower is independently crash-recoverable), serving
    reads at its applied version until promoted with ``lps ctl promote``.
    """
    import asyncio

    from ..server.protocol import serve

    follower = None
    if follow:
        if not data_dir:
            print("error: --follow requires --data-dir", file=sys.stderr)
            return 2
        from ..replication import FollowerService

        follower = FollowerService(follow, data_dir, fsync=fsync)
        service = follower.start()
        print(f"following {follow} "
              f"(applied version {service.model.version})")
    else:
        source = ""
        if path:
            with open(path) as f:
                source = f.read()
        service = QueryService(
            source if source.strip() else None, data_dir=data_dir,
            fsync=fsync, ack_replicas=ack_replicas,
            options=EvalOptions(shards=shards) if shards > 1 else None,
        )
        if data_dir:
            from ..replication import ReplicationHub

            ReplicationHub.attach(service)
            print(f"durable state in {data_dir} "
                  f"(recovered at version {service.model.version}, "
                  f"epoch {getattr(service.model, 'epoch', 0)}; "
                  "replication enabled)")

    async def main() -> None:
        server = await serve(service, host, port)
        addr = server.sockets[0].getsockname()
        print(f"lps server listening on {addr[0]}:{addr[1]}")
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    finally:
        if follower is not None:
            follower.stop()
        else:
            service.shutdown()
    return 0


def cmd_ctl(action: str, addrs: list[str]) -> int:
    """Operate a running deployment: ``status`` and ``promote``."""
    from ..replication import promote_best
    from ..replication.follower import _parse_addr
    from ..server.protocol import LineClient

    if action == "status":
        failures = 0
        for addr in addrs:
            s_host, s_port = _parse_addr(addr)
            try:
                with LineClient(s_host, s_port, timeout=5.0) as client:
                    response = client.send(":role")
            except (ConnectionError, OSError) as exc:
                print(f"{addr}: unreachable ({exc})")
                failures += 1
                continue
            data = response.data if response.ok and \
                isinstance(response.data, dict) else {}
            line = (f"{addr}: role={data.get('role')} "
                    f"version={data.get('version')} "
                    f"epoch={data.get('epoch')}")
            if data.get("role") == "follower":
                line += (f" leader={data.get('leader')} "
                         f"connected={data.get('connected')} "
                         f"fenced={data.get('fenced')}")
            repl = data.get("replication")
            if repl:
                line += (f" replicas={repl.get('replicas')} "
                         f"acked={repl.get('acked')}")
            print(line)
        return 1 if failures == len(addrs) else 0
    # promote: pick the most caught-up reachable follower.
    try:
        best, role = promote_best(addrs)
    except (ConnectionError, LPSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"promoted {best[0]}:{best[1]} "
          f"(version {role.get('version')}, epoch {role.get('epoch')})")
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="lps", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    p_run = sub.add_parser("run", help="evaluate a program, print the model")
    p_run.add_argument("path")
    p_run.add_argument("--shards", type=int, default=1,
                       help="evaluate recursive strata across this many "
                            "worker processes (default: 1, single-process)")
    p_query = sub.add_parser("query", help="evaluate, then answer a query")
    p_query.add_argument("path")
    p_query.add_argument("query")
    p_repl = sub.add_parser("repl", help="interactive loop")
    p_repl.add_argument("path", nargs="?")
    p_repl.add_argument("--data-dir", default=None,
                        help="durable state directory (recovered if it "
                             "already holds a store)")
    p_serve = sub.add_parser("serve", help="line-protocol TCP server")
    p_serve.add_argument("path", nargs="?")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=4712)
    p_serve.add_argument("--data-dir", default=None,
                         help="durable state directory; commits are "
                              "WAL-logged before they are acknowledged "
                              "(also enables replication)")
    p_serve.add_argument("--follow", default=None, metavar="HOST:PORT",
                         help="run as a read-only follower replicating "
                              "from this leader (requires --data-dir)")
    p_serve.add_argument("--ack-replicas", type=int, default=0,
                         help="leader only: acknowledge a write after "
                              "this many followers confirmed it durable")
    p_serve.add_argument("--fsync", choices=["always", "never"],
                         default="always",
                         help="WAL fsync policy (default: always)")
    p_serve.add_argument("--shards", type=int, default=1,
                         help="evaluate recursive strata across this many "
                              "worker processes (default: 1)")
    p_ctl = sub.add_parser(
        "ctl", help="operate a running deployment (status / promote)"
    )
    p_ctl.add_argument("action", choices=["status", "promote"])
    p_ctl.add_argument("addrs", nargs="+", metavar="HOST:PORT")
    args = parser.parse_args(argv)
    try:
        if args.command == "run":
            return cmd_run(args.path, shards=args.shards)
        if args.command == "query":
            return cmd_query(args.path, args.query)
        if args.command == "serve":
            return cmd_serve(
                args.path, args.host, args.port, args.data_dir,
                follow=args.follow, ack_replicas=args.ack_replicas,
                fsync=args.fsync, shards=args.shards,
            )
        if args.command == "ctl":
            return cmd_ctl(args.action, args.addrs)
        return cmd_repl(args.path, args.data_dir)
    except LPSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
