"""``lps`` — a small command-line front end.

Usage::

    lps run PROGRAM.lps            evaluate and print the model
    lps query PROGRAM.lps 'p(X)'   evaluate, then print query bindings
    lps repl [PROGRAM.lps]         interactive loop

The REPL is a **long-lived session** over an incrementally maintained
model (:class:`~repro.engine.maintenance.MaterializedModel`):

* clauses terminated by ``.`` extend the program (the model is rebuilt),
* ``+fact.`` asserts and ``-fact.`` retracts a ground fact — the model is
  *maintained*, not recomputed, so churning facts against a large program
  stays cheap,
* ``?- atom.`` queries the current model, ``:model`` prints it,
* ``:plan rule.`` pretty-prints the relational-algebra plan the engine
  compiles the rule body to (or why it stays on the tuple path),
* ``:stats`` shows what the last delta did plus the set-at-a-time
  executor's counters (batches, rows in/out per operator), ``:quit`` exits.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from ..core.clauses import GroupingClause, LPSClause
from ..core.errors import EvaluationError, LPSError
from ..engine.database import Database
from ..engine.evaluation import Evaluator, Model
from ..engine.maintenance import MaintenanceReport, MaterializedModel
from ..engine.planner import compile_grouping, compile_rule
from ..engine.setops import with_set_builtins
from ..lang import parse_atom, parse_program


def _evaluate(source: str) -> Model:
    program = parse_program(source)
    evaluator = Evaluator(program, builtins=with_set_builtins())
    return evaluator.run()


def cmd_run(path: str) -> int:
    with open(path) as f:
        source = f.read()
    model = _evaluate(source)
    print(model.pretty())
    return 0


def _print_answers(model, pattern) -> None:
    found = False
    for theta in model.query(pattern):
        found = True
        if len(theta) == 0:
            print("true")
        else:
            print(", ".join(f"{v.name} = {t}" for v, t in sorted(
                theta.items(), key=lambda kv: kv[0].name)))
    if not found:
        print("false")


def cmd_query(path: str, query: str) -> int:
    with open(path) as f:
        source = f.read()
    model = _evaluate(source)
    _print_answers(model, parse_atom(query))
    return 0


class Session:
    """A REPL session: program clauses plus a dynamic fact store.

    The materialized model is built lazily and kept across ``+``/``-``
    fact commands via incremental maintenance; adding a *clause* changes
    the program and forces a rebuild (over the surviving fact store).
    """

    def __init__(self, source: str = "") -> None:
        self.source_lines: list[str] = [source] if source else []
        self.database = Database()
        self._materialized: Optional[MaterializedModel] = None

    @property
    def materialized(self) -> MaterializedModel:
        if self._materialized is None:
            program = parse_program("\n".join(self.source_lines))
            self._materialized = MaterializedModel(
                program, self.database, builtins=with_set_builtins()
            )
        return self._materialized

    @property
    def model(self) -> Model:
        return self.materialized.model

    def add_clause(self, line: str) -> None:
        parse_program("\n".join(self.source_lines + [line]))  # validate
        self.source_lines.append(line)
        self._materialized = None  # program changed: rebuild lazily

    def _parse_fact(self, text: str):
        a = parse_atom(text.strip().rstrip("."))
        if not a.is_ground():
            raise EvaluationError(f"fact {a} is not ground")
        return a

    def assert_fact(self, text: str) -> MaintenanceReport:
        return self.materialized.apply_delta(adds=[self._parse_fact(text)])

    def retract_fact(self, text: str) -> MaintenanceReport:
        return self.materialized.apply_delta(dels=[self._parse_fact(text)])

    def plan_text(self, text: str) -> str:
        """The compiled plan of one rule (or grouping clause), pretty-printed.

        The clause is parsed standalone and compiled against the same
        builtin registry the session's engine runs with (the REPL always
        evaluates with ``with_set_builtins()``); it is *not* added to the
        program.
        """
        program = parse_program(text)
        if not program.clauses:
            raise EvaluationError("no clause to plan")
        builtins = with_set_builtins()  # == the registry `materialized` uses
        chunks = []
        # Sugar like positive-formula bodies desugars into several clauses
        # (Theorem 6); show the plan of each one.
        for clause in program.clauses:
            if isinstance(clause, GroupingClause):
                cp = compile_grouping(clause, builtins)
            elif isinstance(clause, LPSClause):
                cp = compile_rule(clause, builtins)
            else:  # pragma: no cover - parser produces only the two forms
                raise EvaluationError(f"cannot plan {clause!r}")
            header = f"-- {clause}"
            if not cp.is_set:
                chunks.append(f"{header}\ntuple-mode: {cp.reason}")
            else:
                chunks.append(f"{header}\n{cp.root.pretty()}")
        return "\n\n".join(chunks)

    def stats_text(self) -> str:
        """The ``:stats`` payload: last-delta summary + executor counters."""
        report = self.materialized.last_report
        if report is None:
            lines = ["no deltas applied yet"]
        else:
            lines = [
                f"last delta: strategy={report.strategy} "
                f"+{report.atoms_added}/-{report.atoms_removed} model atoms"
            ]
        lines.append(self.materialized.exec_stats.pretty())
        return "\n".join(lines)


def cmd_repl(path: Optional[str]) -> int:
    session = Session()
    if path:
        with open(path) as f:
            session.add_clause(f.read())
    print("LPS repl — clauses end with '.', queries start with '?-', "
          "+fact./-fact. insert/delete facts, :model prints the model, "
          ":plan rule. shows its compiled plan, :quit exits.")
    while True:
        try:
            line = input("lps> ").strip()
        except EOFError:
            print()
            return 0
        if not line:
            continue
        if line in (":quit", ":q"):
            return 0
        try:
            if line == ":model":
                print(session.model.pretty())
            elif line == ":stats":
                print(session.stats_text())
            elif line.startswith(":plan"):
                print(session.plan_text(line[len(":plan"):].strip()))
            elif line.startswith("+"):
                report = session.assert_fact(line[1:])
                print("added." if report.net_added else "no change.")
            elif line.startswith("-"):
                report = session.retract_fact(line[1:])
                print("removed." if report.net_removed else "no change.")
            elif line.startswith("?-"):
                query = line[2:].strip().rstrip(".")
                _print_answers(session.model, parse_atom(query))
            else:
                session.add_clause(line)
        except LPSError as exc:
            print(f"error: {exc}", file=sys.stderr)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="lps", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    p_run = sub.add_parser("run", help="evaluate a program, print the model")
    p_run.add_argument("path")
    p_query = sub.add_parser("query", help="evaluate, then answer a query")
    p_query.add_argument("path")
    p_query.add_argument("query")
    p_repl = sub.add_parser("repl", help="interactive loop")
    p_repl.add_argument("path", nargs="?")
    args = parser.parse_args(argv)
    try:
        if args.command == "run":
            return cmd_run(args.path)
        if args.command == "query":
            return cmd_query(args.path, args.query)
        return cmd_repl(args.path)
    except LPSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
