"""Command-line front end (``lps run`` / ``lps query`` / ``lps repl``)."""

from .cli import main

__all__ = ["main"]
