"""repro - a full reproduction of Kuper's *Logic Programming with Sets*
(PODS 1987 / JCSS 41(1), 1990).

The package provides:

* ``repro.core`` - the two-sorted LPS/ELPS language: terms, set values,
  restricted universal quantifiers, clauses and programs;
* ``repro.semantics`` - Herbrand models, model checking, the ``T_P``
  operator and least-fixpoint / minimal-model semantics (Section 3);
* ``repro.engine`` - a bottom-up Datalog-with-sets evaluation engine
  (naive and semi-naive, stratified negation, grouping, arithmetic
  built-ins) plus a top-down prover;
* ``repro.transform`` - the paper's constructive theorems as program
  transformations (positive formulas -> LPS, ELPS <-> Horn+union <->
  Horn+scons, LDL grouping <-> ELPS with negation, set construction with
  stratified negation);
* ``repro.lang`` - a parser and pretty-printer for a concrete LPS syntax;
* ``repro.nested`` - a nested (non-1NF) relational-algebra substrate;
* ``repro.baseline`` - a from-scratch mini-Prolog running the
  introduction's list encodings, used as the benchmark baseline;
* ``repro.workloads`` - synthetic workload generators for the benchmarks;
* ``repro.server`` - the concurrent query service: snapshot-isolated
  sessions over a versioned maintained model, a thread-pool front end
  and a line-oriented TCP protocol (the REPL is a thin client of it);
* ``repro.storage`` - durable storage: write-ahead logged delta batches
  and checkpointed snapshots with crash recovery (``DurableModel``),
  wired through ``QueryService(data_dir=...)``, ``lps serve --data-dir``
  and the REPL's ``:save``/``:open``.

Quickstart::

    from repro import parse_program, solve

    program = parse_program(\'\'\'
        edge(a, b). edge(b, c).
        path(x, y) :- edge(x, y).
        path(x, z) :- edge(x, y), path(y, z).
    \'\'\')
    model = solve(program)
    assert model.holds_str("path(a, c)")
"""

from . import core
from .core import *  # noqa: F401,F403 - re-export the core API
from .engine import Database, Evaluator, Model, solve
from .lang import parse_atom, parse_program, parse_term
from .semantics import Interpretation, TpOperator, least_fixpoint

__version__ = "1.0.0"

__all__ = core.__all__ + [
    "Database",
    "Evaluator",
    "Model",
    "solve",
    "parse_program",
    "parse_atom",
    "parse_term",
    "Interpretation",
    "TpOperator",
    "least_fixpoint",
    "__version__",
]
