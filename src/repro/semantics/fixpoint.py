"""The immediate-consequence operator ``T_P`` and its least fixpoint.

Definition 11 of the paper: ``T_P(M)`` is the set of atoms ``A`` in the
Herbrand base for which some ground instance ``A :- B1 ∧ … ∧ Bk`` of a
clause of ``P`` (after Lemma-4 unfolding of the restricted quantifiers) has
all ``Bi`` true in ``M``.  Theorem 5: ``M_P = lfp(T_P) = T_P ↑ ω``.

This module implements ``T_P`` **exactly over a finite universe**: ground
instances are enumerated by assigning the clause's free variables over the
carriers, then each instance's quantifiers unfold via
:meth:`~repro.core.clauses.LPSClause.ground_instances` — literally Lemma 4.
It is deliberately brute force; its purpose is to be an obviously correct
reference against which the optimised engine (``repro.engine``) is tested.
Only positive programs are accepted — ``T_P`` for programs with negation is
not monotone and is handled by the stratified engine instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..core.atoms import Atom
from ..core.clauses import GroupingClause, LPSClause
from ..core.errors import EvaluationError
from ..core.formulas import evaluate_ground_atom
from ..core.program import Program
from .herbrand import Universe
from .interpretation import Interpretation, assignments


class TpOperator:
    """``T_P`` over a fixed finite universe (Definition 11).

    The operator is monotone (each application can only add atoms), which the
    property tests verify explicitly as part of reproducing Theorem 5.
    """

    def __init__(self, program: Program, universe: Universe) -> None:
        for c in program.clauses:
            if isinstance(c, GroupingClause):
                raise EvaluationError(
                    "T_P is defined for LPS clauses only; grouping clauses "
                    "need the stratified engine (Section 6)"
                )
            if c.has_negation():
                raise EvaluationError(
                    f"T_P is monotone only for positive programs; clause "
                    f"{c} uses negation"
                )
        self.program = program
        self.universe = universe

    def step(self, interp: Interpretation) -> Interpretation:
        """One application of ``T_P``."""
        out = Interpretation()
        for a in self.derived(interp):
            out.add(a)
        return out

    def derived(self, interp: Interpretation) -> Iterator[Atom]:
        """Atoms derivable in one step from ``interp``."""
        for c in self.program.lps_clauses():
            free = sorted(c.free_vars(), key=lambda v: (v.sort, v.name))
            for theta in assignments(free, self.universe):
                ground = c.ground_instances(theta)
                if all(
                    _literal_holds(lit, interp) for lit in ground.body
                ):
                    yield ground.head

    def is_prefixpoint(self, interp: Interpretation) -> bool:
        """Whether ``T_P(interp) ⊆ interp`` (interp is a model of P's rules)."""
        return all(a in interp for a in self.derived(interp))


def _literal_holds(lit, interp: Interpretation) -> bool:
    value = evaluate_ground_atom(lit.atom, interp.holds)
    return value if lit.positive else not value


@dataclass
class FixpointResult:
    """The least fixpoint together with the iteration trace.

    ``stages[i]`` is ``T_P ↑ i`` (``stages[0]`` is empty); ``rounds`` is the
    ordinal at which the fixpoint was reached.
    """

    interpretation: Interpretation
    rounds: int
    stages: list[Interpretation]

    def stage(self, i: int) -> Interpretation:
        return self.stages[min(i, len(self.stages) - 1)]


def least_fixpoint(
    program: Program,
    universe: Universe,
    max_rounds: Optional[int] = None,
    keep_stages: bool = False,
) -> FixpointResult:
    """Compute ``T_P ↑ ω`` over the finite universe (Theorem 5).

    Over a finite universe the ascending Kleene chain stabilises after
    finitely many rounds; ``max_rounds`` guards against misuse with huge
    carriers.
    """
    op = TpOperator(program, universe)
    current = Interpretation()
    stages: list[Interpretation] = [current.copy()] if keep_stages else []
    rounds = 0
    while True:
        nxt = op.step(current)
        merged = current | nxt
        rounds += 1
        if keep_stages:
            stages.append(merged.copy())
        if len(merged) == len(current):
            return FixpointResult(merged, rounds - 1, stages)
        current = merged
        if max_rounds is not None and rounds > max_rounds:
            raise EvaluationError(
                f"fixpoint did not stabilise within {max_rounds} rounds"
            )
