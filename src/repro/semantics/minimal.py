"""Brute-force minimal-model machinery (Theorem 3 and its tests).

Definition 10 defines the least Herbrand model ``M_P`` as the intersection
of *all* Herbrand models of ``P``; Theorem 3 states that this intersection
is itself a model and consists exactly of the logical consequences of ``P``.

Over a finite universe and a finite predicate inventory the Herbrand base is
finite, so "all Herbrand models" is a finite (if exponential) collection.
This module enumerates it directly:

* :func:`all_models` — every subset of the Herbrand base that satisfies the
  program (the theory tests keep the base below ~16 atoms);
* :func:`intersection_of_models` — Definition 10, literally;
* :func:`minimal_models` — the ⊆-minimal models (for positive LPS programs
  there is exactly one, which the tests check against the fixpoint).

These functions are intentionally independent of :mod:`repro.semantics.fixpoint`
and of the engine: they are the oracle that Theorems 3 and 5 are validated
against.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Mapping, Sequence

from ..core.atoms import Atom
from ..core.errors import EvaluationError
from ..core.program import Program
from .herbrand import Universe, herbrand_base
from .interpretation import Interpretation

#: Refuse to enumerate power sets above this base size.
MAX_BASE = 22


def finite_base(
    program: Program,
    universe: Universe,
    signatures: Mapping[str, Sequence[str]],
) -> list[Atom]:
    """The finite Herbrand base for the program's predicates."""
    base = list(herbrand_base(signatures, universe))
    if len(base) > MAX_BASE:
        raise EvaluationError(
            f"Herbrand base has {len(base)} atoms; brute-force model "
            f"enumeration is capped at {MAX_BASE}"
        )
    return base


def all_models(
    program: Program,
    universe: Universe,
    signatures: Mapping[str, Sequence[str]],
) -> Iterator[Interpretation]:
    """Every Herbrand model of the program over the finite universe."""
    base = finite_base(program, universe, signatures)
    for bits in itertools.product((False, True), repeat=len(base)):
        interp = Interpretation(a for a, b in zip(base, bits) if b)
        if interp.satisfies_program(program, universe):
            yield interp


def intersection_of_models(
    program: Program,
    universe: Universe,
    signatures: Mapping[str, Sequence[str]],
) -> Interpretation:
    """Definition 10: the intersection of all Herbrand models.

    Raises :class:`EvaluationError` if the program has no Herbrand model
    over the universe (possible with clauses like Example 7's, or simply
    because the finite universe lacks witnesses).
    """
    result: Interpretation | None = None
    for m in all_models(program, universe, signatures):
        result = m if result is None else (result & m)
    if result is None:
        raise EvaluationError("program has no Herbrand model over this universe")
    return result


def minimal_models(
    program: Program,
    universe: Universe,
    signatures: Mapping[str, Sequence[str]],
) -> list[Interpretation]:
    """The ⊆-minimal Herbrand models."""
    models = list(all_models(program, universe, signatures))
    out: list[Interpretation] = []
    for m in models:
        if not any(other.atoms() < m.atoms() for other in models):
            out.append(m)
    return out


def is_logical_consequence(
    program: Program,
    universe: Universe,
    signatures: Mapping[str, Sequence[str]],
    query: Atom,
) -> bool:
    """Whether ``query`` holds in every Herbrand model (Theorem 3(2))."""
    return all(
        m.holds(query)
        for m in all_models(program, universe, signatures)
    )
