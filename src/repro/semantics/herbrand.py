"""Herbrand universes and bases for LPS/ELPS (Definitions 7–9, Section 5).

The true Herbrand universe of an LPS language is infinite in both components
whenever there is at least one constant (``U_s`` contains *all* finite sets
of ``U_a`` elements; with function symbols ``U_a`` is infinite too).  The
theory tests need *finite, exhaustively enumerable* sub-universes, so this
module provides bounded enumerators:

* :func:`atom_terms` — all ground sort-``a`` terms up to a function-nesting
  depth;
* :func:`set_values` — all subsets (up to a size bound) of a given atom
  carrier, optionally iterated for ELPS nesting (Definition 13);
* :class:`Universe` — a finite two-sorted carrier used by model checking,
  the ``T_P`` operator and the brute-force minimal-model search;
* :func:`herbrand_base` — all ground non-special atoms over a universe
  (Definition 8 restricted to the finite carrier).

The bounded universes are *downward faithful*: they are genuine subsets of
the Herbrand universe, so any universally quantified property checked over
them is a necessary condition of the real thing, and any existential witness
found in them is a real witness.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from ..core.atoms import Atom
from ..core.errors import EvaluationError
from ..core.sorts import SORT_A, SORT_S, SORT_U
from ..core.terms import App, Const, SetValue, Term, setvalue


def atom_terms(
    constants: Sequence[Term],
    functions: Mapping[str, int] | None = None,
    depth: int = 0,
) -> list[Term]:
    """All ground sort-``a`` terms built from ``constants`` and ``functions``
    with at most ``depth`` nested function applications.

    ``depth = 0`` returns the constants alone; each extra level closes the
    carrier under one application of every function symbol.
    """
    carrier: list[Term] = list(dict.fromkeys(constants))
    if not functions:
        return carrier
    frontier = list(carrier)
    for _ in range(depth):
        new: list[Term] = []
        for fname, arity in sorted(functions.items()):
            for args in itertools.product(carrier, repeat=arity):
                t = App(fname, tuple(args))
                if t not in carrier and t not in new:
                    new.append(t)
        if not new:
            break
        carrier.extend(new)
        frontier = new
    return carrier


def set_values(
    elements: Sequence[Term],
    max_size: int | None = None,
    include_empty: bool = True,
) -> list[SetValue]:
    """All subsets of ``elements`` with at most ``max_size`` members.

    ``max_size=None`` enumerates the full powerset — callers should bound the
    carrier (|elements| ≤ ~12) or pass a size cap.
    """
    elems = list(dict.fromkeys(elements))
    top = len(elems) if max_size is None else min(max_size, len(elems))
    if max_size is None and len(elems) > 16:
        raise EvaluationError(
            f"refusing to enumerate the powerset of {len(elems)} elements; "
            "pass max_size"
        )
    out: list[SetValue] = []
    start = 0 if include_empty else 1
    for k in range(start, top + 1):
        for combo in itertools.combinations(elems, k):
            out.append(setvalue(combo))
    if include_empty and start == 0 and top >= 0 and not out:
        out.append(setvalue(()))
    return out


def nested_set_values(
    atoms: Sequence[Term],
    depth: int,
    max_size: int,
) -> list[SetValue]:
    """ELPS carrier: sets nested up to ``depth`` levels (Definition 13).

    ``depth = 1`` gives plain sets of atoms; each further level allows the
    previously built sets as elements alongside the atoms.
    """
    carrier: list[Term] = list(dict.fromkeys(atoms))
    produced: list[SetValue] = []
    for _ in range(depth):
        layer = set_values(carrier, max_size=max_size)
        for sv in layer:
            if sv not in produced:
                produced.append(sv)
                carrier.append(sv)
    return produced


@dataclass(frozen=True)
class Universe:
    """A finite two-sorted carrier ``(D, D*)`` with ``D* ⊆ P^fin(D)``.

    ``atoms`` plays the role of ``U_a`` (or, for ELPS checks, the atom part
    of ``U_L``), ``sets`` the role of ``U_s``.  Membership/equality are
    structural, per Definition 3.
    """

    atoms: tuple[Term, ...]
    sets: tuple[SetValue, ...]

    def __post_init__(self) -> None:
        for t in self.atoms:
            if not t.is_ground() or isinstance(t, SetValue):
                raise EvaluationError(f"universe atom {t} must be a ground a-term")
        for s in self.sets:
            if not isinstance(s, SetValue):
                raise EvaluationError(f"universe set {s} must be a SetValue")

    @staticmethod
    def build(
        constants: Sequence[Term],
        functions: Mapping[str, int] | None = None,
        depth: int = 0,
        max_set_size: int | None = None,
    ) -> "Universe":
        """Bounded Herbrand universe per Definition 7."""
        atoms = atom_terms(constants, functions, depth)
        sets = set_values(atoms, max_size=max_set_size)
        return Universe(tuple(atoms), tuple(sets))

    def carrier(self, sort: str) -> Sequence[Term]:
        """The carrier of a sort (``u`` gets atoms and sets, ELPS-style)."""
        if sort == SORT_A:
            return self.atoms
        if sort == SORT_S:
            return self.sets
        if sort == SORT_U:
            return tuple(self.atoms) + tuple(self.sets)
        raise EvaluationError(f"unknown sort {sort!r}")

    def __contains__(self, term: Term) -> bool:
        if isinstance(term, SetValue):
            return term in self.sets
        return term in self.atoms

    @property
    def size(self) -> tuple[int, int]:
        return (len(self.atoms), len(self.sets))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Universe(|D|={len(self.atoms)}, |D*|={len(self.sets)})"


def herbrand_base(
    signatures: Mapping[str, Sequence[str]],
    universe: Universe,
) -> Iterator[Atom]:
    """All ground non-special atoms ``p(u1,…,uk)`` over the universe.

    ``signatures`` maps predicate names to their argument-sort strings
    (e.g. ``{"disj": ("s", "s")}``).  Special atoms (``=``, ``in``) are not
    enumerated — their interpretation is fixed by Definition 3 and handled
    structurally by the model checker.
    """
    for pred in sorted(signatures):
        sorts = signatures[pred]
        carriers = [universe.carrier(s) for s in sorts]
        for combo in itertools.product(*carriers):
            yield Atom(pred, tuple(combo))
