"""Herbrand interpretations and model checking (Definitions 3, 8, 9).

A Herbrand interpretation is a set of ground non-special atoms; the special
predicates ``=`` and ``in`` have their interpretations fixed structurally
(identity and set membership), which is exactly what Definition 3 requires
of an LPS model and what makes Lemma 1 automatic here.

:class:`Interpretation` stores the atoms with a per-predicate index and
implements

* :meth:`Interpretation.holds` — the atom oracle used by formula evaluation,
* :meth:`Interpretation.satisfies_clause` — ``M ⊨ C`` by enumerating ground
  substitutions for the clause's free variables over a finite
  :class:`~repro.semantics.herbrand.Universe`,
* :meth:`Interpretation.satisfies_program` — ``M ⊨ P``.

Model checking a clause against a finite universe is decidable and exact;
the theory tests rely on this as the *independent* semantics oracle against
which the engine and the fixpoint operator are validated.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Mapping, Optional, Sequence

from ..core.atoms import Atom
from ..core.clauses import GroupingClause, LPSClause
from ..core.errors import EvaluationError
from ..core.formulas import evaluate
from ..core.program import Program
from ..core.substitution import Subst
from ..core.terms import SetValue, Term, Var, order_key, setvalue
from .herbrand import Universe


class Interpretation:
    """A mutable set of ground non-special atoms with a predicate index."""

    __slots__ = ("_atoms", "_by_pred")

    def __init__(self, atoms: Iterable[Atom] = ()) -> None:
        self._atoms: set[Atom] = set()
        self._by_pred: dict[str, set[Atom]] = {}
        for a in atoms:
            self.add(a)

    # -- mutation ----------------------------------------------------------------

    def add(self, a: Atom) -> bool:
        """Insert a ground atom; returns ``True`` if it was new."""
        if a.is_special():
            raise EvaluationError(
                f"special atom {a} cannot be asserted; its interpretation is "
                "fixed (Definition 3)"
            )
        if not a.is_ground():
            raise EvaluationError(f"cannot assert non-ground atom {a}")
        if a in self._atoms:
            return False
        self._atoms.add(a)
        self._by_pred.setdefault(a.pred, set()).add(a)
        return True

    def update(self, atoms: Iterable[Atom]) -> int:
        """Insert many atoms; returns the number actually added."""
        return sum(1 for a in atoms if self.add(a))

    def copy(self) -> "Interpretation":
        out = Interpretation()
        out._atoms = set(self._atoms)
        out._by_pred = {p: set(s) for p, s in self._by_pred.items()}
        return out

    # -- queries ------------------------------------------------------------------

    def holds(self, a: Atom) -> bool:
        """Whether a ground non-special atom is true in this interpretation."""
        return a in self._atoms

    def by_pred(self, pred: str) -> frozenset[Atom]:
        return frozenset(self._by_pred.get(pred, ()))

    def predicates(self) -> set[str]:
        return {p for p, s in self._by_pred.items() if s}

    def __contains__(self, a: Atom) -> bool:
        return a in self._atoms

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._atoms)

    def __len__(self) -> int:
        return len(self._atoms)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Interpretation):
            return self._atoms == other._atoms
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - rarely needed
        return hash(frozenset(self._atoms))

    def __le__(self, other: "Interpretation") -> bool:
        return self._atoms <= other._atoms

    def __or__(self, other: "Interpretation") -> "Interpretation":
        return Interpretation(itertools.chain(self._atoms, other._atoms))

    def __and__(self, other: "Interpretation") -> "Interpretation":
        return Interpretation(a for a in self._atoms if a in other)

    def atoms(self) -> frozenset[Atom]:
        return frozenset(self._atoms)

    def sorted_atoms(self) -> list[Atom]:
        """Atoms in a deterministic order for printing and diffing."""
        return sorted(
            self._atoms,
            key=lambda a: (a.pred, tuple(order_key(t) for t in a.args)),
        )

    def pretty(self) -> str:
        return "\n".join(f"{a}." for a in self.sorted_atoms())

    def __repr__(self) -> str:
        return f"Interpretation({len(self._atoms)} atoms)"

    # -- model checking -------------------------------------------------------------

    def satisfies_clause(self, c: LPSClause, universe: Universe) -> bool:
        """``M ⊨ C`` relative to a finite universe.

        Enumerates every assignment of the clause's free variables over the
        universe carriers and checks head-or-not-body.  Restricted
        quantifiers inside the body are unfolded over their (then ground)
        range sets, honouring the ``(∀x ∈ ∅)φ ≡ true`` convention.
        """
        free = sorted(c.free_vars(), key=lambda v: (v.sort, v.name))
        body = c.body_formula()
        for theta in assignments(free, universe):
            head = c.head.substitute(theta)
            if self.holds(head):
                continue
            if evaluate(body.substitute(theta), self.holds):
                return False
        return True

    def satisfies_program(self, p: Program, universe: Universe) -> bool:
        """``M ⊨ P`` for programs of LPS clauses (grouping is not first-order
        satisfiable in this sense and is rejected)."""
        for c in p.clauses:
            if isinstance(c, GroupingClause):
                raise EvaluationError(
                    "grouping clauses have no first-order satisfaction "
                    "relation; evaluate them with the engine"
                )
            if not self.satisfies_clause(c, universe):
                return False
        return True

    def failing_instance(
        self, c: LPSClause, universe: Universe
    ) -> Optional[Subst]:
        """A witness substitution under which the clause is violated, if any."""
        free = sorted(c.free_vars(), key=lambda v: (v.sort, v.name))
        body = c.body_formula()
        for theta in assignments(free, universe):
            head = c.head.substitute(theta)
            if self.holds(head):
                continue
            if evaluate(body.substitute(theta), self.holds):
                return theta
        return None


def assignments(variables: Sequence[Var], universe: Universe) -> Iterator[Subst]:
    """All ground substitutions for ``variables`` over the universe."""
    if not variables:
        yield Subst()
        return
    carriers = [universe.carrier(v.sort) for v in variables]
    for combo in itertools.product(*carriers):
        yield Subst(dict(zip(variables, combo)))


def active_universe(
    program: Program,
    interp: Optional[Interpretation] = None,
    extra_atoms: Iterable[Term] = (),
    extra_sets: Iterable[SetValue] = (),
) -> Universe:
    """The **active domain** universe of a program plus an interpretation.

    Contains every ground sort-a term and every set value occurring in the
    program's clauses, the interpretation's atoms, and the given extras —
    closed downward (elements of occurring sets are included as atoms when
    they are a-terms, and as sets when nested).  The empty set is always
    present: the paper's semantics of restricted quantification makes ``∅``
    a first-class citizen (Definition 4).
    """
    from ..core.terms import App, Const, subterms

    atoms: dict[Term, None] = {}
    sets: dict[SetValue, None] = {}

    def note(t: Term) -> None:
        for s in subterms(t):
            if isinstance(s, SetValue):
                sets.setdefault(s, None)
            elif isinstance(s, (Const, App)) and s.is_ground():
                atoms.setdefault(s, None)

    for t in program.all_terms():
        note(t)
    if interp is not None:
        for a in interp:
            for t in a.args:
                note(t)
    for t in extra_atoms:
        note(t)
    for s in extra_sets:
        note(s)
    sets.setdefault(setvalue(()), None)
    return Universe(tuple(atoms), tuple(sets))
