"""Herbrand interpretations and model checking (Definitions 3, 8, 9).

A Herbrand interpretation is a set of ground non-special atoms; the special
predicates ``=`` and ``in`` have their interpretations fixed structurally
(identity and set membership), which is exactly what Definition 3 requires
of an LPS model and what makes Lemma 1 automatic here.

:class:`Interpretation` stores the atoms with a per-predicate index and
implements

* :meth:`Interpretation.holds` — the atom oracle used by formula evaluation,
* :meth:`Interpretation.satisfies_clause` — ``M ⊨ C`` by enumerating ground
  substitutions for the clause's free variables over a finite
  :class:`~repro.semantics.herbrand.Universe`,
* :meth:`Interpretation.satisfies_program` — ``M ⊨ P``.

Model checking a clause against a finite universe is decidable and exact;
the theory tests rely on this as the *independent* semantics oracle against
which the engine and the fixpoint operator are validated.
"""

from __future__ import annotations

import itertools
from array import array
from typing import Iterable, Iterator, Mapping, Optional, Sequence

from ..core.atoms import Atom, atom_order_key
from ..core.clauses import GroupingClause, LPSClause
from ..core.errors import EvaluationError
from ..core.formulas import evaluate
from ..core.program import Program
from ..core.substitution import Subst
from ..core.terms import SetExpr, SetValue, Term, Var, setvalue
from .herbrand import Universe


#: Relations smaller than this are scanned rather than indexed.
INDEX_MIN_FACTS = 8

_EMPTY_FACTS: dict = {}

#: Sentinel distinguishing "no cache entry yet" from the ``None`` marker
#: that pins a mixed-arity predicate as uncacheable (see ``id_columns``).
_NO_COLUMNS = object()


def _index_insert(
    index: dict, positions: tuple[int, ...], a: Atom
) -> None:
    """Insert one fact into a positions-index (shared by lazy build and
    incremental maintenance — the two must never diverge).

    Buckets are insertion-ordered dicts (value always ``None``), like the
    per-predicate fact sets: deterministic enumeration order plus O(1)
    removal (bulk retraction would be quadratic on list buckets).
    """
    args = a.args
    if positions and positions[-1] >= len(args):
        return  # arity mismatch: can never match such patterns
    key = tuple(args[i] for i in positions)
    bucket = index.get(key)
    if bucket is None:
        index[key] = {a: None}
    else:
        bucket[a] = None


def _index_remove(
    index: dict, positions: tuple[int, ...], a: Atom
) -> None:
    """Remove one fact from a positions-index (inverse of `_index_insert`)."""
    args = a.args
    if positions and positions[-1] >= len(args):
        return  # arity mismatch: was never inserted
    key = tuple(args[i] for i in positions)
    bucket = index.get(key)
    if bucket is not None:
        bucket.pop(a, None)
        if not bucket:
            del index[key]


class Interpretation:
    """A mutable set of ground non-special atoms with a predicate index.

    Beyond the per-predicate fact sets, the interpretation maintains
    **incremental argument indexes**: per predicate and per combination of
    bound argument positions, a hash map from the value tuple at those
    positions to the matching facts.  An index is built lazily the first
    time a caller asks for candidates with that position signature and is
    kept up to date by :meth:`add` from then on, so both the bottom-up
    solver's join steps and the top-down prover's fact lookups stay
    O(candidates) instead of O(relation) as the relation grows (see
    DESIGN.md, "Performance architecture").

    **Snapshots.**  :meth:`snapshot` returns an immutable view sharing the
    per-predicate fact dicts and their indexes with this interpretation —
    O(#predicates), not O(#facts).  The writable original switches to
    copy-on-write: the first mutation of a predicate after a snapshot
    copies that predicate's fact dict (and drops its now-shared indexes,
    which rebuild lazily), so every published snapshot stays bit-identical
    to the model at its version forever.  Frozen snapshots refuse all
    mutation; their lazy index builds are pure caches over immutable
    buckets and are safe to race between CPython reader threads (see
    DESIGN.md, "Service layer").
    """

    __slots__ = (
        "_by_pred", "_indexes", "_size", "_frozen", "_shared", "_columns"
    )

    def __init__(self, atoms: Iterable[Atom] = ()) -> None:
        # Per-predicate facts as insertion-ordered dicts (value always None):
        # enumeration order is then the order facts were added, independent
        # of the process hash seed — the top-down prover relies on this for
        # deterministic answer order.  There is deliberately no global atom
        # set: per-predicate dicts are the single source of truth, which is
        # what makes per-predicate copy-on-write snapshots sound.
        self._by_pred: dict[str, dict[Atom, None]] = {}
        # pred -> positions -> key tuple -> facts
        self._indexes: dict[
            str, dict[tuple[int, ...], dict[tuple, dict[Atom, None]]]
        ] = {}
        self._size = 0
        self._frozen = False
        #: Predicates whose bucket/indexes are shared with a snapshot.
        self._shared: set[str] = set()
        #: pred -> (arity, nfacts, per-position ID column bytes) — the
        #: columnar executor's encoded relations (see :meth:`id_columns`).
        #: ``None`` marks a predicate as uncacheable (mixed arities).
        self._columns: dict[
            str, Optional[tuple[int, int, tuple[bytes, ...]]]
        ] = {}
        for a in atoms:
            self.add(a)

    # -- snapshots / copy-on-write ------------------------------------------------

    @property
    def frozen(self) -> bool:
        """Whether this interpretation is an immutable snapshot."""
        return self._frozen

    def snapshot(self) -> "Interpretation":
        """An immutable O(#predicates) snapshot of the current facts.

        The snapshot shares fact dicts and index structures with this
        interpretation; subsequent mutations here copy-on-write, so the
        snapshot never changes.  See the class docstring.
        """
        snap = Interpretation.__new__(Interpretation)
        snap._by_pred = dict(self._by_pred)
        # Per-predicate signature maps are copied (either side may lazily
        # add new signatures); the index dicts themselves are shared.
        snap._indexes = {p: dict(per) for p, per in self._indexes.items()}
        snap._size = self._size
        snap._frozen = True
        snap._shared = set()
        # Column-cache entries are immutable tuples over immutable bytes
        # and only ever *replaced* (never extended in place), so sharing
        # them is safe: the writable side swaps in new tuples, the
        # snapshot keeps the prefix it captured.
        snap._columns = dict(self._columns)
        if not self._frozen:
            self._shared = set(self._by_pred)
        return snap

    def _mutable_bucket(self, pred: str) -> Optional[dict[Atom, None]]:
        """The predicate's fact dict, un-shared and safe to mutate."""
        if self._frozen:
            raise EvaluationError(
                "interpretation is a frozen snapshot and cannot be mutated"
            )
        shared = self._shared
        if shared and pred in shared:
            shared.discard(pred)
            bucket = self._by_pred.get(pred)
            if bucket is not None:
                bucket = self._by_pred[pred] = dict(bucket)
            # The shared indexes now belong to the snapshot; rebuild lazily.
            self._indexes.pop(pred, None)
            return bucket
        return self._by_pred.get(pred)

    # -- mutation ----------------------------------------------------------------

    def add(self, a: Atom) -> bool:
        """Insert a ground atom; returns ``True`` if it was new."""
        if a.is_special():
            raise EvaluationError(
                f"special atom {a} cannot be asserted; its interpretation is "
                "fixed (Definition 3)"
            )
        if not a.is_ground():
            raise EvaluationError(f"cannot assert non-ground atom {a}")
        bucket = self._by_pred.get(a.pred)
        if bucket is not None and a in bucket:
            return False
        bucket = self._mutable_bucket(a.pred)
        if bucket is None:
            bucket = self._by_pred[a.pred] = {}
        bucket[a] = None
        self._size += 1
        per = self._indexes.get(a.pred)
        if per:
            for positions, index in per.items():
                _index_insert(index, positions, a)
        return True

    def update(self, atoms: Iterable[Atom]) -> int:
        """Insert many atoms; returns the number actually added."""
        return sum(1 for a in atoms if self.add(a))

    def remove(self, a: Atom) -> bool:
        """Retract a ground atom; returns ``True`` if it was present.

        Keeps every already-built argument index consistent, so interleaved
        :meth:`add`/:meth:`remove` sequences leave :meth:`candidates` and
        :meth:`candidate_count` agreeing with a fresh linear scan (the
        incremental-maintenance subsystem depends on this invariant).
        """
        bucket = self._by_pred.get(a.pred)
        if bucket is None or a not in bucket:
            return False
        bucket = self._mutable_bucket(a.pred)
        bucket.pop(a, None)
        self._size -= 1
        # Removal breaks the append-only prefix the column cache relies
        # on; drop it and let the next columnar scan rebuild (like the
        # lazily rebuilt indexes after copy-on-write).
        self._columns.pop(a.pred, None)
        per = self._indexes.get(a.pred)
        if per:
            for positions, index in per.items():
                _index_remove(index, positions, a)
        return True

    def discard(self, atoms: Iterable[Atom]) -> int:
        """Retract many atoms; returns the number actually removed."""
        return sum(1 for a in atoms if self.remove(a))

    def copy(self) -> "Interpretation":
        out = Interpretation()
        out._by_pred = {p: dict(s) for p, s in self._by_pred.items()}
        out._size = self._size
        # Indexes are rebuilt lazily on the copy.
        return out

    # -- queries ------------------------------------------------------------------

    def holds(self, a: Atom) -> bool:
        """Whether a ground non-special atom is true in this interpretation."""
        return a in self._by_pred.get(a.pred, _EMPTY_FACTS)

    def by_pred(self, pred: str) -> frozenset[Atom]:
        return frozenset(self._by_pred.get(pred, ()))

    def facts_of(self, pred: str) -> Mapping[Atom, None]:
        """The live, insertion-ordered facts of a predicate.

        Callers must not mutate it; iterate it like a set of atoms.
        """
        return self._by_pred.get(pred, _EMPTY_FACTS)

    def id_columns(
        self, pred: str
    ) -> Optional[tuple[int, int, tuple[bytes, ...]]]:
        """``(arity, nfacts, per-position ID column bytes)`` for a relation.

        The columnar executor's counterpart of the argument indexes: each
        argument position of the relation encoded as a contiguous vector
        of dense term-dictionary IDs (native int64 bytes, insertion
        order).  Built lazily and extended incrementally — :meth:`add`
        appends facts at the end of the bucket, so a cached encoding stays
        a valid prefix and only new facts pay the per-cell encode;
        :meth:`remove` drops the entry for a full lazy rebuild.  Entries
        are immutable and only ever replaced, which makes sharing them
        with snapshots safe.

        Returns ``None`` for empty relations and for relations with mixed
        arities (callers fall back to per-scan encoding).
        """
        bucket = self._by_pred.get(pred)
        n = 0 if bucket is None else len(bucket)
        if n == 0:
            return None
        entry = self._columns.get(pred, _NO_COLUMNS)
        if entry is None:  # known mixed-arity relation
            return None
        if entry is _NO_COLUMNS:
            facts: Iterable[Atom] = bucket
            arity = len(next(iter(bucket)).args)
            n_old, old = 0, (b"",) * arity
        else:
            arity, n_old, old = entry
            if n_old == n:
                return entry
            facts = itertools.islice(bucket, n_old, None)
        from ..core.terms import TERM_DICT

        id_of = TERM_DICT.id_of
        rows = []
        append = rows.append
        for f in facts:
            args = f.args
            if len(args) != arity:
                self._columns[pred] = None
                return None
            append(args)
        # Transpose then encode column-wise: zip/map/array run the per-cell
        # work in C, leaving only the id_of calls at Python speed.
        new = zip(*rows) if rows else ((),) * arity
        entry = (
            arity,
            n,
            tuple(
                o + array("q", map(id_of, col)).tobytes()
                for o, col in zip(old, new)
            ),
        )
        self._columns[pred] = entry
        return entry

    def _index_for(
        self, pred: str, positions: tuple[int, ...]
    ) -> dict[tuple, dict[Atom, None]]:
        per = self._indexes.get(pred)
        if per is None:
            per = self._indexes[pred] = {}
        index = per.get(positions)
        if index is None:
            index = {}
            for f in self._by_pred.get(pred, ()):
                _index_insert(index, positions, f)
            per[positions] = index
        return index

    def candidates(
        self, pred: str, positions: tuple[int, ...], key: tuple
    ) -> Iterable[Atom]:
        """Facts of ``pred`` whose arguments at ``positions`` equal ``key``.

        Uses (and incrementally maintains) the hash index for that position
        signature; an exact superset-free answer, not a heuristic.  The
        result is a read-only iterable of atoms in insertion order.
        """
        return self._index_for(pred, positions).get(key, ())

    def candidate_count(
        self, pred: str, positions: tuple[int, ...], key: tuple
    ) -> int:
        """``len(candidates(...))`` without materialising anything new."""
        bucket = self._index_for(pred, positions).get(key)
        return 0 if bucket is None else len(bucket)

    def has_index(self, pred: str, positions: tuple[int, ...]) -> bool:
        """Whether an index for this position signature is already built."""
        per = self._indexes.get(pred)
        return per is not None and positions in per

    def _bound_positions(
        self, args: Sequence[Term]
    ) -> list[tuple[int, Term]]:
        return [
            (i, t) for i, t in enumerate(args)
            if not isinstance(t, SetExpr) and t.is_ground()
        ]

    def _bucket_for_pattern(
        self, pred: str, args: Sequence[Term], use_indexes: bool
    ) -> Optional[tuple[tuple[int, ...], tuple]]:
        """The (positions, key) bucket a pattern's scan should read.

        The single shared selection policy behind both
        :meth:`candidates_for_pattern` and :meth:`estimate_for_pattern`:
        ``None`` means scan the whole relation (indexes off, relation
        below ``INDEX_MIN_FACTS``, or no bound position); a single bound
        position uses its (incrementally maintained) index; with several
        bound positions an already-built composite index is used exactly,
        and otherwise the **most selective single bound position** is
        chosen by comparing bucket sizes — single-position indexes are
        shared across every pattern shape of the predicate, where
        per-signature composite indexes would each pay an O(relation)
        build.
        """
        if not use_indexes:
            return None
        if len(self._by_pred.get(pred, _EMPTY_FACTS)) < INDEX_MIN_FACTS:
            return None
        bound = self._bound_positions(args)
        if not bound:
            return None
        if len(bound) == 1:
            i, t = bound[0]
            return (i,), (t,)
        positions = tuple(i for i, _ in bound)
        if self.has_index(pred, positions):
            return positions, tuple(t for _, t in bound)
        best_i, best_t, best_n = bound[0][0], bound[0][1], None
        for i, t in bound:
            n = self.candidate_count(pred, (i,), (t,))
            if best_n is None or n < best_n:
                best_i, best_t, best_n = i, t, n
        return (best_i,), (best_t,)

    def candidates_for_pattern(
        self, pred: str, args: Sequence[Term], use_indexes: bool = True
    ) -> Iterable[Atom]:
        """Candidate facts for a pattern atom's bound argument positions.

        The shared index policy (see :meth:`_bucket_for_pattern`) for the
        solver, the top-down prover and the plan executor.  The result may
        be a superset of the matching facts (callers re-match
        candidates), but is never larger than the chosen bucket.
        """
        bucket = self._bucket_for_pattern(pred, args, use_indexes)
        if bucket is None:
            return self._by_pred.get(pred, _EMPTY_FACTS)
        return self.candidates(pred, *bucket)

    def estimate_for_pattern(
        self, pred: str, args: Sequence[Term], use_indexes: bool = True
    ) -> int:
        """Candidate-count estimate matching :meth:`candidates_for_pattern`
        exactly — both consult :meth:`_bucket_for_pattern`, so the join
        planner's cost estimate is the size of the very bucket the scan
        would read (an upper bound on the true join fan-out)."""
        bucket = self._bucket_for_pattern(pred, args, use_indexes)
        if bucket is None:
            return len(self._by_pred.get(pred, _EMPTY_FACTS))
        return self.candidate_count(pred, *bucket)

    def predicates(self) -> set[str]:
        return {p for p, s in self._by_pred.items() if s}

    def __contains__(self, a: Atom) -> bool:
        return a in self._by_pred.get(a.pred, _EMPTY_FACTS)

    def __iter__(self) -> Iterator[Atom]:
        for bucket in self._by_pred.values():
            yield from bucket

    def __len__(self) -> int:
        return self._size

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Interpretation):
            if self._size != other._size:
                return False
            return all(a in other for a in self)
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - rarely needed
        return hash(frozenset(self))

    def __le__(self, other: "Interpretation") -> bool:
        return all(a in other for a in self)

    def __or__(self, other: "Interpretation") -> "Interpretation":
        return Interpretation(itertools.chain(self, other))

    def __and__(self, other: "Interpretation") -> "Interpretation":
        return Interpretation(a for a in self if a in other)

    def atoms(self) -> frozenset[Atom]:
        return frozenset(self)

    def sorted_atoms(self) -> list[Atom]:
        """Atoms in a deterministic order for printing and diffing."""
        return sorted(self, key=atom_order_key)

    def pretty(self) -> str:
        return "\n".join(f"{a}." for a in self.sorted_atoms())

    def __repr__(self) -> str:
        frozen = " frozen" if self._frozen else ""
        return f"Interpretation({self._size} atoms{frozen})"

    # -- model checking -------------------------------------------------------------

    def satisfies_clause(self, c: LPSClause, universe: Universe) -> bool:
        """``M ⊨ C`` relative to a finite universe.

        Enumerates every assignment of the clause's free variables over the
        universe carriers and checks head-or-not-body.  Restricted
        quantifiers inside the body are unfolded over their (then ground)
        range sets, honouring the ``(∀x ∈ ∅)φ ≡ true`` convention.
        """
        free = sorted(c.free_vars(), key=lambda v: (v.sort, v.name))
        body = c.body_formula()
        for theta in assignments(free, universe):
            head = c.head.substitute(theta)
            if self.holds(head):
                continue
            if evaluate(body.substitute(theta), self.holds):
                return False
        return True

    def satisfies_program(self, p: Program, universe: Universe) -> bool:
        """``M ⊨ P`` for programs of LPS clauses (grouping is not first-order
        satisfiable in this sense and is rejected)."""
        for c in p.clauses:
            if isinstance(c, GroupingClause):
                raise EvaluationError(
                    "grouping clauses have no first-order satisfaction "
                    "relation; evaluate them with the engine"
                )
            if not self.satisfies_clause(c, universe):
                return False
        return True

    def failing_instance(
        self, c: LPSClause, universe: Universe
    ) -> Optional[Subst]:
        """A witness substitution under which the clause is violated, if any."""
        free = sorted(c.free_vars(), key=lambda v: (v.sort, v.name))
        body = c.body_formula()
        for theta in assignments(free, universe):
            head = c.head.substitute(theta)
            if self.holds(head):
                continue
            if evaluate(body.substitute(theta), self.holds):
                return theta
        return None


def assignments(variables: Sequence[Var], universe: Universe) -> Iterator[Subst]:
    """All ground substitutions for ``variables`` over the universe."""
    if not variables:
        yield Subst()
        return
    carriers = [universe.carrier(v.sort) for v in variables]
    # Carrier values are canonical ground terms of the variable's own sort,
    # so the validating constructor would only re-check what holds by
    # construction — use the fast internal one.
    for combo in itertools.product(*carriers):
        yield Subst._make(dict(zip(variables, combo)))


def active_universe(
    program: Program,
    interp: Optional[Interpretation] = None,
    extra_atoms: Iterable[Term] = (),
    extra_sets: Iterable[SetValue] = (),
) -> Universe:
    """The **active domain** universe of a program plus an interpretation.

    Contains every ground sort-a term and every set value occurring in the
    program's clauses, the interpretation's atoms, and the given extras —
    closed downward (elements of occurring sets are included as atoms when
    they are a-terms, and as sets when nested).  The empty set is always
    present: the paper's semantics of restricted quantification makes ``∅``
    a first-class citizen (Definition 4).
    """
    from ..core.terms import App, Const, subterms

    atoms: dict[Term, None] = {}
    sets: dict[SetValue, None] = {}

    def note(t: Term) -> None:
        for s in subterms(t):
            if isinstance(s, SetValue):
                sets.setdefault(s, None)
            elif isinstance(s, (Const, App)) and s.is_ground():
                atoms.setdefault(s, None)

    for t in program.all_terms():
        note(t)
    if interp is not None:
        for a in interp:
            for t in a.args:
                note(t)
    for t in extra_atoms:
        note(t)
    for s in extra_sets:
        note(s)
    sets.setdefault(setvalue(()), None)
    return Universe(tuple(atoms), tuple(sets))
