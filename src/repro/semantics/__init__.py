"""Model-theoretic and fixpoint semantics of LPS (Section 3 of the paper).

* :mod:`repro.semantics.herbrand` — bounded Herbrand universes and bases
  (Definitions 7–9, Definition 13 for ELPS);
* :mod:`repro.semantics.interpretation` — Herbrand interpretations, model
  checking ``M ⊨ P`` over finite universes, active-domain extraction;
* :mod:`repro.semantics.fixpoint` — the ``T_P`` operator and its least
  fixpoint (Definition 11, Theorem 5), by literal Lemma-4 grounding;
* :mod:`repro.semantics.minimal` — brute-force enumeration of all Herbrand
  models and their intersection (Definition 10, Theorem 3), used as the
  independent oracle in the theory tests.
"""

from .herbrand import (
    Universe,
    atom_terms,
    herbrand_base,
    nested_set_values,
    set_values,
)
from .interpretation import Interpretation, active_universe, assignments
from .fixpoint import FixpointResult, TpOperator, least_fixpoint
from .minimal import (
    all_models,
    intersection_of_models,
    is_logical_consequence,
    minimal_models,
)

__all__ = [
    "Universe",
    "atom_terms",
    "set_values",
    "nested_set_values",
    "herbrand_base",
    "Interpretation",
    "assignments",
    "active_universe",
    "TpOperator",
    "FixpointResult",
    "least_fixpoint",
    "all_models",
    "intersection_of_models",
    "minimal_models",
    "is_logical_consequence",
]
