"""Sessions: snapshot-isolated query/update units over a shared model.

A :class:`Session` is the unit of client state in the query service.  Each
request executes the REPL grammar (``?- query.``, ``+fact.``, ``-fact.``,
``:commands``) against an **immutable snapshot** pinned per request, so a
session never observes a half-applied delta no matter how many other
sessions are writing:

* **Reads** resolve a :class:`~repro.engine.maintenance.ModelSnapshot` —
  the latest published version by default, or a fixed one after ``:at N``
  (time travel) — then parse, plan and execute the query against it.
  Conjunctive queries compile through the same planner/executor as rule
  bodies (set-at-a-time when the plan applies, tuple-at-a-time solver
  otherwise, with active-domain fallback disabled: queries must be
  range-restricted).
* **Writes** go through the single serialized writer
  (:meth:`VersionedModel.apply_delta`).  By default every ``+``/``-``
  commits immediately; ``:begin`` opens an explicit batch that ``:commit``
  applies atomically (one maintenance sweep, one published version) and
  ``:abort`` discards.  **Read-your-writes:** a query on a session with a
  pending batch flushes the batch first, so the session's own reads always
  reflect its own writes; other sessions only ever see published versions.
* **Stats are per-session.**  Every query runs with fresh
  :class:`SolverStats`/:class:`ExecStats` merged into the session's
  totals under the session lock; the service merges sessions on read.
  Nothing shared is mutated on the read path, so totals stay exact under
  a thread pool (see ``tests/test_concurrency.py``).

Every error — parse failure, retired version, oversized batch, closed
session — returns a structured :class:`Response` with a stable ``code``
and leaves the shared model untouched.
"""

from __future__ import annotations

import itertools
import json
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from ..core.atoms import Atom
from ..core.clauses import GroupingClause, LPSClause
from ..core.errors import EvaluationError, LPSError, SafetyError
from ..core.substitution import Subst
from ..core.terms import Term, Var, order_key
from ..engine.evaluation import (
    ActiveDomain,
    SolverStats,
    _CompiledRule,
)
from ..engine.columnar import annotated_pretty, make_executor
from ..engine.executor import PlanInapplicable
from ..engine.ir import ExecStats
from ..engine.maintenance import (
    MaintenanceReport,
    ModelSnapshot,
    RetiredVersionError,
    VersionedModel,
)
from ..engine.planner import compile_grouping, compile_rule
from ..lang import parse_atom, parse_program
from .subscriptions import render_rows

#: Structured error codes (stable protocol surface; tests key on these).
E_PARSE = "parse_error"
E_RETIRED = "retired_version"
E_BATCH = "batch_too_large"
E_EVAL = "evaluation_error"
E_UNSAFE = "unsafe_query"
E_CLOSED = "session_closed"
E_COMMAND = "unknown_command"
#: Replication & failover codes (see DESIGN.md, "Replication & failover").
E_UNKNOWN_VERSION = "unknown_version"      # :at N beyond latest (leader)
E_NOT_YET = "not_yet_applied"              # retryable: follower lag
E_READ_ONLY = "read_only"                  # write sent to a follower
E_NOT_FOLLOWER = "not_a_follower"          # :promote sent to a leader
E_CLOSING = "server_closing"               # graceful shutdown in progress

#: Head predicate for compiled query clauses (identifiers must start
#: lower-case; the atom never enters any model, so collisions are inert).
QUERY_PRED = "query__"


@dataclass
class Response:
    """One structured reply: what a request did, or why it could not.

    ``kind`` names the payload shape (``answers``, ``write``, ``stats``,
    ``model``, ``plan``, ``version``, ``ok``, ``error``, ``subscribed``,
    ``diffs``, and the async push kinds ``diff``/``sub_dropped``);
    ``version`` is
    the snapshot version the request observed or produced, when there is
    one.  Serialization is a single JSON line, the protocol's wire format.
    """

    ok: bool
    kind: str
    data: Any = None
    version: Optional[int] = None
    error: Optional[str] = None
    code: Optional[str] = None

    def to_json(self) -> str:
        return json.dumps(
            {
                "ok": self.ok,
                "kind": self.kind,
                "data": self.data,
                "version": self.version,
                "error": self.error,
                "code": self.code,
            },
            sort_keys=True,
        )

    @staticmethod
    def from_json(line: str) -> "Response":
        d = json.loads(line)
        return Response(
            ok=d["ok"],
            kind=d["kind"],
            data=d.get("data"),
            version=d.get("version"),
            error=d.get("error"),
            code=d.get("code"),
        )

    @staticmethod
    def failure(code: str, message: str) -> "Response":
        return Response(
            ok=False, kind="error", error=message, code=code
        )


@dataclass
class QueryResult:
    """Term-level query answers: a variable schema plus sorted rows."""

    vars: tuple[str, ...]
    rows: list[tuple[Term, ...]]
    version: int

    @property
    def truth(self) -> bool:
        """For ground queries: whether any answer exists."""
        return bool(self.rows)

    def bindings(self) -> list[dict[str, str]]:
        """JSON-safe answers: one ``{var: rendered term}`` dict per row."""
        return [
            {v: str(t) for v, t in zip(self.vars, row)} for row in self.rows
        ]


@dataclass
class SessionStats:
    """Per-session counters, merged service-wide on ``:stats`` reads."""

    queries: int = 0
    answers: int = 0
    writes: int = 0
    errors: int = 0
    solver: SolverStats = field(default_factory=SolverStats)
    execs: ExecStats = field(default_factory=ExecStats)

    def merge(self, other: "SessionStats") -> None:
        self.queries += other.queries
        self.answers += other.answers
        self.writes += other.writes
        self.errors += other.errors
        self.solver.merge(other.solver)
        self.execs.merge(other.execs)


class Session:
    """One client's view of the shared :class:`VersionedModel`.

    Sessions are *not* shared between threads: the service hands each
    connection its own.  The session lock only guards the session's own
    pending batch and stats against the service's merge-on-read, never the
    shared model — reads are wait-free with respect to the writer.
    """

    _ids = itertools.count(1)

    def __init__(
        self,
        model: VersionedModel,
        max_batch: int = 10_000,
        service: Optional["QueryService"] = None,
        max_pending_diffs: int = 256,
    ) -> None:
        self.session_id = next(Session._ids)
        self._model = model
        self._max_batch = max_batch
        self._service = service
        self._lock = threading.Lock()
        self._closed = False
        #: None = immediate writes; a list = explicit batch (``:begin``).
        self._pending: Optional[list[tuple[bool, Atom]]] = None
        #: None = follow the latest version; an int = pinned ``:at N``.
        self._read_version: Optional[int] = None
        self._pinned: list[int] = []
        self.stats = SessionStats()
        #: Per-rule compilation cache for repeated query shapes.
        self._query_cache: dict[tuple, _CompiledRule] = {}
        #: Queued subscription push frames (drained by ``:diffs`` or the
        #: protocol's async push path); bounded — an undrained session's
        #: subscriptions are dropped rather than growing the server.
        self._max_pending_diffs = max_pending_diffs
        self._push_frames: deque[dict] = deque()
        #: Protocol hook: called (from the dispatcher thread) after a
        #: frame is enqueued, so the connection can wake and flush.
        self.on_push: Optional[Callable[[], None]] = None

    # -- lifecycle ---------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Tear the session down; pending writes are **discarded**.

        A mid-batch disconnect must not poison the shared model: nothing
        staged is applied, pinned versions are released, and the session
        refuses further requests with ``session_closed``.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._pending = None
            self._push_frames.clear()
            self.on_push = None
        for v in self._pinned:
            self._model.release(v)
        self._pinned.clear()
        if self._service is not None:
            self._service.forget_session(self)

    # -- snapshot resolution -----------------------------------------------------

    def snapshot(self) -> ModelSnapshot:
        """The snapshot this session's next read will observe."""
        if self._read_version is not None:
            return self._model.at(self._read_version)
        return self._model.current

    def pin(self, version: Optional[int] = None) -> ModelSnapshot:
        """Pin a version (default: latest) and read from it until
        :meth:`unpin`; pinned versions survive registry retirement."""
        snap = self._model.pin(version)
        self._pinned.append(snap.version)
        self._read_version = snap.version
        return snap

    def unpin(self) -> None:
        """Return to following the latest published version."""
        self._read_version = None
        for v in self._pinned:
            self._model.release(v)
        self._pinned.clear()

    # -- queries -----------------------------------------------------------------

    def _compiled_query(self, text: str) -> _CompiledRule:
        """Parse a (possibly conjunctive) query into a compiled rule.

        The text is wrapped as the body of a ``__query__`` clause; the
        answer head collects the body's free variables in a deterministic
        order, so answers are full bindings exactly like rule derivation.
        """
        key = (text, self._model.options.plan_joins)
        cached = self._query_cache.get(key)
        if cached is not None:
            return cached
        program = parse_program(f"{QUERY_PRED} :- {text}.")
        clauses = [c for c in program.clauses if isinstance(c, LPSClause)]
        if len(clauses) != 1 or any(
            isinstance(c, GroupingClause) for c in program.clauses
        ):
            raise EvaluationError(
                "a query must be a single (conjunctive) goal"
            )
        parsed = clauses[0]
        out_vars = tuple(sorted(
            parsed.free_vars(), key=lambda v: (v.var_sort, v.name)
        ))
        rule = _CompiledRule(
            LPSClause(
                head=Atom(QUERY_PRED, out_vars),
                quantifiers=parsed.quantifiers,
                body=parsed.body,
            ),
            self._model.builtins,
        )
        self._query_cache[key] = rule
        return rule

    def query(self, text: str) -> QueryResult:
        """Answer a query against this session's pinned snapshot.

        Pending batched writes are flushed first (read-your-writes) unless
        the session is pinned to an explicit historical version.
        """
        self._check_open()
        if self._read_version is None:
            self.flush()
        rule = self._compiled_query(text)
        snap = self.snapshot()
        stats = SessionStats()
        rows = self._execute_rule(rule, snap, stats)
        rows.sort(key=lambda row: tuple(order_key(t) for t in row))
        stats.queries += 1
        stats.answers += len(rows)
        with self._lock:
            self.stats.merge(stats)
        return QueryResult(
            vars=tuple(v.name for v in rule.head.args),
            rows=rows,
            version=snap.version,
        )

    def _execute_rule(
        self, rule: _CompiledRule, snap: ModelSnapshot, stats: SessionStats
    ) -> list[tuple[Term, ...]]:
        """Plan → execute: set-at-a-time when the compiled plan applies,
        else the tuple solver with fallback disabled (range-restricted
        queries only — a query must not enumerate the active domain)."""
        options = self._model.options
        interp = snap.interpretation
        rows: Optional[list[tuple[Term, ...]]] = None
        if options.compile_plans:
            executor = make_executor(
                interp,
                self._model.builtins,
                use_indexes=options.use_indexes,
                stats=stats.execs,
                columnar=options.columnar,
            )
            heads = rule.derive_via_plan(executor, options.plan_joins)
            if heads is not None:
                rows = [h.args for h in dict.fromkeys(heads)]
        if rows is None:
            from ..engine.evaluation import Solver

            solver = Solver(
                interp,
                ActiveDomain(),
                self._model.builtins,
                allow_fallback=False,
                stats=stats.solver,
                use_indexes=options.use_indexes,
                plan_joins=options.plan_joins,
            )
            head_vars = rule.head.args
            seen: dict[tuple[Term, ...], None] = {}
            for env in solver.solve(rule.body):
                seen.setdefault(tuple(env.apply(v) for v in head_vars))
            rows = list(seen)
        return rows

    # -- writes ------------------------------------------------------------------

    def _parse_fact(self, text: str) -> Atom:
        a = parse_atom(text.strip().rstrip("."))
        if not a.is_ground():
            raise EvaluationError(f"fact {a} is not ground")
        return a

    def assert_fact(self, text: str) -> Response:
        return self._stage(True, self._parse_fact(text))

    def retract_fact(self, text: str) -> Response:
        return self._stage(False, self._parse_fact(text))

    def _stage(self, is_add: bool, a: Atom) -> Response:
        self._check_open()
        refusal = self._refused_write()
        if refusal is not None:
            return refusal
        with self._lock:
            pending = self._pending
            if pending is not None:
                if len(pending) >= self._max_batch:
                    self.stats.errors += 1
                    return Response.failure(
                        E_BATCH,
                        f"pending batch exceeds max_batch={self._max_batch};"
                        " :commit or :abort it",
                    )
                pending.append((is_add, a))
                return Response(
                    ok=True, kind="write",
                    data={"staged": len(pending)},
                )
        snap, report = self._apply([(is_add, a)])
        net = (report.net_added if is_add else report.net_removed) \
            if report is not None else 0
        with self._lock:
            self.stats.writes += 1
        return Response(
            ok=True, kind="write",
            data={"applied": net}, version=snap.version,
        )

    def begin(self) -> Response:
        """Open an explicit write batch (``:begin``)."""
        self._check_open()
        with self._lock:
            if self._pending is None:
                self._pending = []
            return Response(
                ok=True, kind="ok", data={"batch": len(self._pending)}
            )

    def commit(self) -> Response:
        """Apply the pending batch as one atomic delta (``:commit``)."""
        self._check_open()
        with self._lock:
            pending, self._pending = self._pending or [], None
        if not pending:
            return Response(
                ok=True, kind="write", data={"applied": 0},
                version=self._model.version,
            )
        try:
            snap, report = self._apply(pending)
        except Exception:
            # A failed apply must not lose the client's staged writes:
            # restore them so the error is retryable (fact deltas are
            # idempotent set operations, so a retry cannot double-apply).
            with self._lock:
                restored = list(pending)
                if self._pending:
                    restored.extend(self._pending)
                self._pending = restored
            raise
        applied = (report.net_added + report.net_removed) \
            if report is not None else 0
        with self._lock:
            self.stats.writes += len(pending)
        return Response(
            ok=True, kind="write",
            data={"applied": applied}, version=snap.version,
        )

    def abort(self) -> Response:
        """Discard the pending batch (``:abort``)."""
        self._check_open()
        with self._lock:
            dropped = len(self._pending or ())
            self._pending = None
        return Response(ok=True, kind="ok", data={"dropped": dropped})

    def flush(self) -> None:
        """Commit any pending batch (the read-your-writes hook)."""
        with self._lock:
            has_pending = bool(self._pending)
        if has_pending:
            self.commit()

    def _apply(
        self, batch: Iterable[tuple[bool, Atom]]
    ) -> tuple[ModelSnapshot, Optional[MaintenanceReport]]:
        """Apply one batch; returns the snapshot plus **this call's**
        maintenance report (a no-op delta publishes nothing, so the
        returned snapshot's own ``report`` field is the previous one)."""
        adds = [a for is_add, a in batch if is_add]
        dels = [a for is_add, a in batch if not is_add]
        with self._model.lock:
            snap = self._model.apply_delta(adds=adds, dels=dels)
            report = self._model.last_report
        # Replication ack gating runs *outside* the write lock: waiting
        # for follower acks must never stall other writers or the
        # shipping stream itself.
        if self._service is not None:
            self._service.wait_replicated(snap.version)
        return snap, report

    def _refused_write(self) -> Optional[Response]:
        """Role hook: a follower's session refuses writes here (the
        service decides; a standalone session is always writable)."""
        if self._service is not None:
            return self._service.refuse_write()
        return None

    # -- live subscriptions ------------------------------------------------------

    def subscribe(self, text: str) -> Response:
        """``:subscribe goal.`` — register a standing query.

        The goal compiles through the same planner as ad-hoc queries; the
        reply carries the full answer set at the baseline version, and
        every later commit that moves the answer set pushes an exact
        ``diff`` frame (see :mod:`repro.server.subscriptions`).

        A pending ``:begin`` batch is deliberately *not* flushed: the
        baseline is the latest published version, so staged writes arrive
        as the subscription's first diff when the batch commits.
        """
        self._check_open()
        manager = self._subscriptions()
        if manager is None:
            return Response.failure(
                E_COMMAND,
                "subscriptions require an owning query service",
            )
        rule = self._compiled_query(text.strip().rstrip("."))
        sub_id, snap = manager.subscribe(self, rule)
        try:
            stats = SessionStats()
            rows = self._execute_rule(rule, snap, stats)
            stats.queries += 1
            stats.answers += len(rows)
            with self._lock:
                self.stats.merge(stats)
        except Exception:
            # Never leave a half-registered standing query behind a
            # failed initial evaluation (e.g. an unsafe goal).
            manager.unsubscribe(self, sub_id)
            raise
        return Response(
            ok=True, kind="subscribed",
            data={
                "sub": sub_id,
                "vars": [v.name for v in rule.head.args],
                "rows": render_rows(rows),
                "truth": bool(rows),
            },
            version=snap.version,
        )

    def unsubscribe(self, sub_id: int) -> Response:
        """``:unsubscribe N`` — cancel one of this session's standing
        queries; frames already queued stay drainable via ``:diffs``."""
        self._check_open()
        manager = self._subscriptions()
        if manager is None or not manager.unsubscribe(self, sub_id):
            return Response.failure(
                E_COMMAND, f"unknown subscription {sub_id}"
            )
        return Response(
            ok=True, kind="ok",
            data={"sub": sub_id, "active": manager.session_subs(self)},
        )

    def diffs(self, arg: str = "") -> Response:
        """``:diffs [N]`` — drain (up to N of) the queued push frames."""
        self._check_open()
        limit: Optional[int] = None
        arg = arg.rstrip(".").strip()
        if arg:
            try:
                limit = int(arg)
            except ValueError:
                return Response.failure(
                    E_COMMAND, f"usage: :diffs [MAX] (got {arg!r})"
                )
        frames = self.take_push_frames(limit)
        return Response(
            ok=True, kind="diffs",
            data={"frames": frames, "pending": self.pending_push_count()},
            version=self._model.version,
        )

    def _subscriptions(self):
        if self._service is None:
            return None
        return getattr(self._service, "subscriptions", None)

    def push_frame(self, frame: dict, force: bool = False) -> bool:
        """Enqueue one push frame (dispatcher-side delivery hook).

        Returns ``False`` — without enqueuing — when the session is
        closed or its queue is full, which tells the dispatcher to drop
        the subscription; ``force`` bypasses the bound so the final
        ``sub_dropped`` notice itself always fits.
        """
        with self._lock:
            if self._closed:
                return False
            if not force and len(self._push_frames) >= self._max_pending_diffs:
                return False
            self._push_frames.append(frame)
        cb = self.on_push
        if cb is not None:
            try:
                cb()
            except Exception:
                pass
        return True

    def take_push_frames(self, limit: Optional[int] = None) -> list[dict]:
        """Drain queued push frames (all of them, or the oldest ``limit``)."""
        with self._lock:
            if limit is None or limit >= len(self._push_frames):
                out = list(self._push_frames)
                self._push_frames.clear()
            else:
                out = [
                    self._push_frames.popleft()
                    for _ in range(max(0, limit))
                ]
            return out

    def pending_push_count(self) -> int:
        with self._lock:
            return len(self._push_frames)

    # -- the REPL grammar --------------------------------------------------------

    def execute(self, line: str) -> Response:
        """Dispatch one protocol line; never raises — errors are responses."""
        try:
            return self._dispatch(line.strip())
        except RetiredVersionError as exc:
            return self._error(E_RETIRED, exc)
        except SafetyError as exc:
            return self._error(E_UNSAFE, exc)
        except LPSError as exc:
            # Errors may carry their own stable protocol code (e.g. the
            # replication hub's ack-timeout tags replication_lag).
            code = getattr(exc, "code", None)
            if not isinstance(code, str):
                code = E_PARSE if _is_parse_error(exc) else E_EVAL
            return self._error(code, exc)

    def _error(self, code: str, exc: Exception) -> Response:
        with self._lock:
            self.stats.errors += 1
        return Response.failure(code, str(exc))

    def _dispatch(self, line: str) -> Response:
        if not line:
            return Response(ok=True, kind="ok")
        if self._closed:
            return Response.failure(E_CLOSED, "session is closed")
        if line.startswith("?-"):
            result = self.query(line[2:].strip().rstrip("."))
            return Response(
                ok=True, kind="answers",
                data={
                    "vars": list(result.vars),
                    "rows": result.bindings(),
                    "truth": result.truth,
                },
                version=result.version,
            )
        if line.startswith("+"):
            return self.assert_fact(line[1:])
        if line.startswith("-"):
            return self.retract_fact(line[1:])
        if line.startswith(":"):
            return self._command(line)
        # Anything else is a program clause (a write: role hook applies).
        refusal = self._refused_write()
        if refusal is not None:
            return refusal
        snap = self.add_clause(line)
        return Response(ok=True, kind="ok", version=snap.version)

    def _command(self, line: str) -> Response:
        cmd, _, arg = line.partition(" ")
        arg = arg.strip()
        if cmd == ":begin":
            return self.begin()
        if cmd == ":commit":
            return self.commit()
        if cmd == ":abort":
            return self.abort()
        if cmd == ":version":
            snap = self.snapshot()
            return Response(
                ok=True, kind="version",
                data={
                    "latest": self._model.version,
                    "reading": snap.version,
                    "pinned": self._read_version is not None,
                },
                version=snap.version,
            )
        if cmd == ":at":
            try:
                version = int(arg.rstrip("."))
            except ValueError:
                return Response.failure(
                    E_COMMAND, f"usage: :at VERSION (got {arg!r})"
                )
            latest = self._model.version
            if version > latest:
                # Never published here.  On a leader that version simply
                # does not exist; on a follower it may exist upstream and
                # merely not be applied yet (see FollowerSession).
                return self._future_version(version, latest)
            # Pin the version so it cannot retire out from under the
            # session while it is reading there (released by :latest).
            self.unpin()
            snap = self.pin(version)         # raises RetiredVersionError
            return Response(ok=True, kind="ok", version=snap.version)
        if cmd == ":latest":
            self.unpin()
            return Response(
                ok=True, kind="ok", version=self._model.version
            )
        if cmd == ":model":
            snap = self.snapshot()
            return Response(
                ok=True, kind="model", data=snap.pretty(),
                version=snap.version,
            )
        if cmd == ":plan":
            return Response(ok=True, kind="plan", data=self.plan_text(arg))
        if cmd == ":stats":
            return Response(
                ok=True, kind="stats", data=self.stats_data(),
                version=self._model.version,
            )
        if cmd == ":sync":
            parts = arg.rstrip(".").split()
            try:
                version = int(parts[0])
                timeout = float(parts[1]) if len(parts) > 1 else 30.0
            except (IndexError, ValueError):
                return Response.failure(
                    E_COMMAND, f"usage: :sync VERSION [TIMEOUT] (got {arg!r})"
                )
            return self._sync(version, timeout)
        if cmd == ":subscribe":
            return self.subscribe(arg)
        if cmd == ":unsubscribe":
            try:
                sub_id = int(arg.rstrip("."))
            except ValueError:
                return Response.failure(
                    E_COMMAND, f"usage: :unsubscribe N (got {arg!r})"
                )
            return self.unsubscribe(sub_id)
        if cmd == ":diffs":
            return self.diffs(arg)
        if cmd == ":role":
            if self._service is not None:
                data = self._service.role_info()
            else:
                data = {
                    "role": "standalone",
                    "version": self._model.version,
                    "epoch": getattr(self._model, "epoch", 0),
                }
            return Response(
                ok=True, kind="role", data=data, version=self._model.version
            )
        if cmd == ":promote":
            return self._promote()
        return Response.failure(E_COMMAND, f"unknown command {cmd!r}")

    # -- replication hooks (overridden by FollowerSession) -----------------------

    def _future_version(self, version: int, latest: int) -> Response:
        with self._lock:
            self.stats.errors += 1
        return Response(
            ok=False, kind="error", code=E_UNKNOWN_VERSION,
            error=(
                f"version {version} has never been published "
                f"(latest is {latest})"
            ),
            data={"latest": latest},
        )

    def _sync(self, version: int, timeout: float) -> Response:
        """``:sync N`` — block until the model reaches version ``N``.

        The read-your-writes primitive across replicas: a client that
        wrote version N on the leader syncs to N on a follower before
        reading there.  On a leader this returns immediately (versions
        only advance through acknowledged writes).
        """
        latest = self._model.wait_version(version, timeout)
        if latest >= version:
            return Response(
                ok=True, kind="version",
                data={"latest": latest}, version=latest,
            )
        with self._lock:
            self.stats.errors += 1
        return Response(
            ok=False, kind="error", code=E_NOT_YET,
            error=(
                f"version {version} not applied within "
                f"{timeout:g}s (still at {latest})"
            ),
            data={"retryable": True, "latest": latest},
        )

    def _promote(self) -> Response:
        return Response.failure(
            E_NOT_FOLLOWER,
            "this server is not a follower; only a follower can be "
            "promoted",
        )

    # -- program management ------------------------------------------------------

    def add_clause(self, text: str) -> ModelSnapshot:
        """Extend the shared program (rebuilds and publishes a version)."""
        self._check_open()
        if self._service is None:
            raise EvaluationError(
                "this session has no owning service; program extension "
                "must go through QueryService.extend_program"
            )
        return self._service.extend_program(text)

    def plan_text(self, text: str) -> str:
        """Pretty-print the compiled plan of a standalone rule (``:plan``)."""
        program = parse_program(text)
        if not program.clauses:
            raise EvaluationError("no clause to plan")
        builtins = self._model.builtins
        chunks = []
        # Sugar like positive-formula bodies desugars into several clauses
        # (Theorem 6); show the plan of each one.
        for c in program.clauses:
            if isinstance(c, GroupingClause):
                cp = compile_grouping(c, builtins)
            elif isinstance(c, LPSClause):
                cp = compile_rule(c, builtins)
            else:  # pragma: no cover - parser produces only the two forms
                raise EvaluationError(f"cannot plan {c!r}")
            header = f"-- {c}"
            if not cp.is_set:
                chunks.append(f"{header}\ntuple-mode: {cp.reason}")
            elif self._model.options.columnar:
                # Tag each operator with the execution mode the columnar
                # executor would choose, so ``:plan`` shows vectorization.
                chunks.append(f"{header}\n{annotated_pretty(cp.root, builtins)}")
            else:
                chunks.append(f"{header}\n{cp.root.pretty()}")
        return "\n\n".join(chunks)

    # -- stats -------------------------------------------------------------------

    def stats_snapshot(self) -> SessionStats:
        """A consistent copy of this session's counters (merge-on-read)."""
        with self._lock:
            out = SessionStats()
            out.merge(self.stats)
            return out

    def stats_data(self) -> dict:
        """The ``:stats`` payload; service-wide when a service owns us."""
        return stats_payload(self._model, self._merge_stats())

    def _merge_stats(self) -> SessionStats:
        if self._service is not None:
            return self._service.merged_session_stats()
        return self.stats_snapshot()

    # -- helpers -----------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise EvaluationError("session is closed")


def _is_parse_error(exc: Exception) -> bool:
    from ..core.errors import ParseError

    return isinstance(exc, ParseError)


def stats_payload(model: VersionedModel, merged: SessionStats) -> dict:
    """The ``:stats`` payload: last-delta summary, session totals and the
    combined executor counters (writer maintenance + reader queries)."""
    report = model.last_report
    last = None
    if report is not None:
        last = {
            "strategy": report.strategy,
            "atoms_added": report.atoms_added,
            "atoms_removed": report.atoms_removed,
        }
    exec_all = ExecStats()
    exec_all.merge(model.exec_stats)
    exec_all.merge(merged.execs)
    return {
        "version": model.version,
        "last_delta": last,
        "queries": merged.queries,
        "answers": merged.answers,
        "writes": merged.writes,
        "errors": merged.errors,
        "matches": merged.solver.matches,
        "executor": exec_all.pretty(),
        "columnar": exec_all.columnar_summary(),
    }
