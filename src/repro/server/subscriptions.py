"""Live subscription queries: exact per-commit diffs for standing queries.

``:subscribe goal.`` compiles a goal through the same planner as ad-hoc
queries and registers it as a **standing query**.  The client gets the
full answer set once, at the subscribing version; from then on every
committed version pushes only the *exact diff* of the answer set —
computed by delta-plan evaluation, never by re-running the query:

* **Registration is gap-free.**  The manager registers the standing query
  under the model's write lock, recording the then-current version as its
  baseline, and :class:`~repro.engine.maintenance.VersionedModel` invokes
  its version listener under the same lock — so every version published
  after the baseline is observed exactly once, in order.
* **Diffs come from the maintenance deltas.**  Each published snapshot
  carries :class:`~repro.engine.maintenance.ModelChanges`: the exact
  per-predicate model atoms the commit added and removed.  For a
  delta-capable goal (a plain conjunction of positive literals) the
  dispatcher substitutes those sets into the goal's delta-variant plans —
  occurrence ``i`` pinned to the delta, the rest of the body joined
  against a full snapshot (`_CompiledRule.derive_delta_via_plan`, the
  same machinery semi-naive evaluation and counting maintenance use,
  columnar where the executor applies):

  - **candidate additions** pin each occurrence to the commit's *adds*
    and join over the **new** snapshot — every genuinely new answer has a
    new-state derivation consuming at least one added atom;
  - **candidate removals** pin each occurrence to the commit's *dels* and
    join over the **old** snapshot — every vanished answer's old-state
    derivations all consumed at least one deleted atom.

  Candidates are then filtered to the exact diff by a membership probe
  against the opposite snapshot (an added answer must not be derivable in
  the old state, a removed one not in the new), so alternative
  derivations never produce spurious rows.  Goals outside the delta
  fragment (negation, quantifiers) — and program replacements, which
  publish no delta — fall back to evaluate-and-diff against the
  dispatcher's cached rows; the pushed frames are bit-identical either
  way (property-tested in ``tests/test_subscribe.py``).
* **Delivery is bounded.**  Frames land in a per-session bounded queue
  (drained by ``:diffs`` or pushed asynchronously by the TCP protocol).
  A subscriber that stops draining is dropped with a final
  ``sub_dropped`` frame — same back-pressure policy as the replication
  hub: shed the slow consumer, never grow the server without limit.
* **One dispatcher, no polling.**  A single daemon thread parks on the
  manager's condition variable, woken by the version listener at every
  publication; per commit it builds at most two delta executors (adds
  over the new snapshot, dels over the old) shared by *all* standing
  queries, which is what makes thousands of subscriptions cheap (see
  ``benchmarks/test_bench_subscribe.py``).

Followers run the same manager: replayed records publish versions through
the same `VersionedModel` machinery, so subscriptions served from a
follower push diffs at the follower's applied version.  When a lagging
follower re-seeds from a shipped snapshot (a new model object), the
service retargets the manager and subscribers receive one catch-up diff
spanning the jump.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import TYPE_CHECKING, Iterable, Optional

from ..core.substitution import Subst
from ..core.terms import Term, order_key
from ..core.unify import match_atom
from ..engine.columnar import make_executor
from ..engine.evaluation import (
    ActiveDomain,
    Solver,
    SolverStats,
    _CompiledRule,
)
from ..engine.ir import ExecStats
from ..engine.maintenance import ModelChanges, ModelSnapshot, VersionedModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .service import QueryService
    from .session import Session

#: Push-frame kinds (the protocol forwards these as Response kinds).
FRAME_DIFF = "diff"
FRAME_DROPPED = "sub_dropped"

#: Dropped-subscription reasons.
REASON_SLOW = "slow_consumer"


def render_rows(rows: Iterable[tuple[Term, ...]]) -> list[list[str]]:
    """Deterministic JSON-safe rows: sorted by term order, rendered."""
    ordered = sorted(rows, key=lambda r: tuple(order_key(t) for t in r))
    return [[str(t) for t in r] for r in ordered]


class StandingQuery:
    """One registered subscription: a compiled goal plus dispatch state.

    ``rows`` is the dispatcher's cached answer set, maintained lazily: it
    is only populated (from the *previous* snapshot, which is always at
    hand) when a commit forces the evaluate-and-diff fallback, and kept
    current by applying each pushed diff — so a later fallback never
    diffs against a stale baseline.
    """

    __slots__ = (
        "sub_id", "session", "rule", "var_names", "preds",
        "start_version", "rows", "dropped",
    )

    def __init__(
        self,
        sub_id: int,
        session: "Session",
        rule: _CompiledRule,
        start_version: int,
    ) -> None:
        self.sub_id = sub_id
        self.session = session
        self.rule = rule
        self.var_names = tuple(v.name for v in rule.head.args)
        self.preds = frozenset(rule.deps)
        self.start_version = start_version
        self.rows: Optional[set[tuple[Term, ...]]] = None
        self.dropped = False


class _CommitContext:
    """Per-commit shared state: the two delta executors.

    All standing queries of one dispatch share one adds-executor (delta
    relations = the commit's added atoms, base relations = the new
    snapshot) and one dels-executor (deleted atoms over the old
    snapshot); each query's pinned Scan reads only its own predicate from
    the delta side.
    """

    def __init__(
        self, mgr: "SubscriptionManager", prev: ModelSnapshot,
        snap: ModelSnapshot, changes: ModelChanges,
    ) -> None:
        self._mgr = mgr
        self.prev = prev
        self.snap = snap
        self.changes = changes
        self._adds_exec: Optional[object] = None
        self._dels_exec: Optional[object] = None
        self._built_adds = False
        self._built_dels = False

    def adds_executor(self):
        if not self._built_adds:
            self._built_adds = True
            self._adds_exec = self._mgr._delta_executor(
                self.snap, self.changes.adds
            )
        return self._adds_exec

    def dels_executor(self):
        if not self._built_dels:
            self._built_dels = True
            self._dels_exec = self._mgr._delta_executor(
                self.prev, self.changes.dels
            )
        return self._dels_exec


class SubscriptionManager:
    """The service's standing-query registry and diff dispatcher."""

    def __init__(self, service: "QueryService") -> None:
        self.service = service
        self._model: VersionedModel = service.model
        self._cond = threading.Condition(threading.Lock())
        self._queue: list[ModelSnapshot] = []
        self._subs: dict[int, StandingQuery] = {}
        self._by_session: dict[int, set[int]] = {}
        self._ids = itertools.count(1)
        self._attached = False
        self._thread: Optional[threading.Thread] = None
        self._stop = False
        #: Last version the dispatcher finished (tests/benchmarks barrier).
        self._processed = 0
        #: Dispatcher-only: the previous snapshot (the diff baseline).
        self._prev: Optional[ModelSnapshot] = None
        #: Dispatcher-thread counters (never shared with session stats).
        self._solver_stats = SolverStats()
        self._exec_stats = ExecStats()

    # -- registration ------------------------------------------------------------

    def subscribe(
        self, session: "Session", rule: _CompiledRule
    ) -> tuple[int, ModelSnapshot]:
        """Register a standing query; returns its id and the baseline
        snapshot (the caller evaluates the initial answer set there).

        Runs under the model's write lock so the baseline version and the
        first dispatched diff are gap-free: every version published after
        the baseline reaches the subscription exactly once.
        """
        while True:
            model = self._model
            with model.lock:
                if model is not self._model:
                    continue  # retargeted mid-subscribe (follower re-seed)
                self._attach_locked(model)
                snap = model.current
                with self._cond:
                    sub_id = next(self._ids)
                    sq = StandingQuery(sub_id, session, rule, snap.version)
                    self._subs[sub_id] = sq
                    self._by_session.setdefault(
                        session.session_id, set()
                    ).add(sub_id)
                break
        self._ensure_thread()
        return sub_id, snap

    def unsubscribe(self, session: "Session", sub_id: int) -> bool:
        """Remove one of ``session``'s subscriptions; False if unknown."""
        with self._cond:
            sq = self._subs.get(sub_id)
            if sq is None or sq.session is not session:
                return False
            sq.dropped = True
            del self._subs[sub_id]
            ids = self._by_session.get(session.session_id)
            if ids is not None:
                ids.discard(sub_id)
                if not ids:
                    del self._by_session[session.session_id]
            return True

    def drop_session(self, session: "Session") -> None:
        """Forget every subscription of a closing session."""
        with self._cond:
            for sub_id in self._by_session.pop(session.session_id, ()):
                sq = self._subs.pop(sub_id, None)
                if sq is not None:
                    sq.dropped = True

    def session_subs(self, session: "Session") -> list[int]:
        with self._cond:
            return sorted(self._by_session.get(session.session_id, ()))

    def active_count(self) -> int:
        with self._cond:
            return len(self._subs)

    # -- lifecycle ---------------------------------------------------------------

    def retarget(self, model: VersionedModel) -> None:
        """Follow a replacement model (follower snapshot re-seed).

        Listeners move to the new model and its current snapshot is
        force-enqueued: subscribers get one catch-up diff spanning the
        jump from their last observed version to the re-seeded state
        (computed by the evaluate-and-diff path — both snapshots remain
        valid objects even though they come from different models).
        """
        with self._cond:
            old = self._model if self._attached else None
            attached = self._attached
        if old is not None and old is not model:
            old.remove_version_listener(self._on_publish)
        with model.lock:
            if attached and old is not model:
                model.add_version_listener(self._on_publish)
            snap = model.current
            with self._cond:
                self._model = model
                if attached:
                    self._queue.append(snap)
                    self._cond.notify_all()

    def stop(self) -> None:
        with self._cond:
            self._stop = True
            self._cond.notify_all()
            attached, model = self._attached, self._model
            self._attached = False
        if attached:
            model.remove_version_listener(self._on_publish)
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)

    def wait_caught_up(
        self, version: int, timeout: float = 10.0
    ) -> bool:
        """Block until the dispatcher has processed ``version`` (a barrier
        for tests and benchmarks; parks on the condition, no polling)."""
        deadline = time.monotonic() + max(0.0, timeout)
        with self._cond:
            while self._processed < version:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True

    # -- internals: registration plumbing ----------------------------------------

    def _attach_locked(self, model: VersionedModel) -> None:
        """Caller holds ``model.lock``."""
        if self._attached:
            return
        model.add_version_listener(self._on_publish)
        with self._cond:
            self._attached = True
            self._prev = model.current
            # The baseline is processed by definition (there is nothing
            # to dispatch at or before it): callers of wait_caught_up
            # must not block when no commit has happened yet.
            if self._prev.version > self._processed:
                self._processed = self._prev.version
                self._cond.notify_all()

    def _on_publish(self, snap: ModelSnapshot) -> None:
        # Runs on the writer thread under the model's write lock: hand the
        # immutable snapshot to the dispatcher and return immediately.
        with self._cond:
            self._queue.append(snap)
            self._cond.notify_all()

    def _ensure_thread(self) -> None:
        with self._cond:
            if self._thread is not None and self._thread.is_alive():
                return
            self._thread = threading.Thread(
                target=self._run, name="lps-subscriptions", daemon=True
            )
            self._thread.start()

    # -- internals: the dispatcher -----------------------------------------------

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stop:
                    self._cond.wait()
                if self._stop:
                    return
                snap = self._queue.pop(0)
                subs = list(self._subs.values())
            prev = self._prev
            if prev is not None and snap.version > prev.version:
                self._dispatch(prev, snap, subs)
            self._prev = snap
            with self._cond:
                if snap.version > self._processed:
                    self._processed = snap.version
                self._cond.notify_all()

    def _dispatch(
        self,
        prev: ModelSnapshot,
        snap: ModelSnapshot,
        subs: list[StandingQuery],
    ) -> None:
        report = snap.report
        changes = report.changes if report is not None else None
        ctx = (
            _CommitContext(self, prev, snap, changes)
            if changes is not None else None
        )
        for sq in subs:
            if sq.dropped or snap.version <= sq.start_version:
                continue
            try:
                diff = self._diff(sq, prev, snap, changes, ctx)
            except Exception as exc:
                self._drop(sq, f"error: {exc}", snap.version)
                continue
            if diff is None:
                continue
            adds, dels = diff
            if adds or dels:
                self._deliver(sq, snap.version, adds, dels)

    def diff(
        self,
        sq: StandingQuery,
        prev: ModelSnapshot,
        snap: ModelSnapshot,
    ) -> tuple[set[tuple[Term, ...]], set[tuple[Term, ...]]]:
        """The exact answer-set diff of one standing query between two
        snapshots (synchronous; the benchmark calls this directly)."""
        report = snap.report
        changes = report.changes if report is not None else None
        ctx = (
            _CommitContext(self, prev, snap, changes)
            if changes is not None else None
        )
        out = self._diff(sq, prev, snap, changes, ctx)
        return out if out is not None else (set(), set())

    def _diff(
        self,
        sq: StandingQuery,
        prev: ModelSnapshot,
        snap: ModelSnapshot,
        changes: Optional[ModelChanges],
        ctx: Optional[_CommitContext],
    ) -> Optional[tuple[set, set]]:
        if changes is not None:
            if not changes.touches(sq.preds):
                return None  # untouched: the answer set cannot have moved
            if sq.rule.delta_capable:
                try:
                    adds, dels = self._delta_diff(sq, prev, snap, changes, ctx)
                except Exception:
                    # The delta fragment misbehaved (e.g. a builtin left
                    # unbound by the pinned ordering); the fallback below
                    # is always available and bit-identical.
                    pass
                else:
                    if sq.rows is not None:
                        sq.rows = (sq.rows - dels) | adds
                    return adds, dels
        # Evaluate-and-diff fallback: non-delta-capable goals and program
        # replacements (which publish no per-predicate delta).
        old_rows = (
            sq.rows if sq.rows is not None else self._eval_rows(sq.rule, prev)
        )
        new_rows = self._eval_rows(sq.rule, snap)
        sq.rows = new_rows
        return new_rows - old_rows, old_rows - new_rows

    def _delta_diff(
        self,
        sq: StandingQuery,
        prev: ModelSnapshot,
        snap: ModelSnapshot,
        changes: ModelChanges,
        ctx: _CommitContext,
    ) -> tuple[set, set]:
        rule = sq.rule
        new_interp = snap.interpretation
        old_interp = prev.interpretation
        cand_add: set[tuple[Term, ...]] = set()
        cand_del: set[tuple[Term, ...]] = set()
        for i, pin_atom in enumerate(rule.relational):
            added = changes.adds.get(pin_atom.pred)
            if added:
                cand_add |= self._pinned_rows(
                    rule, i, ctx.adds_executor(), new_interp, added
                )
            deleted = changes.dels.get(pin_atom.pred)
            if deleted:
                cand_del |= self._pinned_rows(
                    rule, i, ctx.dels_executor(), old_interp, deleted
                )
        # Exactness probes: alternative derivations on the opposite side
        # disqualify a candidate (it was already — or still is — an answer).
        adds = {
            r for r in cand_add if not self._derivable(rule, r, old_interp)
        }
        dels = {
            r for r in cand_del if not self._derivable(rule, r, new_interp)
        }
        return adds, dels

    def _pinned_rows(
        self,
        rule: _CompiledRule,
        pin: int,
        executor,
        interp,
        facts,
    ) -> set[tuple[Term, ...]]:
        """Answers of the delta variant with occurrence ``pin`` restricted
        to ``facts``: plan path when it applies, tuple solver otherwise."""
        options = self._model.options
        if executor is not None:
            heads = rule.derive_delta_via_plan(
                executor, pin, options.plan_joins
            )
            if heads is not None:
                return {h.args for h in heads}
        pin_atom = rule.relational[pin]
        rest, rest_fv = rule._delta_rest(pin)
        solver = self._solver(interp)
        head_vars = rule.head.args
        out: set[tuple[Term, ...]] = set()
        for f in facts:
            for env0 in match_atom(pin_atom, f):
                for env in solver.solve(rest, env0, fv=rest_fv):
                    out.add(tuple(env.apply(v) for v in head_vars))
        return out

    def _derivable(
        self, rule: _CompiledRule, row: tuple[Term, ...], interp
    ) -> bool:
        solver = self._solver(interp)
        env0 = Subst._make(dict(zip(rule.head.args, row)))
        for _ in solver.solve(rule.body, env0):
            return True
        return False

    def _delta_executor(self, snap: ModelSnapshot, delta):
        options = self._model.options
        if not options.compile_plans or not delta:
            return None
        return make_executor(
            snap.interpretation,
            self._model.builtins,
            delta=dict(delta),
            use_indexes=options.use_indexes,
            stats=self._exec_stats,
            columnar=options.columnar,
        )

    def _eval_rows(
        self, rule: _CompiledRule, snap: ModelSnapshot
    ) -> set[tuple[Term, ...]]:
        options = self._model.options
        interp = snap.interpretation
        if options.compile_plans:
            executor = make_executor(
                interp,
                self._model.builtins,
                use_indexes=options.use_indexes,
                stats=self._exec_stats,
                columnar=options.columnar,
            )
            heads = rule.derive_via_plan(executor, options.plan_joins)
            if heads is not None:
                return {h.args for h in heads}
        solver = self._solver(interp)
        head_vars = rule.head.args
        return {
            tuple(env.apply(v) for v in head_vars)
            for env in solver.solve(rule.body)
        }

    def _solver(self, interp) -> Solver:
        options = self._model.options
        return Solver(
            interp,
            ActiveDomain(),
            self._model.builtins,
            allow_fallback=False,
            stats=self._solver_stats,
            use_indexes=options.use_indexes,
            plan_joins=options.plan_joins,
        )

    # -- internals: delivery -----------------------------------------------------

    def _deliver(
        self, sq: StandingQuery, version: int, adds: set, dels: set
    ) -> None:
        frame = {
            "kind": FRAME_DIFF,
            "sub": sq.sub_id,
            "version": version,
            "vars": list(sq.var_names),
            "adds": render_rows(adds),
            "dels": render_rows(dels),
        }
        if not sq.session.push_frame(frame):
            if sq.session.closed:
                self._forget(sq)
            else:
                self._drop(sq, REASON_SLOW, version)

    def _drop(self, sq: StandingQuery, reason: str, version: int) -> None:
        """Cancel a subscription server-side; the final forced frame tells
        the client to re-subscribe (mirroring the replication hub's
        slow-consumer policy)."""
        self._forget(sq)
        sq.session.push_frame(
            {
                "kind": FRAME_DROPPED,
                "sub": sq.sub_id,
                "version": version,
                "reason": reason,
            },
            force=True,
        )

    def _forget(self, sq: StandingQuery) -> None:
        with self._cond:
            sq.dropped = True
            self._subs.pop(sq.sub_id, None)
            ids = self._by_session.get(sq.session.session_id)
            if ids is not None:
                ids.discard(sq.sub_id)
                if not ids:
                    del self._by_session[sq.session.session_id]
