"""Line-oriented TCP protocol: the REPL grammar over asyncio streams.

Wire format — deliberately minimal so any language can speak it:

* **Request:** one UTF-8 line, exactly what you would type at the REPL
  (``?- path(a, X).``, ``+edge(a, b).``, ``-edge(a, b).``, ``:stats``,
  ``:begin`` / ``:commit`` / ``:abort``, ``:at 3``, ``:version``,
  ``:sync N``, ``:role``, ``:promote``, or a program clause).  ``:quit``
  ends the connection.
* **Response:** one JSON line (:meth:`Response.to_json`): ``{"ok": …,
  "kind": …, "data": …, "version": …, "error": …, "code": …}``.
* **Replication:** ``:repl from N`` switches the connection into WAL
  shipping — the server streams :mod:`repro.storage.codec` record frames
  and reads ``:ack N`` lines back (see :mod:`repro.replication.hub`).

Each connection owns one :class:`~repro.server.session.Session`; request
handling is pushed onto the service's thread pool so a long query never
stalls the event loop, while the session itself guarantees snapshot
isolation.  A dropped connection closes the session — pending batches are
discarded, pinned versions released, and the shared model is untouched.

**Graceful shutdown.**  :meth:`ServerHandle.stop` stops accepting, lets
every in-flight request finish and deliver its response, then sends each
surviving connection one structured ``server_closing`` response before
closing it — a client mid-request never sees its acknowledged work
vanish into a reset socket.

:func:`run_in_thread` hosts the asyncio server on a daemon thread and
returns the bound address — how the tests, the benchmark and the demo
drive a real socket server in-process.  :class:`LineClient` is a minimal
blocking client for those callers; with ``max_attempts > 1`` it
reconnects on connection failure with exponential backoff plus jitter.
"""

from __future__ import annotations

import asyncio
import random
import socket
import threading
import time
from typing import Optional

from .service import QueryService
from .session import E_CLOSING, Response

#: Requests longer than this are refused (also bounds the reader buffer).
MAX_LINE_BYTES = 1 << 20


class Backoff:
    """Exponential backoff with full jitter (shared by clients/followers).

    Delays grow ``initial * factor**n`` capped at ``maximum``; each delay
    is drawn uniformly from ``[delay/2, delay]`` so a herd of reconnecting
    clients does not resynchronize on the failed endpoint.
    """

    def __init__(
        self,
        initial: float = 0.05,
        maximum: float = 2.0,
        factor: float = 2.0,
    ) -> None:
        self.initial = initial
        self.maximum = maximum
        self.factor = factor
        self._attempt = 0

    def reset(self) -> None:
        self._attempt = 0

    def next_delay(self) -> float:
        delay = min(
            self.maximum, self.initial * (self.factor ** self._attempt)
        )
        self._attempt += 1
        return delay * (0.5 + 0.5 * random.random())


class _ServerState:
    """Live-connection registry backing the graceful drain shutdown."""

    def __init__(self, loop: asyncio.AbstractEventLoop) -> None:
        self.loop = loop
        self.closing = False
        self._waiters: set[asyncio.Future] = set()
        self._active = 0
        #: Set (from the loop thread) once closing is underway and every
        #: connection handler has exited — the drain barrier stop() waits
        #: on from the caller's thread.
        self.drained = threading.Event()

    def register(self) -> asyncio.Future:
        waiter = self.loop.create_future()
        self._waiters.add(waiter)
        self._active += 1
        return waiter

    def unregister(self, waiter: asyncio.Future) -> None:
        self._waiters.discard(waiter)
        self._active -= 1
        if self.closing and self._active <= 0:
            self.drained.set()

    def begin_close(self) -> None:
        """Loop thread only: flag shutdown and wake idle readers."""
        self.closing = True
        for waiter in list(self._waiters):
            if not waiter.done():
                waiter.set_result(None)
        if self._active <= 0:
            self.drained.set()


async def _send_closing(writer: asyncio.StreamWriter) -> None:
    payload = Response.failure(
        E_CLOSING, "server is shutting down"
    )
    try:
        writer.write(payload.to_json().encode() + b"\n")
        await writer.drain()
    except (ConnectionError, OSError):
        pass


async def handle_connection(
    service: QueryService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    state: Optional[_ServerState] = None,
) -> None:
    """Serve one client connection: a session for the connection's life."""
    session = service.open_session()
    loop = asyncio.get_running_loop()
    waiter = state.register() if state is not None else None
    try:
        while True:
            if state is not None and state.closing:
                await _send_closing(writer)
                break
            read_task = asyncio.ensure_future(reader.readline())
            try:
                if waiter is not None:
                    await asyncio.wait(
                        {read_task, waiter},
                        return_when=asyncio.FIRST_COMPLETED,
                    )
                    if not read_task.done():
                        # Shutdown arrived while this connection was idle.
                        read_task.cancel()
                        try:
                            await read_task
                        except (asyncio.CancelledError, Exception):
                            pass
                        await _send_closing(writer)
                        break
                raw = await read_task
            except (asyncio.LimitOverrunError, ValueError):
                payload = Response.failure(
                    "line_too_long",
                    f"request exceeds {MAX_LINE_BYTES} bytes",
                )
                writer.write(payload.to_json().encode() + b"\n")
                await writer.drain()
                break
            if not raw:
                break                      # EOF: client went away
            line = raw.decode("utf-8", errors="replace").strip()
            if line in (":quit", ":q"):
                writer.write(
                    Response(ok=True, kind="bye").to_json().encode() + b"\n"
                )
                await writer.drain()
                break
            if line == ":repl" or line.startswith(":repl "):
                hub = getattr(service, "hub", None)
                if hub is None:
                    payload = Response.failure(
                        "repl_unavailable",
                        "replication is not enabled on this server",
                    )
                    writer.write(payload.to_json().encode() + b"\n")
                    await writer.drain()
                    continue
                # The connection is dedicated to WAL shipping from here.
                await hub.serve_subscriber(
                    line, reader, writer, shutdown=waiter
                )
                break
            # Session work runs on the service pool: parsing and query
            # evaluation are CPU-bound and must not block the event loop.
            response = await loop.run_in_executor(
                service._pool, session.execute, line
            )
            writer.write(response.to_json().encode() + b"\n")
            await writer.drain()
    except ConnectionError:
        pass                               # mid-session disconnect
    finally:
        if state is not None:
            state.unregister(waiter)
        session.close()                    # discards pending, releases pins
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, asyncio.CancelledError):
            pass                           # forced teardown mid-close


async def serve(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 0,
    state: Optional[_ServerState] = None,
) -> asyncio.base_events.Server:
    """Start the asyncio server; ``port=0`` binds an ephemeral port."""
    return await asyncio.start_server(
        lambda r, w: handle_connection(service, r, w, state),
        host,
        port,
        limit=MAX_LINE_BYTES,
    )


class ServerHandle:
    """A server running on a background thread: address + clean shutdown."""

    def __init__(self, host: str, port: int, stop) -> None:
        self.host = host
        self.port = port
        self._stop = stop

    @property
    def addr(self) -> str:
        return f"{self.host}:{self.port}"

    def stop(self) -> None:
        self._stop()

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def run_in_thread(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 0,
    start_timeout: float = 10.0,
    stop_timeout: float = 10.0,
) -> ServerHandle:
    """Host the protocol server on a daemon thread; returns its address.

    ``stop()`` drains gracefully: accepting stops immediately, in-flight
    requests run to completion (bounded by ``stop_timeout``) and every
    idle connection receives a ``server_closing`` response before the
    loop is torn down.
    """
    started = threading.Event()
    box: dict = {}

    def runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)

        async def main() -> None:
            state = _ServerState(asyncio.get_running_loop())
            server = await serve(service, host, port, state=state)
            box["addr"] = server.sockets[0].getsockname()[:2]
            box["loop"] = loop
            box["server"] = server
            box["state"] = state
            started.set()
            async with server:
                await server.serve_forever()

        try:
            loop.run_until_complete(main())
        except asyncio.CancelledError:
            pass
        finally:
            # Let cancelled handlers run their cleanup before the loop
            # goes away — otherwise teardown leaks "task was destroyed
            # but it is pending" noise on busy shutdowns.
            pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    thread = threading.Thread(
        target=runner, name="lps-server", daemon=True
    )
    thread.start()
    if not started.wait(timeout=start_timeout):
        raise RuntimeError(
            f"server failed to start within {start_timeout:g}s"
        )
    bound_host, bound_port = box["addr"]
    loop: asyncio.AbstractEventLoop = box["loop"]
    state: _ServerState = box["state"]
    stopped = threading.Event()

    def stop() -> None:
        if stopped.is_set():
            return
        stopped.set()

        def _begin() -> None:
            box["server"].close()
            state.begin_close()

        def _finish() -> None:
            for task in asyncio.all_tasks(loop):
                task.cancel()

        if loop.is_running():
            loop.call_soon_threadsafe(_begin)
            state.drained.wait(timeout=stop_timeout)
            if loop.is_running():
                loop.call_soon_threadsafe(_finish)
        thread.join(timeout=stop_timeout)

    return ServerHandle(bound_host, bound_port, stop)


class LineClient:
    """A minimal blocking client for the line protocol (tests/benchmarks).

    Not thread-safe: give each client thread its own connection, exactly
    as a real deployment would.

    ``max_attempts=1`` (the default) preserves the historical behavior —
    any socket failure raises immediately.  With ``max_attempts > 1`` a
    failed connect or send tears the socket down and retries on a fresh
    connection under exponential backoff with jitter.  Note the retry
    semantics: a request whose response was lost mid-flight may have been
    applied — safe for this protocol's reads and for fact deltas (set
    operations are idempotent), but the knob stays opt-in.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        max_attempts: int = 1,
        backoff_initial: float = 0.05,
        backoff_max: float = 2.0,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_attempts = max_attempts
        self._backoff = Backoff(backoff_initial, backoff_max)
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._connect()

    def _connect(self) -> None:
        last_exc: Optional[Exception] = None
        for attempt in range(self.max_attempts):
            if attempt:
                time.sleep(self._backoff.next_delay())
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
                self._file = self._sock.makefile("rwb")
                self._backoff.reset()
                return
            except OSError as exc:
                last_exc = exc
                self._teardown()
        raise ConnectionError(
            f"could not connect to {self.host}:{self.port} after "
            f"{self.max_attempts} attempt(s): {last_exc}"
        )

    def _teardown(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def send(self, line: str) -> Response:
        last_exc: Optional[Exception] = None
        for attempt in range(self.max_attempts):
            if self._file is None:
                try:
                    self._connect()
                except ConnectionError as exc:
                    last_exc = exc
                    continue
            try:
                return self._send_once(line)
            except (ConnectionError, OSError) as exc:
                last_exc = exc
                self._teardown()
                if attempt + 1 < self.max_attempts:
                    time.sleep(self._backoff.next_delay())
        raise ConnectionError(
            f"request failed after {self.max_attempts} attempt(s): "
            f"{last_exc}"
        )

    def _send_once(self, line: str) -> Response:
        self._file.write(line.encode() + b"\n")
        self._file.flush()
        raw = self._file.readline()
        if not raw:
            raise ConnectionError("server closed the connection")
        response = Response.from_json(raw.decode())
        if response.code == E_CLOSING:
            # A graceful-shutdown notice, possibly buffered before our
            # request was even written: the connection is dying, not
            # answering.  Surface it as a connection failure so the
            # bounded-reconnect path retries against the replacement.
            raise ConnectionError("server is shutting down")
        return response

    def query(self, goal: str) -> Response:
        return self.send(f"?- {goal.rstrip('.')}.")

    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "LineClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
