"""Line-oriented TCP protocol: the REPL grammar over asyncio streams.

Wire format — deliberately minimal so any language can speak it:

* **Request:** one UTF-8 line, exactly what you would type at the REPL
  (``?- path(a, X).``, ``+edge(a, b).``, ``-edge(a, b).``, ``:stats``,
  ``:begin`` / ``:commit`` / ``:abort``, ``:at 3``, ``:version``,
  ``:sync N``, ``:role``, ``:promote``, or a program clause).  ``:quit``
  ends the connection.
* **Response:** one JSON line (:meth:`Response.to_json`): ``{"ok": …,
  "kind": …, "data": …, "version": …, "error": …, "code": …}``.
* **Replication:** ``:repl from N`` switches the connection into WAL
  shipping — the server streams :mod:`repro.storage.codec` record frames
  and reads ``:ack N`` lines back (see :mod:`repro.replication.hub`).
* **Subscription pushes:** after ``:subscribe goal.`` the server
  interleaves asynchronous ``diff`` / ``sub_dropped`` frames (ordinary
  ``Response`` JSON lines) with request/reply traffic.  Push frames are
  only ever written while the connection is idle — between a response
  and the next request — so a client reads its reply by skipping (and
  stashing) any push-kind frames that arrive first; :class:`LineClient`
  does exactly that.

Each connection owns one :class:`~repro.server.session.Session`; request
handling is pushed onto the service's thread pool so a long query never
stalls the event loop, while the session itself guarantees snapshot
isolation.  A dropped connection closes the session — pending batches are
discarded, pinned versions released, and the shared model is untouched.

**Graceful shutdown.**  :meth:`ServerHandle.stop` stops accepting, lets
every in-flight request finish and deliver its response, then sends each
surviving connection one structured ``server_closing`` response before
closing it — a client mid-request never sees its acknowledged work
vanish into a reset socket.

:func:`run_in_thread` hosts the asyncio server on a daemon thread and
returns the bound address — how the tests, the benchmark and the demo
drive a real socket server in-process.  :class:`LineClient` is a minimal
blocking client for those callers; with ``max_attempts > 1`` it
reconnects on connection failure with exponential backoff plus jitter.
"""

from __future__ import annotations

import asyncio
import random
import socket
import threading
import time
from typing import Optional

from .service import QueryService
from .session import E_CLOSING, Response
from .subscriptions import FRAME_DIFF, FRAME_DROPPED

#: Requests longer than this are refused (also bounds the reader buffer).
MAX_LINE_BYTES = 1 << 20

#: Response kinds a server sends without a matching request.
PUSH_KINDS = frozenset({FRAME_DIFF, FRAME_DROPPED})


class Backoff:
    """Exponential backoff with full jitter (shared by clients/followers).

    Delays grow ``initial * factor**n`` capped at ``maximum``; each delay
    is drawn uniformly from ``[delay/2, delay]`` so a herd of reconnecting
    clients does not resynchronize on the failed endpoint.
    """

    def __init__(
        self,
        initial: float = 0.05,
        maximum: float = 2.0,
        factor: float = 2.0,
    ) -> None:
        self.initial = initial
        self.maximum = maximum
        self.factor = factor
        self._attempt = 0

    def reset(self) -> None:
        self._attempt = 0

    def next_delay(self) -> float:
        delay = min(
            self.maximum, self.initial * (self.factor ** self._attempt)
        )
        self._attempt += 1
        return delay * (0.5 + 0.5 * random.random())


class _ServerState:
    """Live-connection registry backing the graceful drain shutdown."""

    def __init__(self, loop: asyncio.AbstractEventLoop) -> None:
        self.loop = loop
        self.closing = False
        self._waiters: set[asyncio.Future] = set()
        self._active = 0
        #: Set (from the loop thread) once closing is underway and every
        #: connection handler has exited — the drain barrier stop() waits
        #: on from the caller's thread.
        self.drained = threading.Event()
        #: Loop-side twin of ``drained``: ``Server.close()`` cancels
        #: ``serve_forever`` immediately, so the runner must park on
        #: this future to keep the loop alive while handlers deliver
        #: their ``server_closing`` responses — otherwise teardown
        #: cancels them mid-send and idle clients read EOF.
        self._drained_fut = loop.create_future()

    def register(self) -> asyncio.Future:
        waiter = self.loop.create_future()
        self._waiters.add(waiter)
        self._active += 1
        return waiter

    def unregister(self, waiter: asyncio.Future) -> None:
        self._waiters.discard(waiter)
        self._active -= 1
        if self.closing and self._active <= 0:
            self._mark_drained()

    def begin_close(self) -> None:
        """Loop thread only: flag shutdown and wake idle readers."""
        self.closing = True
        for waiter in list(self._waiters):
            if not waiter.done():
                waiter.set_result(None)
        if self._active <= 0:
            self._mark_drained()

    def _mark_drained(self) -> None:
        self.drained.set()
        if not self._drained_fut.done():
            self._drained_fut.set_result(None)

    async def wait_drained(self) -> None:
        await self._drained_fut


async def _send_closing(writer: asyncio.StreamWriter) -> None:
    payload = Response.failure(
        E_CLOSING, "server is shutting down"
    )
    try:
        writer.write(payload.to_json().encode() + b"\n")
        await writer.drain()
    except (ConnectionError, OSError):
        pass


def _push_payload(frame: dict) -> Response:
    return Response(
        ok=True,
        kind=frame.get("kind", FRAME_DIFF),
        data=frame,
        version=frame.get("version"),
    )


async def _flush_pushes(
    session, writer: asyncio.StreamWriter, push_event: asyncio.Event
) -> None:
    """Write every queued subscription frame (connection-idle only)."""
    push_event.clear()
    frames = session.take_push_frames()
    if not frames:
        return
    for frame in frames:
        writer.write(_push_payload(frame).to_json().encode() + b"\n")
    await writer.drain()


async def handle_connection(
    service: QueryService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    state: Optional[_ServerState] = None,
) -> None:
    """Serve one client connection: a session for the connection's life."""
    session = service.open_session()
    loop = asyncio.get_running_loop()
    waiter = state.register() if state is not None else None
    # Subscription frames land in the session's bounded queue from the
    # dispatcher thread; the event hops them onto this loop so the idle
    # connection wakes and flushes without polling.
    push_event = asyncio.Event()
    session.on_push = lambda: loop.call_soon_threadsafe(push_event.set)
    #: The in-flight readline, persistent across loop iterations: a push
    #: wake-up must not cancel (and thereby lose) a partial request.
    read_task: Optional[asyncio.Future] = None
    try:
        while True:
            if state is not None and state.closing:
                await _send_closing(writer)
                break
            # Deliver queued push frames while the line is idle — frames
            # only ever appear between a response and the next request,
            # so replies stay unambiguous for naive clients.
            await _flush_pushes(session, writer, push_event)
            if read_task is None:
                read_task = asyncio.ensure_future(reader.readline())
            push_wait = asyncio.ensure_future(push_event.wait())
            waits = {read_task, push_wait}
            if waiter is not None:
                waits.add(waiter)
            try:
                await asyncio.wait(
                    waits, return_when=asyncio.FIRST_COMPLETED
                )
            finally:
                if not push_wait.done():
                    push_wait.cancel()
                    try:
                        await push_wait
                    except asyncio.CancelledError:
                        pass
            if waiter is not None and waiter.done() \
                    and not read_task.done():
                # Shutdown arrived while this connection was idle.
                read_task.cancel()
                try:
                    await read_task
                except (asyncio.CancelledError, Exception):
                    pass
                read_task = None
                await _send_closing(writer)
                break
            if not read_task.done():
                continue                   # woken by a push; flush above
            try:
                raw = read_task.result()
            except (asyncio.LimitOverrunError, ValueError):
                payload = Response.failure(
                    "line_too_long",
                    f"request exceeds {MAX_LINE_BYTES} bytes",
                )
                writer.write(payload.to_json().encode() + b"\n")
                await writer.drain()
                break
            finally:
                read_task = None
            if not raw:
                break                      # EOF: client went away
            line = raw.decode("utf-8", errors="replace").strip()
            if line in (":quit", ":q"):
                writer.write(
                    Response(ok=True, kind="bye").to_json().encode() + b"\n"
                )
                await writer.drain()
                break
            if line == ":repl" or line.startswith(":repl "):
                hub = getattr(service, "hub", None)
                if hub is None:
                    payload = Response.failure(
                        "repl_unavailable",
                        "replication is not enabled on this server",
                    )
                    writer.write(payload.to_json().encode() + b"\n")
                    await writer.drain()
                    continue
                # The connection is dedicated to WAL shipping from here.
                await hub.serve_subscriber(
                    line, reader, writer, shutdown=waiter
                )
                break
            # Session work runs on the service pool: parsing and query
            # evaluation are CPU-bound and must not block the event loop.
            # Blocking waits (:sync) go to the dedicated waiter pool so
            # parked clients never pin query workers.
            response = await loop.run_in_executor(
                service.executor_for(line), session.execute, line
            )
            writer.write(response.to_json().encode() + b"\n")
            await writer.drain()
    except ConnectionError:
        pass                               # mid-session disconnect
    finally:
        session.on_push = None
        if read_task is not None and not read_task.done():
            read_task.cancel()
            try:
                await read_task
            except (asyncio.CancelledError, Exception):
                pass
        if state is not None:
            state.unregister(waiter)
        session.close()                    # discards pending, releases pins
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, asyncio.CancelledError):
            pass                           # forced teardown mid-close


async def serve(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 0,
    state: Optional[_ServerState] = None,
) -> asyncio.base_events.Server:
    """Start the asyncio server; ``port=0`` binds an ephemeral port."""
    return await asyncio.start_server(
        lambda r, w: handle_connection(service, r, w, state),
        host,
        port,
        limit=MAX_LINE_BYTES,
    )


class ServerHandle:
    """A server running on a background thread: address + clean shutdown."""

    def __init__(self, host: str, port: int, stop) -> None:
        self.host = host
        self.port = port
        self._stop = stop

    @property
    def addr(self) -> str:
        return f"{self.host}:{self.port}"

    def stop(self) -> None:
        self._stop()

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def run_in_thread(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 0,
    start_timeout: float = 10.0,
    stop_timeout: float = 10.0,
) -> ServerHandle:
    """Host the protocol server on a daemon thread; returns its address.

    ``stop()`` drains gracefully: accepting stops immediately, in-flight
    requests run to completion (bounded by ``stop_timeout``) and every
    idle connection receives a ``server_closing`` response before the
    loop is torn down.
    """
    started = threading.Event()
    box: dict = {}

    def runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)

        async def main() -> None:
            state = _ServerState(asyncio.get_running_loop())
            server = await serve(service, host, port, state=state)
            box["addr"] = server.sockets[0].getsockname()[:2]
            box["loop"] = loop
            box["server"] = server
            box["state"] = state
            started.set()
            try:
                async with server:
                    await server.serve_forever()
            except asyncio.CancelledError:
                pass
            # stop()'s server.close() cancels serve_forever at once;
            # hold the loop open until every connection handler has
            # unregistered (closing responses sent), else the teardown
            # below cancels them mid-send.  A stuck handler is bounded
            # by stop()'s _finish, which cancels this wait too.
            await state.wait_drained()

        try:
            loop.run_until_complete(main())
        except asyncio.CancelledError:
            pass
        finally:
            # Let cancelled handlers run their cleanup before the loop
            # goes away — otherwise teardown leaks "task was destroyed
            # but it is pending" noise on busy shutdowns.
            pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    thread = threading.Thread(
        target=runner, name="lps-server", daemon=True
    )
    thread.start()
    if not started.wait(timeout=start_timeout):
        raise RuntimeError(
            f"server failed to start within {start_timeout:g}s"
        )
    bound_host, bound_port = box["addr"]
    loop: asyncio.AbstractEventLoop = box["loop"]
    state: _ServerState = box["state"]
    stopped = threading.Event()

    def stop() -> None:
        if stopped.is_set():
            return
        stopped.set()

        def _begin() -> None:
            box["server"].close()
            state.begin_close()

        def _finish() -> None:
            for task in asyncio.all_tasks(loop):
                task.cancel()

        if loop.is_running():
            loop.call_soon_threadsafe(_begin)
            state.drained.wait(timeout=stop_timeout)
            if loop.is_running():
                loop.call_soon_threadsafe(_finish)
        thread.join(timeout=stop_timeout)

    return ServerHandle(bound_host, bound_port, stop)


class LineClient:
    """A minimal blocking client for the line protocol (tests/benchmarks).

    Not thread-safe: give each client thread its own connection, exactly
    as a real deployment would.

    ``max_attempts=1`` (the default) preserves the historical behavior —
    any socket failure raises immediately.  With ``max_attempts > 1`` a
    failed connect or send tears the socket down and retries on a fresh
    connection under exponential backoff with jitter.  Note the retry
    semantics: a request whose response was lost mid-flight may have been
    applied — safe for this protocol's reads and for fact deltas (set
    operations are idempotent), but the knob stays opt-in.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        max_attempts: int = 1,
        backoff_initial: float = 0.05,
        backoff_max: float = 2.0,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_attempts = max_attempts
        self._backoff = Backoff(backoff_initial, backoff_max)
        #: Set by close(); wakes any reconnect backoff sleep immediately,
        #: so a closing client never sits out a full ``next_delay()``.
        self._closed = threading.Event()
        self._sock: Optional[socket.socket] = None
        self._file = None
        #: Asynchronous ``diff``/``sub_dropped`` frames read while waiting
        #: for a reply; drain via :meth:`take_pushes` / :meth:`recv_push`.
        self.pushes: list[Response] = []
        self._connect()

    def _connect(self) -> None:
        last_exc: Optional[Exception] = None
        for attempt in range(self.max_attempts):
            if attempt:
                self._backoff_sleep()
            if self._closed.is_set():
                raise ConnectionError("client closed during reconnect")
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
                self._file = self._sock.makefile("rwb")
                self._backoff.reset()
                return
            except OSError as exc:
                last_exc = exc
                self._teardown()
        raise ConnectionError(
            f"could not connect to {self.host}:{self.port} after "
            f"{self.max_attempts} attempt(s): {last_exc}"
        )

    def _backoff_sleep(self) -> None:
        """Wait out one backoff delay, returning early if close() fires.

        ``Event.wait`` instead of ``time.sleep``: a concurrent ``close()``
        wakes the sleeper immediately and the next loop iteration raises,
        so teardown latency is bounded by scheduling, not by the (up to
        seconds-long) jittered delay.
        """
        if self._closed.wait(self._backoff.next_delay()):
            raise ConnectionError("client closed during reconnect")

    def _teardown(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def send(self, line: str) -> Response:
        last_exc: Optional[Exception] = None
        for attempt in range(self.max_attempts):
            if self._file is None:
                try:
                    self._connect()
                except ConnectionError as exc:
                    last_exc = exc
                    continue
            try:
                return self._send_once(line)
            except (ConnectionError, OSError) as exc:
                last_exc = exc
                self._teardown()
                if attempt + 1 < self.max_attempts:
                    self._backoff_sleep()
        raise ConnectionError(
            f"request failed after {self.max_attempts} attempt(s): "
            f"{last_exc}"
        )

    def _send_once(self, line: str) -> Response:
        self._file.write(line.encode() + b"\n")
        self._file.flush()
        while True:
            response = self._read_response()
            if response.kind in PUSH_KINDS:
                # Push frames written while our request was in flight:
                # stash them; the reply is the next non-push line.
                self.pushes.append(response)
                continue
            return response

    def _read_response(self) -> Response:
        raw = self._file.readline()
        if not raw:
            raise ConnectionError("server closed the connection")
        response = Response.from_json(raw.decode())
        if response.code == E_CLOSING:
            # A graceful-shutdown notice, possibly buffered before our
            # request was even written: the connection is dying, not
            # answering.  Surface it as a connection failure so the
            # bounded-reconnect path retries against the replacement.
            raise ConnectionError("server is shutting down")
        return response

    def take_pushes(self) -> list[Response]:
        """Already-received push frames, oldest first (non-blocking)."""
        out, self.pushes = self.pushes, []
        return out

    def recv_push(self, timeout: Optional[float] = None) -> Optional[Response]:
        """Wait for one asynchronous push frame; ``None`` on timeout.

        Returns a stashed frame immediately when one is queued, otherwise
        blocks on the socket.  Must not race a concurrent :meth:`send`
        (the client is single-threaded by contract).
        """
        if self.pushes:
            return self.pushes.pop(0)
        if self._sock is None or self._file is None:
            raise ConnectionError("not connected")
        self._sock.settimeout(timeout if timeout is not None else self.timeout)
        try:
            response = self._read_response()
        except (socket.timeout, TimeoutError):
            return None
        finally:
            self._sock.settimeout(self.timeout)
        return response

    def query(self, goal: str) -> Response:
        return self.send(f"?- {goal.rstrip('.')}.")

    def close(self) -> None:
        self._closed.set()
        self._teardown()

    def __enter__(self) -> "LineClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
