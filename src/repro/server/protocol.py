"""Line-oriented TCP protocol: the REPL grammar over asyncio streams.

Wire format — deliberately minimal so any language can speak it:

* **Request:** one UTF-8 line, exactly what you would type at the REPL
  (``?- path(a, X).``, ``+edge(a, b).``, ``-edge(a, b).``, ``:stats``,
  ``:begin`` / ``:commit`` / ``:abort``, ``:at 3``, ``:version``, or a
  program clause).  ``:quit`` ends the connection.
* **Response:** one JSON line (:meth:`Response.to_json`): ``{"ok": …,
  "kind": …, "data": …, "version": …, "error": …, "code": …}``.

Each connection owns one :class:`~repro.server.session.Session`; request
handling is pushed onto the service's thread pool so a long query never
stalls the event loop, while the session itself guarantees snapshot
isolation.  A dropped connection closes the session — pending batches are
discarded, pinned versions released, and the shared model is untouched.

:func:`run_in_thread` hosts the asyncio server on a daemon thread and
returns the bound address — how the tests, the benchmark and the demo
drive a real socket server in-process.  :class:`LineClient` is a minimal
blocking client for those callers.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from typing import Optional

from .service import QueryService
from .session import Response

#: Requests longer than this are refused (also bounds the reader buffer).
MAX_LINE_BYTES = 1 << 20


async def handle_connection(
    service: QueryService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve one client connection: a session for the connection's life."""
    session = service.open_session()
    loop = asyncio.get_running_loop()
    try:
        while True:
            try:
                raw = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                payload = Response.failure(
                    "line_too_long",
                    f"request exceeds {MAX_LINE_BYTES} bytes",
                )
                writer.write(payload.to_json().encode() + b"\n")
                await writer.drain()
                break
            if not raw:
                break                      # EOF: client went away
            line = raw.decode("utf-8", errors="replace").strip()
            if line in (":quit", ":q"):
                writer.write(
                    Response(ok=True, kind="bye").to_json().encode() + b"\n"
                )
                await writer.drain()
                break
            # Session work runs on the service pool: parsing and query
            # evaluation are CPU-bound and must not block the event loop.
            response = await loop.run_in_executor(
                service._pool, session.execute, line
            )
            writer.write(response.to_json().encode() + b"\n")
            await writer.drain()
    except ConnectionError:
        pass                               # mid-session disconnect
    finally:
        session.close()                    # discards pending, releases pins
        try:
            writer.close()
            await writer.wait_closed()
        except ConnectionError:
            pass


async def serve(
    service: QueryService, host: str = "127.0.0.1", port: int = 0
) -> asyncio.base_events.Server:
    """Start the asyncio server; ``port=0`` binds an ephemeral port."""
    return await asyncio.start_server(
        lambda r, w: handle_connection(service, r, w),
        host,
        port,
        limit=MAX_LINE_BYTES,
    )


class ServerHandle:
    """A server running on a background thread: address + clean shutdown."""

    def __init__(self, host: str, port: int, stop) -> None:
        self.host = host
        self.port = port
        self._stop = stop

    def stop(self) -> None:
        self._stop()

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def run_in_thread(
    service: QueryService, host: str = "127.0.0.1", port: int = 0
) -> ServerHandle:
    """Host the protocol server on a daemon thread; returns its address."""
    started = threading.Event()
    box: dict = {}

    def runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)

        async def main() -> None:
            server = await serve(service, host, port)
            box["addr"] = server.sockets[0].getsockname()[:2]
            box["loop"] = loop
            box["server"] = server
            started.set()
            async with server:
                await server.serve_forever()

        try:
            loop.run_until_complete(main())
        except asyncio.CancelledError:
            pass
        finally:
            loop.close()

    thread = threading.Thread(
        target=runner, name="lps-server", daemon=True
    )
    thread.start()
    if not started.wait(timeout=10):
        raise RuntimeError("server failed to start within 10s")
    bound_host, bound_port = box["addr"]
    loop: asyncio.AbstractEventLoop = box["loop"]

    def stop() -> None:
        def _shutdown() -> None:
            box["server"].close()
            for task in asyncio.all_tasks(loop):
                task.cancel()

        if loop.is_running():
            loop.call_soon_threadsafe(_shutdown)
        thread.join(timeout=10)

    return ServerHandle(bound_host, bound_port, stop)


class LineClient:
    """A minimal blocking client for the line protocol (tests/benchmarks).

    Not thread-safe: give each client thread its own connection, exactly
    as a real deployment would.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def send(self, line: str) -> Response:
        self._file.write(line.encode() + b"\n")
        self._file.flush()
        raw = self._file.readline()
        if not raw:
            raise ConnectionError("server closed the connection")
        return Response.from_json(raw.decode())

    def query(self, goal: str) -> Response:
        return self.send(f"?- {goal.rstrip('.')}.")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "LineClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
