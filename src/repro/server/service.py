"""The concurrent query service: many sessions, one maintained model.

:class:`QueryService` is the process-level front end the TCP protocol and
the REPL both sit on:

* it owns the :class:`~repro.engine.maintenance.VersionedModel` (and with
  it the single write lock and the snapshot registry),
* it hands out :class:`~repro.server.session.Session` objects — one per
  client — and runs their requests on a bounded thread pool
  (:meth:`submit`), or synchronously on the caller's thread
  (:meth:`execute`),
* it owns the shared *program source*: ``extend_program`` re-parses the
  accumulated source (exactly the REPL's validation discipline), rebuilds
  the model under the write lock, and publishes the next version,
* it merges per-session statistics on read (``:stats``), so counters are
  exact under parallel queries without any shared mutable counter on the
  read path.

Reads scale with snapshot isolation: a query pins a published snapshot
and never takes the write lock, so readers proceed while the writer's
maintenance sweep mutates its private copy-on-write state.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Iterable, Mapping, Optional, Union

from ..core.program import Program
from ..engine.builtins import Builtin
from ..engine.database import Database
from ..engine.evaluation import EvalOptions
from ..engine.maintenance import ModelSnapshot, VersionedModel
from ..engine.setops import with_set_builtins
from ..lang import parse_program, pretty_clause
from .session import Response, Session, SessionStats


class QueryService:
    """Multiplex concurrent sessions over one versioned model.

    With ``data_dir`` set the service runs in **durable mode**: the model
    is a :class:`~repro.storage.durable.DurableModel`, every committed
    batch is WAL-logged *before* the write (or ``:commit``) is
    acknowledged, and constructing the service over a directory that
    already holds state recovers it — the stored program wins over the
    ``program`` argument, which only seeds brand-new directories.
    """

    def __init__(
        self,
        program: Union[Program, str, None] = None,
        database: Optional[Database] = None,
        builtins: Optional[Mapping[str, Builtin]] = None,
        options: Optional[EvalOptions] = None,
        max_workers: int = 8,
        keep_versions: int = 8,
        max_batch: int = 10_000,
        data_dir: Optional[Union[str, os.PathLike]] = None,
        fsync: str = "always",
        checkpoint_every: Optional[int] = 512,
    ) -> None:
        if isinstance(program, Program):
            # pretty_clause, not str(): only the pretty-printer's output is
            # round-trip verified (quoted/keyword constants, negative ints),
            # and extend_program re-parses these lines on every extension.
            self._source_lines: list[str] = [
                pretty_clause(c) for c in program.clauses
            ]
            parsed = program
        else:
            self._source_lines = [program] if program else []
            parsed = parse_program("\n".join(self._source_lines))
        self.max_batch = max_batch
        builtins = builtins if builtins is not None else with_set_builtins()
        if data_dir is not None:
            from ..storage.durable import DurableModel

            self.model: VersionedModel = DurableModel.open(
                parsed,
                data_dir,
                database=database,
                builtins=builtins,
                options=options,
                keep_versions=keep_versions,
                fsync=fsync,
                checkpoint_every=checkpoint_every,
            )
            # After recovery the durable program is authoritative: rebuild
            # the source lines extend_program revalidates against.
            self._source_lines = [
                pretty_clause(c) for c in self.model.program.clauses
            ]
        else:
            self.model = VersionedModel(
                parsed,
                database,
                builtins=builtins,
                options=options,
                keep_versions=keep_versions,
            )
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="lps-query"
        )
        self._sessions: dict[int, Session] = {}
        self._sessions_lock = threading.Lock()
        #: Stats of already-closed sessions (so totals never regress).
        self._retired_stats = SessionStats()
        self._closed = False

    # -- sessions ----------------------------------------------------------------

    def open_session(self) -> Session:
        if self._closed:
            raise RuntimeError("service is shut down")
        session = Session(
            self.model, max_batch=self.max_batch, service=self
        )
        with self._sessions_lock:
            self._sessions[session.session_id] = session
        return session

    def forget_session(self, session: Session) -> None:
        """Called by ``Session.close``: fold its stats into the retired
        aggregate and stop tracking it."""
        with self._sessions_lock:
            if self._sessions.pop(session.session_id, None) is not None:
                self._retired_stats.merge(session.stats_snapshot())

    def session_count(self) -> int:
        with self._sessions_lock:
            return len(self._sessions)

    # -- request execution -------------------------------------------------------

    def execute(self, session: Session, line: str) -> Response:
        """Run one request synchronously on the calling thread."""
        return session.execute(line)

    def submit(self, session: Session, line: str) -> "Future[Response]":
        """Run one request on the service thread pool."""
        return self._pool.submit(session.execute, line)

    # -- writes / program --------------------------------------------------------

    def apply_delta(
        self, adds: Iterable[Any] = (), dels: Iterable[Any] = ()
    ) -> ModelSnapshot:
        """Direct writer entry (the churn generator and benchmarks)."""
        return self.model.apply_delta(adds=adds, dels=dels)

    def extend_program(self, text: str) -> ModelSnapshot:
        """Append clause source, revalidate the whole program, rebuild.

        Parsing the joined source *before* touching the model means a bad
        clause is rejected with a parse error and nothing changes.
        """
        with self.model.lock:
            program = parse_program(
                "\n".join([*self._source_lines, text])
            )
            self._source_lines.append(text)
            return self.model.replace_program(program)

    # -- stats -------------------------------------------------------------------

    def merged_session_stats(self) -> SessionStats:
        """Exact service-wide totals: live sessions + retired aggregate."""
        out = SessionStats()
        with self._sessions_lock:
            live = list(self._sessions.values())
            out.merge(self._retired_stats)
        for session in live:
            out.merge(session.stats_snapshot())
        return out

    def stats_data(self) -> dict:
        """The service-wide ``:stats`` payload (see ``Session.stats_data``)."""
        from .session import stats_payload

        return stats_payload(self.model, self.merged_session_stats())

    # -- lifecycle ---------------------------------------------------------------

    def checkpoint(self):
        """Durable mode: snapshot now and truncate the WAL (no-op otherwise)."""
        checkpoint = getattr(self.model, "checkpoint", None)
        if checkpoint is None:
            return None
        return checkpoint()

    def shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        with self._sessions_lock:
            live = list(self._sessions.values())
        for session in live:
            session.close()
        self._pool.shutdown(wait=True)
        close = getattr(self.model, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
