"""The concurrent query service: many sessions, one maintained model.

:class:`QueryService` is the process-level front end the TCP protocol and
the REPL both sit on:

* it owns the :class:`~repro.engine.maintenance.VersionedModel` (and with
  it the single write lock and the snapshot registry),
* it hands out :class:`~repro.server.session.Session` objects — one per
  client — and runs their requests on a bounded thread pool
  (:meth:`submit`), or synchronously on the caller's thread
  (:meth:`execute`),
* it owns the shared *program source*: ``extend_program`` re-parses the
  accumulated source (exactly the REPL's validation discipline), rebuilds
  the model under the write lock, and publishes the next version,
* it merges per-session statistics on read (``:stats``), so counters are
  exact under parallel queries without any shared mutable counter on the
  read path.

Reads scale with snapshot isolation: a query pins a published snapshot
and never takes the write lock, so readers proceed while the writer's
maintenance sweep mutates its private copy-on-write state.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Iterable, Mapping, Optional, Union

from ..core.program import Program
from ..engine.builtins import Builtin
from ..engine.database import Database
from ..engine.evaluation import EvalOptions
from ..engine.maintenance import ModelSnapshot, VersionedModel
from ..engine.setops import with_set_builtins
from ..lang import parse_program, pretty_clause
from .session import Response, Session, SessionStats
from .subscriptions import SubscriptionManager


class QueryService:
    """Multiplex concurrent sessions over one versioned model.

    With ``data_dir`` set the service runs in **durable mode**: the model
    is a :class:`~repro.storage.durable.DurableModel`, every committed
    batch is WAL-logged *before* the write (or ``:commit``) is
    acknowledged, and constructing the service over a directory that
    already holds state recovers it — the stored program wins over the
    ``program`` argument, which only seeds brand-new directories.
    """

    #: Session type handed out by :meth:`open_session`; a follower
    #: service swaps in its read-only ``FollowerSession``.
    session_class = Session

    def __init__(
        self,
        program: Union[Program, str, None] = None,
        database: Optional[Database] = None,
        builtins: Optional[Mapping[str, Builtin]] = None,
        options: Optional[EvalOptions] = None,
        max_workers: int = 8,
        keep_versions: int = 8,
        max_batch: int = 10_000,
        data_dir: Optional[Union[str, os.PathLike]] = None,
        fsync: str = "always",
        checkpoint_every: Optional[int] = 512,
        model: Optional[VersionedModel] = None,
        ack_replicas: int = 0,
        ack_timeout: float = 30.0,
        max_pending_diffs: int = 256,
    ) -> None:
        self.max_pending_diffs = max_pending_diffs
        if model is not None:
            # An externally managed model (the follower path: the
            # FollowerService owns a DurableModel the shipping thread
            # writes into, and the service serves reads over it).
            self.max_batch = max_batch
            self.model = model
            self._source_lines = [
                pretty_clause(c) for c in model.program.clauses
            ]
            self._init_runtime(max_workers, ack_replicas, ack_timeout)
            return
        if isinstance(program, Program):
            # pretty_clause, not str(): only the pretty-printer's output is
            # round-trip verified (quoted/keyword constants, negative ints),
            # and extend_program re-parses these lines on every extension.
            self._source_lines: list[str] = [
                pretty_clause(c) for c in program.clauses
            ]
            parsed = program
        else:
            self._source_lines = [program] if program else []
            parsed = parse_program("\n".join(self._source_lines))
        self.max_batch = max_batch
        builtins = builtins if builtins is not None else with_set_builtins()
        if data_dir is not None:
            from ..storage.durable import DurableModel

            self.model: VersionedModel = DurableModel.open(
                parsed,
                data_dir,
                database=database,
                builtins=builtins,
                options=options,
                keep_versions=keep_versions,
                fsync=fsync,
                checkpoint_every=checkpoint_every,
            )
            # After recovery the durable program is authoritative: rebuild
            # the source lines extend_program revalidates against.
            self._source_lines = [
                pretty_clause(c) for c in self.model.program.clauses
            ]
        else:
            self.model = VersionedModel(
                parsed,
                database,
                builtins=builtins,
                options=options,
                keep_versions=keep_versions,
            )
        self._init_runtime(max_workers, ack_replicas, ack_timeout)

    def _init_runtime(
        self, max_workers: int, ack_replicas: int, ack_timeout: float
    ) -> None:
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="lps-query"
        )
        self._sessions: dict[int, Session] = {}
        self._sessions_lock = threading.Lock()
        #: Stats of already-closed sessions (so totals never regress).
        self._retired_stats = SessionStats()
        self._closed = False
        #: Replication attachments (see :mod:`repro.replication`): a
        #: leader gets a ReplicationHub, a follower a FollowerService.
        self.hub = None
        self.follower = None
        self.ack_replicas = ack_replicas
        self.ack_timeout = ack_timeout
        #: Standing-query registry + diff dispatcher (:subscribe).
        self.subscriptions = SubscriptionManager(self)
        #: Lazily created pool for blocking waits (``:sync``): parked
        #: clients must never pin ``lps-query`` workers, or pool-size
        #: concurrent syncs would starve every query until a timeout.
        self._waiter_pool: Optional[ThreadPoolExecutor] = None
        self._waiter_lock = threading.Lock()

    # -- sessions ----------------------------------------------------------------

    def open_session(self) -> Session:
        if self._closed:
            raise RuntimeError("service is shut down")
        session = self.session_class(
            self.model, max_batch=self.max_batch, service=self,
            max_pending_diffs=self.max_pending_diffs,
        )
        with self._sessions_lock:
            self._sessions[session.session_id] = session
        return session

    def forget_session(self, session: Session) -> None:
        """Called by ``Session.close``: fold its stats into the retired
        aggregate and stop tracking it."""
        with self._sessions_lock:
            if self._sessions.pop(session.session_id, None) is not None:
                self._retired_stats.merge(session.stats_snapshot())
        self.subscriptions.drop_session(session)

    def session_count(self) -> int:
        with self._sessions_lock:
            return len(self._sessions)

    # -- request execution -------------------------------------------------------

    def execute(self, session: Session, line: str) -> Response:
        """Run one request synchronously on the calling thread."""
        return session.execute(line)

    def submit(self, session: Session, line: str) -> "Future[Response]":
        """Run one request on the service thread pool (blocking waits go
        to the dedicated waiter pool, see :meth:`executor_for`)."""
        return self.executor_for(line).submit(session.execute, line)

    def executor_for(self, line: str) -> ThreadPoolExecutor:
        """The pool a request line should run on.

        ``:sync`` parks on the model's version condition for up to its
        timeout; routing it to a separate waiter pool keeps the query
        pool's workers available no matter how many clients are waiting
        (regression-tested in ``tests/test_subscribe.py``).
        """
        if line.lstrip().startswith(":sync"):
            with self._waiter_lock:
                if self._waiter_pool is None:
                    self._waiter_pool = ThreadPoolExecutor(
                        max_workers=64, thread_name_prefix="lps-sync"
                    )
                return self._waiter_pool
        return self._pool

    # -- writes / program --------------------------------------------------------

    def apply_delta(
        self, adds: Iterable[Any] = (), dels: Iterable[Any] = ()
    ) -> ModelSnapshot:
        """Direct writer entry (the churn generator and benchmarks)."""
        snap = self.model.apply_delta(adds=adds, dels=dels)
        self.wait_replicated(snap.version)
        return snap

    def extend_program(self, text: str) -> ModelSnapshot:
        """Append clause source, revalidate the whole program, rebuild.

        Parsing the joined source *before* touching the model means a bad
        clause is rejected with a parse error and nothing changes.
        """
        with self.model.lock:
            program = parse_program(
                "\n".join([*self._source_lines, text])
            )
            self._source_lines.append(text)
            snap = self.model.replace_program(program)
        self.wait_replicated(snap.version)
        return snap

    # -- replication role --------------------------------------------------------

    def refuse_write(self):
        """Role hook: return a structured refusal ``Response`` when this
        service must not accept writes (a follower), ``None`` otherwise."""
        follower = self.follower
        if follower is not None:
            return follower.refuse_write()
        return None

    def role_info(self) -> dict:
        """The ``:role`` payload: who we are, where we are, who leads."""
        info = {
            "role": "leader",
            "version": self.model.version,
            "epoch": getattr(self.model, "epoch", 0),
            "durable": hasattr(self.model, "data_dir"),
        }
        if self.hub is not None:
            info["replication"] = self.hub.replica_info()
        follower = self.follower
        if follower is not None:
            info.update(follower.role_info())
        return info

    def wait_replicated(self, version: int) -> None:
        """Leader-side ack gating: with ``ack_replicas=k`` a write is not
        acknowledged to its client until *k* followers have confirmed
        durable application of ``version``.  No-op otherwise."""
        if self.hub is not None and self.ack_replicas > 0:
            self.hub.wait_replicated(
                version, self.ack_replicas, timeout=self.ack_timeout
            )

    # -- stats -------------------------------------------------------------------

    def merged_session_stats(self) -> SessionStats:
        """Exact service-wide totals: live sessions + retired aggregate."""
        out = SessionStats()
        with self._sessions_lock:
            live = list(self._sessions.values())
            out.merge(self._retired_stats)
        for session in live:
            out.merge(session.stats_snapshot())
        return out

    def stats_data(self) -> dict:
        """The service-wide ``:stats`` payload (see ``Session.stats_data``)."""
        from .session import stats_payload

        return stats_payload(self.model, self.merged_session_stats())

    # -- lifecycle ---------------------------------------------------------------

    def checkpoint(self):
        """Durable mode: snapshot now and truncate the WAL (no-op otherwise)."""
        checkpoint = getattr(self.model, "checkpoint", None)
        if checkpoint is None:
            return None
        return checkpoint()

    def shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        with self._sessions_lock:
            live = list(self._sessions.values())
        for session in live:
            session.close()
        self.subscriptions.stop()
        self._pool.shutdown(wait=True)
        with self._waiter_lock:
            waiters, self._waiter_pool = self._waiter_pool, None
        if waiters is not None:
            # Parked ``:sync`` waits run out their own (client-chosen)
            # timeouts; don't hold shutdown hostage to them.
            waiters.shutdown(wait=False, cancel_futures=True)
        close = getattr(self.model, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
