"""``repro.server`` — the concurrent query service layer.

Many sessions, one maintained model: readers evaluate against immutable
copy-on-write snapshots published by a single serialized writer, so no
query ever observes a half-applied delta (see DESIGN.md, "Service
layer").  The package splits into:

* :mod:`repro.server.session` — per-client :class:`Session` (the REPL
  grammar: queries, fact churn, batches, time-travel reads) and the
  structured :class:`Response` envelope,
* :mod:`repro.server.service` — :class:`QueryService`, the thread-pool
  front end owning the :class:`~repro.engine.maintenance.VersionedModel`,
* :mod:`repro.server.protocol` — a line-oriented TCP server (asyncio)
  plus a minimal blocking :class:`LineClient`.
"""

from .session import (
    E_BATCH,
    E_CLOSED,
    E_CLOSING,
    E_COMMAND,
    E_EVAL,
    E_NOT_FOLLOWER,
    E_NOT_YET,
    E_PARSE,
    E_READ_ONLY,
    E_RETIRED,
    E_UNKNOWN_VERSION,
    E_UNSAFE,
    QueryResult,
    Response,
    Session,
    SessionStats,
)
from .service import QueryService
from .protocol import Backoff, LineClient, ServerHandle, run_in_thread, serve

__all__ = [
    "Backoff",
    "E_BATCH",
    "E_CLOSED",
    "E_CLOSING",
    "E_COMMAND",
    "E_EVAL",
    "E_NOT_FOLLOWER",
    "E_NOT_YET",
    "E_PARSE",
    "E_READ_ONLY",
    "E_RETIRED",
    "E_UNKNOWN_VERSION",
    "E_UNSAFE",
    "LineClient",
    "QueryResult",
    "QueryService",
    "Response",
    "ServerHandle",
    "Session",
    "SessionStats",
    "run_in_thread",
    "serve",
]
