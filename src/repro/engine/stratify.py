"""Stratification of programs with negation and grouping.

Section 4.2 of the paper adds (stratified) negation to LPS "in a
straightforward way", citing [ABW86]; Section 6 treats LDL grouping, which —
like negation — needs the *complete* extension of its body predicates before
it can fire, and therefore induces the same strictness constraint.

A **stratification** assigns each predicate a stratum number such that for
every clause with head predicate ``p``:

* if ``q`` occurs positively in the body, ``stratum(q) ≤ stratum(p)``;
* if ``q`` occurs negatively (or the clause is a grouping clause),
  ``stratum(q) < stratum(p)``.

A program is stratifiable iff no cycle of the dependency graph contains a
negative edge.  We compute strongly connected components with an iterative
Tarjan algorithm (no recursion limits), check the condition, and emit the
components in topological order with minimal stratum numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..core.clauses import GroupingClause, LPSClause
from ..core.errors import StratificationError
from ..core.program import AnyClause, Program


#: Maintenance strategies a stratum can be planned for (see
#: ``repro.engine.maintenance``): counting maintenance for nonrecursive
#: conjunctive strata, delete–rederive for recursive ones, and full
#: per-stratum recomputation for anything with negation, grouping or
#: restricted quantifiers (whose derivations are not fact-linear).
PLAN_COUNTING = "counting"
PLAN_DRED = "dred"
PLAN_RECOMPUTE = "recompute"


@dataclass(frozen=True)
class StratumRules:
    """One stratum's rule group, pre-analysed for the maintenance planner."""

    index: int
    clauses: tuple[AnyClause, ...]
    head_preds: frozenset[str]
    body_preds: frozenset[str]
    has_negation: bool
    has_grouping: bool
    has_quantifiers: bool

    @property
    def recursive(self) -> bool:
        return bool(self.head_preds & self.body_preds)

    @property
    def plan(self) -> str:
        """Which maintenance strategy is sound and cheapest for this group.

        Counting needs every derivation to consume exactly one fact per
        body conjunct (plain positive conjunctive rules) and no recursion;
        DRed additionally tolerates recursion; anything else — negation,
        grouping, quantifiers — is re-evaluated wholesale from the
        maintained lower strata.
        """
        if self.has_negation or self.has_grouping or self.has_quantifiers:
            return PLAN_RECOMPUTE
        if self.recursive:
            return PLAN_DRED
        return PLAN_COUNTING


@dataclass(frozen=True)
class Stratification:
    """The result: stratum number per predicate, and clauses per stratum."""

    stratum_of: Mapping[str, int]
    strata: tuple[tuple[AnyClause, ...], ...]

    @property
    def depth(self) -> int:
        return len(self.strata)

    def rule_groups(self) -> tuple[StratumRules, ...]:
        """The strata as analysed rule groups (maintenance planner input)."""
        out = []
        for i, clauses in enumerate(self.strata):
            head_preds: set[str] = set()
            body_preds: set[str] = set()
            has_negation = has_grouping = has_quantifiers = False
            for c in clauses:
                if isinstance(c, GroupingClause):
                    has_grouping = True
                    head_preds.add(c.pred)
                else:
                    head_preds.add(c.head.pred)
                    if c.quantifiers:
                        has_quantifiers = True
                    if c.has_negation():
                        has_negation = True
                for lit in c.body:
                    if not lit.atom.is_special():
                        body_preds.add(lit.atom.pred)
            out.append(StratumRules(
                index=i,
                clauses=clauses,
                head_preds=frozenset(head_preds),
                body_preds=frozenset(body_preds),
                has_negation=has_negation,
                has_grouping=has_grouping,
                has_quantifiers=has_quantifiers,
            ))
        return tuple(out)


def _tarjan_sccs(
    nodes: Sequence[str], succ: Mapping[str, set[str]]
) -> list[list[str]]:
    """Strongly connected components, iteratively, in reverse topological order."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0

    for root in nodes:
        if root in index:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, child_i = work[-1]
            if child_i == 0:
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = sorted(succ.get(node, ()))
            for i in range(child_i, len(children)):
                ch = children[i]
                if ch not in index:
                    work[-1] = (node, i + 1)
                    work.append((ch, 0))
                    advanced = True
                    break
                if ch in on_stack:
                    low[node] = min(low[node], index[ch])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                comp: list[str] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                sccs.append(comp)
    return sccs


def stratify(
    program: Program,
    extra_negative: Iterable[tuple[str, str]] = (),
    ignore: Iterable[str] = (),
) -> Stratification:
    """Compute a stratification, or raise :class:`StratificationError`.

    ``extra_negative`` lets callers add negative edges (used by tests and by
    the setof transformation to document intent); normally the edges come
    from the program itself via
    :meth:`~repro.core.program.Program.dependency_edges`.  Predicates in
    ``ignore`` (typically engine builtins like ``neq``) contribute no
    dependency edges.
    """
    ignored = set(ignore)
    preds = set(program.predicates()) - ignored
    succ: dict[str, set[str]] = {p: set() for p in preds}
    negative_pairs: set[tuple[str, str]] = set(extra_negative)
    for head, body, positive in program.dependency_edges():
        if head in ignored or body in ignored:
            continue
        succ.setdefault(head, set()).add(body)
        succ.setdefault(body, set())
        preds.add(head)
        preds.add(body)
        if not positive:
            negative_pairs.add((head, body))
    for head, body in extra_negative:
        succ.setdefault(head, set()).add(body)
        succ.setdefault(body, set())
        preds.update((head, body))

    sccs = _tarjan_sccs(sorted(preds), succ)
    comp_of: dict[str, int] = {}
    for i, comp in enumerate(sccs):
        for p in comp:
            comp_of[p] = i

    # Negative edge inside one SCC => unstratifiable.
    for head, body in negative_pairs:
        if comp_of.get(head) == comp_of.get(body) and head in comp_of:
            raise StratificationError(
                f"negation/grouping cycle through {head!r} and {body!r}; "
                "the program is not stratified ([ABW86], Section 4.2)"
            )

    # Tarjan emits SCCs in reverse topological order of the condensation
    # (every successor component is emitted before its predecessors), so a
    # single pass assigns minimal stratum numbers.
    stratum_of: dict[str, int] = {}
    comp_stratum: list[int] = [0] * len(sccs)
    for i, comp in enumerate(sccs):
        s = 0
        for p in comp:
            for q in succ.get(p, ()):
                qi = comp_of[q]
                if qi == i:
                    continue
                needed = comp_stratum[qi] + (1 if (p, q) in negative_pairs else 0)
                s = max(s, needed)
        # All negative edges out of this component force a strictly higher
        # stratum; positive edges only a >= constraint.
        for p in comp:
            for q in succ.get(p, ()):
                if comp_of[q] != i and (p, q) in negative_pairs:
                    s = max(s, comp_stratum[comp_of[q]] + 1)
        comp_stratum[i] = s
        for p in comp:
            stratum_of[p] = s

    depth = (max(comp_stratum) + 1) if comp_stratum else 1
    buckets: list[list[AnyClause]] = [[] for _ in range(depth)]
    for c in program.clauses:
        pred = c.head.pred if isinstance(c, LPSClause) else c.pred
        buckets[stratum_of.get(pred, 0)].append(c)
    return Stratification(
        stratum_of=stratum_of,
        strata=tuple(tuple(b) for b in buckets),
    )


def is_stratified(program: Program) -> bool:
    """Whether the program admits a stratification."""
    try:
        stratify(program)
        return True
    except StratificationError:
        return False
