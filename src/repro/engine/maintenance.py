"""Incremental model maintenance: batched insert/delete fact streams.

The paper's examples assume a static EDB; this module makes the computed
model survive a *stream* of fact changes without recomputing from scratch.
A :class:`MaterializedModel` owns a solved model plus per-stratum support
bookkeeping and exposes :meth:`MaterializedModel.apply_delta`, which
implements the classical maintenance discipline:

* **Counting maintenance** for nonrecursive conjunctive strata: every
  derivation is a (rule, grounding) pair consuming exactly one fact per
  relational conjunct, so a batch of insertions/deletions translates into
  per-derivation count increments/decrements (the position-pinned delta
  rule ``Δ(B1 ⋈ … ⋈ Bn) = Σ_i new^{<i} · ΔB_i · old^{>i}`` counts each
  changed derivation exactly once).  An atom leaves the model when its
  count — derivations plus base supports (EDB facts, ground fact clauses)
  — reaches zero.
* **DRed (delete–rederive)** for recursive strata: overdelete everything
  transitively derivable from the deleted facts, then re-derive atoms with
  surviving alternative derivations by seeding the existing semi-naive
  machinery (``Evaluator._fixpoint(seed_deltas=…)``) from the rescued
  atoms; insertions are a plain delta-seeded semi-naive closure.
* **Per-stratum recomputation** for strata with negation, grouping or
  restricted quantifiers, whose derivations are not fact-linear: the
  stratum is cleared and re-evaluated against the maintained lower strata
  — which is exactly the "re-derive, don't over-delete" semantics
  stratified negation requires.

Soundness gate.  The engine's active-domain semantics lets rules consult
the domain carriers (unconstrained variables, non-ground quantifier
ranges); such rules can change their output when the *domain* shrinks or
grows even though no predicate they read changed.  Every carrier
consultation goes through the solver's fallback machinery and is counted
in ``SolverStats.fallbacks``, so the gate is dynamic and exact: if the
initial evaluation fell back, or any maintenance join falls back, the
incremental result is abandoned and the model is recomputed from scratch.
The maintained model is therefore *always* identical to a from-scratch
``Evaluator.run()`` over the updated database (see
``tests/test_maintenance.py``), and incrementality is a pure optimisation.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping, Optional

from ..core.atoms import Atom
from ..core.clauses import GroupingClause, LPSClause
from ..core.errors import EvaluationError, SafetyError
from ..core.program import Program
from ..core.substitution import Subst
from ..core.terms import Var
from ..core.unify import match_atom
from ..semantics.interpretation import Interpretation
from .builtins import DEFAULT_BUILTINS, Builtin
from .database import Database, as_fact
from .evaluation import (
    ActiveDomain,
    EvalOptions,
    EvalReport,
    Evaluator,
    Model,
    Solver,
    SolverStats,
    _CompiledRule,
)
from .columnar import make_executor
from .executor import PlanInapplicable
from .ir import ExecStats
from .provenance import SupportCounts
from .stratify import PLAN_COUNTING, PLAN_DRED, PLAN_RECOMPUTE, StratumRules

_EMPTY: frozenset = frozenset()

#: Strategies reported by :meth:`MaterializedModel.apply_delta`.
STRATEGY_NOOP = "noop"
STRATEGY_INCREMENTAL = "incremental"
STRATEGY_RECOMPUTE = "recompute"


class _AbortIncremental(Exception):
    """Internal: the incremental path is unsound for this delta; recompute."""


def _one_fact(spec: tuple) -> Any:
    """Normalize ``add(...)``/``retract(...)`` argument forms to a fact spec."""
    if len(spec) == 1 and isinstance(spec[0], Atom):
        return spec[0]
    return spec


#: Per-stratum change events: atoms added and atoms removed, by predicate.
#: Each plan reports only *actual* interpretation mutations, so an atom in
#: both maps was removed and restored — a net no-change.
Events = tuple[dict[str, set[Atom]], dict[str, set[Atom]]]


def _merge_net_changes(
    gained: dict[str, set[Atom]],
    lost: dict[str, set[Atom]],
    add_events: Mapping[str, set[Atom]],
    rem_events: Mapping[str, set[Atom]],
) -> None:
    """Fold one stratum's events into the cascading net delta."""
    for p, s in add_events.items():
        net = s - rem_events.get(p, _EMPTY)
        if net:
            gained.setdefault(p, set()).update(net)
    for p, s in rem_events.items():
        net = s - add_events.get(p, _EMPTY)
        if net:
            lost.setdefault(p, set()).update(net)


@dataclass(frozen=True)
class ModelChanges:
    """Exact per-predicate model-atom changes of one maintenance batch.

    ``adds``/``dels`` map predicate name to the set of *model* atoms (EDB
    and derived alike) that appeared/disappeared in this batch.  Per
    predicate the two sets are disjoint: each predicate is produced by at
    most one stratum and the per-stratum events are netted before they are
    folded in (`_merge_net_changes`).  The live-subscription dispatcher
    pins these sets into delta-variant plans to push exact answer-set
    diffs without re-running standing queries.
    """

    adds: Mapping[str, frozenset[Atom]]
    dels: Mapping[str, frozenset[Atom]]

    def touches(self, preds: Iterable[str]) -> bool:
        """Did this batch change any of the given predicates?"""
        return any(p in self.adds or p in self.dels for p in preds)


def _group_by_pred(atoms: Iterable[Atom]) -> dict[str, frozenset[Atom]]:
    by_pred: dict[str, set[Atom]] = {}
    for a in atoms:
        by_pred.setdefault(a.pred, set()).add(a)
    return {p: frozenset(s) for p, s in by_pred.items()}


@dataclass
class MaintenanceReport:
    """What one :meth:`MaterializedModel.apply_delta` call did."""

    strategy: str = STRATEGY_INCREMENTAL
    net_added: int = 0          # net EDB facts added to the database
    net_removed: int = 0        # net EDB facts removed from the database
    atoms_added: int = 0        # model atoms that appeared (EDB + derived)
    atoms_removed: int = 0      # model atoms that disappeared
    stratum_plans: tuple[tuple[int, str], ...] = ()
    fallback_reason: Optional[str] = None
    #: Per-predicate atom sets behind the two counters above (``None`` only
    #: for no-op batches, which publish nothing).
    changes: Optional[ModelChanges] = None


class MaterializedModel:
    """A solved model that absorbs batched EDB insertions and deletions.

    The model owns its :class:`~repro.engine.database.Database`: mutate the
    EDB only through :meth:`apply_delta` (or :meth:`add`/:meth:`retract`),
    never behind the model's back.  After every call the interpretation is
    identical to a from-scratch evaluation of the updated database.
    """

    def __init__(
        self,
        program: Program,
        database: Optional[Database] = None,
        builtins: Mapping[str, Builtin] = DEFAULT_BUILTINS,
        options: Optional[EvalOptions] = None,
    ) -> None:
        self.program = program
        self.database = database if database is not None else Database()
        self.builtins = builtins
        self.options = options or EvalOptions()
        self._evaluator = Evaluator(
            program, self.database, builtins, self.options
        )
        self._groups: tuple[StratumRules, ...] = (
            self._evaluator.stratification.rule_groups()
        )
        #: pred -> index of the stratum whose rules produce it.
        self._producer: dict[str, int] = {
            p: g.index for g in self._groups for p in g.head_preds
        }
        #: Ground fact-clause heads: permanent base support, never deleted.
        self._program_facts: frozenset[Atom] = frozenset(
            c.head for c in program.lps_clauses()
            if c.is_fact and c.head.is_ground()
        )
        #: Compiled proper rules per stratum (counting + DRed strata).
        self._compiled: dict[int, list[_CompiledRule]] = {}
        for g in self._groups:
            if g.plan in (PLAN_COUNTING, PLAN_DRED):
                self._compiled[g.index] = [
                    _CompiledRule(c, builtins)
                    for c in g.clauses
                    if isinstance(c, LPSClause)
                    and not (c.is_fact and c.head.is_ground())
                ]
        self.last_report: Optional[MaintenanceReport] = None
        #: Aggregated set-at-a-time executor counters across the initial
        #: evaluation, every rebuild and every maintenance sweep (the REPL's
        #: ``:stats`` reads this).
        self.exec_stats = ExecStats()
        self._rebuild()

    # -- read API ---------------------------------------------------------------

    @property
    def model(self) -> Model:
        return self._model

    @property
    def interpretation(self) -> Interpretation:
        return self._interp

    def holds(self, a: Atom) -> bool:
        return self._model.holds(a)

    def query(self, pattern: Atom):
        return self._model.query(pattern)

    def relation(self, pred: str) -> set[tuple]:
        return self._model.relation(pred)

    def __len__(self) -> int:
        return len(self._interp)

    # -- write API --------------------------------------------------------------

    def add(self, *spec: Any) -> MaintenanceReport:
        """Insert one fact: ``m.add("edge", "a", "b")`` or ``m.add(atom)``."""
        return self.apply_delta(adds=[_one_fact(spec)])

    def retract(self, *spec: Any) -> MaintenanceReport:
        """Delete one fact (same argument forms as :meth:`add`)."""
        return self.apply_delta(dels=[_one_fact(spec)])

    def apply_delta(
        self, adds: Iterable[Any] = (), dels: Iterable[Any] = ()
    ) -> MaintenanceReport:
        """Apply a batch of insertions and deletions; maintain the model.

        ``adds``/``dels`` accept atoms or ``(pred, arg, ...)`` tuples.  The
        database becomes ``(db − dels) ∪ adds``; the model is maintained
        incrementally where the per-stratum plans apply and recomputed
        from scratch when the soundness gate trips (see module docstring).
        """
        add_atoms = [self._check_fact(s) for s in adds]
        del_atoms = [self._check_fact(s) for s in dels]
        if (add_atoms or del_atoms) and self._incremental_ok \
                and self._counts is None:
            # First delta: build the counting supports now, while both the
            # interpretation and the database still hold the pre-batch
            # state (base supports come from the database's EDB facts).
            try:
                self._init_counts()
            except _AbortIncremental:
                self._incremental_ok = False
        added, removed = self.database.apply_delta(add_atoms, del_atoms)
        report = MaintenanceReport(
            net_added=len(added), net_removed=len(removed)
        )
        if not added and not removed:
            report.strategy = STRATEGY_NOOP
            self.last_report = report
            return report
        if not self._incremental_ok:
            self._full_recompute(report, "program is not incrementally "
                                 "maintainable (domain-dependent rules or "
                                 "provenance tracking)")
            return report
        try:
            self._maintain(added, removed, report)
        except (_AbortIncremental, EvaluationError, SafetyError) as exc:
            # Unsound or resource-limited incremental attempt: discard the
            # partially-maintained state and recompute (a genuine error will
            # re-raise from the from-scratch evaluation).
            self._full_recompute(report, str(exc))
        self.last_report = report
        return report

    # -- construction / recompute ------------------------------------------------

    def _check_fact(self, spec: Any) -> Atom:
        a = as_fact(spec)
        if a.is_special():
            raise EvaluationError(
                f"special atom {a} cannot be asserted or retracted"
            )
        if a.pred in self.builtins:
            raise EvaluationError(
                f"database fact uses builtin predicate {a.pred!r}"
            )
        return a

    def _rebuild(self) -> None:
        """(Re)compute the model from scratch and reset all bookkeeping."""
        self._model = self._evaluator.run()
        self.exec_stats.merge(self._model.report.exec)
        self._interp = self._model.interpretation
        self._domain = ActiveDomain()
        for t in self.program.all_terms():
            self._domain.note_term(t)
        for a in self.database.facts():
            self._domain.note_atom(a)
        for a in self._interp:
            self._domain.note_atom(a)
        self._incremental_ok = (
            not self.options.track_provenance
            and self._model.report.stats.fallbacks == 0
        )
        # Counting supports are built lazily on the first delta: rebuilding
        # them here would re-solve every counting-stratum join the run()
        # above just solved, even if no delta ever arrives.
        self._counts: Optional[dict[int, SupportCounts]] = None

    def _full_recompute(
        self, report: MaintenanceReport, reason: str
    ) -> None:
        before = set(self._interp.atoms())
        self._rebuild()
        after = set(self._interp.atoms())
        report.strategy = STRATEGY_RECOMPUTE
        report.fallback_reason = reason
        report.atoms_added = len(after - before)
        report.atoms_removed = len(before - after)
        report.changes = ModelChanges(
            adds=_group_by_pred(after - before),
            dels=_group_by_pred(before - after),
        )
        self.last_report = report

    def _init_counts(self) -> None:
        """Derivation + base-support counts for every counting stratum.

        Must run against the pre-batch interpretation *and* database.
        """
        stats = SolverStats()
        solver = self._solver(stats)
        self._counts = {}
        for g in self._groups:
            if g.plan != PLAN_COUNTING:
                continue
            counts = SupportCounts()
            for rule in self._compiled[g.index]:
                fv = frozenset(rule.clause.free_vars())
                head_vars = rule.head_vars
                planned = self._plan_rows(rule, None, None)
                if planned is not None:
                    # Set-at-a-time: the plan's full-width rows are the
                    # rule's derivations (head groundedness is guaranteed
                    # by compilation); dedup on the free-variable key.
                    vars_, rows = planned
                    fv_idx = tuple(
                        i for i, v in enumerate(vars_) if v in fv
                    )
                    seen_keys: set[tuple] = set()
                    for row in rows:
                        key = tuple(row[i] for i in fv_idx)
                        if key in seen_keys:
                            continue
                        seen_keys.add(key)
                        counts.add(rule.head.substitute(
                            Subst._make(dict(zip(vars_, row)))
                        ))
                    continue
                seen: set[Subst] = set()
                for env in solver.solve(rule.body):
                    self._require_head_ground(rule, env, head_vars)
                    key = env.restrict(fv)
                    if key in seen:
                        continue
                    seen.add(key)
                    counts.add(rule.head.substitute(env))
            for p in g.head_preds:
                for a in self.database.facts_of(p):
                    counts.add(a)
            for h in self._program_facts:
                if h.pred in g.head_preds:
                    counts.add(h)
            self._counts[g.index] = counts
        if stats.fallbacks:
            raise _AbortIncremental("derivation enumeration fell back")

    def _solver(self, stats: SolverStats) -> Solver:
        return Solver(
            self._interp,
            self._domain,
            self.builtins,
            allow_fallback=self.options.allow_fallback,
            fallback_limit=self.options.fallback_limit,
            stats=stats,
            use_indexes=self.options.use_indexes,
            plan_joins=self.options.plan_joins,
        )

    def _plan_rows(
        self,
        rule: _CompiledRule,
        pin: Optional[int],
        delta_facts: Optional[Iterable[Atom]],
    ) -> Optional[tuple[tuple[Var, ...], list[tuple]]]:
        """Full-width body rows of a rule through its compiled plan.

        ``pin`` selects the delta-variant (that occurrence's Scan reads
        ``delta_facts``); ``None`` executes the base plan.  Returns
        ``(schema, rows)`` or ``None`` when the rule compiles to tuple
        mode, plans are disabled, or execution proves inapplicable — the
        callers then use the solver path, so maintenance **reuses the same
        plans as the fixpoint loop** instead of re-deriving join order per
        batch, with the tuple path as the unconditional fallback.
        """
        if not self.options.compile_plans:
            return None
        cp = rule.plan(pin, self.options.plan_joins)
        if not cp.is_set:
            return None
        delta = None
        if pin is not None:
            delta = {rule.relational[pin].pred: delta_facts}
        executor = make_executor(
            self._interp,
            self.builtins,
            delta=delta,
            use_indexes=self.options.use_indexes,
            stats=self.exec_stats,
            columnar=self.options.columnar,
        )
        try:
            # Callers key rows on (a projection of) the full schema, so
            # duplicate full-width rows are always redundant — dedup in
            # the executor, where the columnar path does it on IDs.
            return cp.root.out_vars, executor.distinct_batch(cp.root)
        except PlanInapplicable:
            return None

    @staticmethod
    def _fv_order(rule: _CompiledRule) -> tuple[Var, ...]:
        """Deterministic derivation-key order for a rule's free variables."""
        return tuple(sorted(
            rule.clause.free_vars(), key=lambda v: (v.var_sort, v.name)
        ))

    @staticmethod
    def _require_head_ground(
        rule: _CompiledRule, env: Subst, head_vars: Iterable[Var]
    ) -> None:
        if any(v not in env for v in head_vars):
            raise _AbortIncremental(
                f"rule {rule.clause} leaves head variables to the active "
                "domain; not incrementally maintainable"
            )

    # -- the maintenance sweep ---------------------------------------------------

    def _maintain(
        self,
        added: Iterable[Atom],
        removed: Iterable[Atom],
        report: MaintenanceReport,
    ) -> None:
        stats = SolverStats()
        gained: dict[str, set[Atom]] = {}
        lost: dict[str, set[Atom]] = {}
        edb_plus: dict[int, set[Atom]] = {}
        edb_minus: dict[int, set[Atom]] = {}

        # Pure EDB predicates (no producing rules) change the model directly;
        # EDB changes to derived predicates are handled by their stratum.
        for a in added:
            g = self._producer.get(a.pred)
            if g is None:
                if self._interp.add(a):
                    self._domain.note_atom(a)
                    gained.setdefault(a.pred, set()).add(a)
            else:
                edb_plus.setdefault(g, set()).add(a)
        for a in removed:
            g = self._producer.get(a.pred)
            if g is None:
                if self._interp.remove(a):
                    lost.setdefault(a.pred, set()).add(a)
            else:
                edb_minus.setdefault(g, set()).add(a)

        plans: list[tuple[int, str]] = []
        for group in self._groups:
            plus = edb_plus.get(group.index, set())
            minus = edb_minus.get(group.index, set())
            touched = {
                p for p in group.body_preds
                if gained.get(p) or lost.get(p)
            }
            if not touched and not plus and not minus:
                continue
            plan = group.plan
            if plan == PLAN_COUNTING:
                events = self._maintain_counting(
                    group, gained, lost, plus, minus, stats
                )
            elif plan == PLAN_DRED:
                events = self._maintain_dred(
                    group, gained, lost, plus, minus, stats
                )
            else:
                events = self._recompute_stratum(group, stats)
            plans.append((group.index, plan))
            _merge_net_changes(gained, lost, *events)

        if stats.fallbacks:
            raise _AbortIncremental(
                "active-domain fallback during maintenance"
            )
        report.stratum_plans = tuple(plans)
        report.atoms_added = sum(len(s) for s in gained.values())
        report.atoms_removed = sum(len(s) for s in lost.values())
        report.changes = ModelChanges(
            adds={p: frozenset(s) for p, s in gained.items() if s},
            dels={p: frozenset(s) for p, s in lost.items() if s},
        )

    # -- counting strata ---------------------------------------------------------

    def _maintain_counting(
        self,
        group: StratumRules,
        gained: Mapping[str, set[Atom]],
        lost: Mapping[str, set[Atom]],
        edb_plus: set[Atom],
        edb_minus: set[Atom],
        stats: SolverStats,
    ) -> Events:
        counts = self._counts[group.index]
        dep_gained = {
            p: gained[p] for p in group.body_preds if gained.get(p)
        }
        dep_lost = {
            p: lost[p] for p in group.body_preds if lost.get(p)
        }
        rules = self._compiled[group.index]

        lost_derivs: list[Atom] = []
        gained_derivs: list[Atom] = []

        # Deletion half-step over the old state: re-add the deleted input
        # facts so joins can see them, and filter gained facts out.
        if dep_lost:
            readded = [
                a for s in dep_lost.values() for a in s
                if self._interp.add(a)
            ]
            try:
                for rule in rules:
                    lost_derivs.extend(self._rule_delta(
                        rule, dep_lost, dep_gained, dep_lost, stats,
                        deleting=True,
                    ))
            finally:
                for a in readded:
                    self._interp.remove(a)
        # Insertion half-step over the new state (gained inputs are present).
        if dep_gained:
            for rule in rules:
                gained_derivs.extend(self._rule_delta(
                    rule, dep_gained, dep_gained, dep_lost, stats,
                    deleting=False,
                ))

        lost_derivs.extend(edb_minus)       # base supports: −1 each
        gained_derivs.extend(edb_plus)      # base supports: +1 each

        add_events: dict[str, set[Atom]] = {}
        rem_events: dict[str, set[Atom]] = {}
        try:
            for h in lost_derivs:
                counts.discharge(h)
        except ValueError as exc:
            raise _AbortIncremental(str(exc)) from exc
        for h in gained_derivs:
            counts.add(h)
        for h in lost_derivs:
            if counts.count(h) == 0 and self._interp.remove(h):
                rem_events.setdefault(h.pred, set()).add(h)
        for h in gained_derivs:
            if counts.count(h) > 0 and self._interp.add(h):
                self._domain.note_atom(h)
                add_events.setdefault(h.pred, set()).add(h)
        return add_events, rem_events

    def _rule_delta(
        self,
        rule: _CompiledRule,
        pin_delta: Mapping[str, set[Atom]],
        dep_gained: Mapping[str, set[Atom]],
        dep_lost: Mapping[str, set[Atom]],
        stats: SolverStats,
        deleting: bool,
    ) -> list[Atom]:
        """Changed derivations of one rule, one head atom per derivation.

        Implements the position-pinned delta rule: the pinned conjunct
        ranges over the delta, earlier conjuncts over the updated state,
        later conjuncts over the pre-batch state, so each changed
        derivation is enumerated exactly once.  Membership in the two
        states is decided per ground body instance against the delta sets
        (the solver joins over the superset of both states).
        """
        rel = rule.relational
        fv_order = self._fv_order(rule)
        head_vars = rule.head_vars
        solver = self._solver(stats)
        seen: set[tuple] = set()
        out: list[Atom] = []
        for i, pin_atom in enumerate(rel):
            delta_facts = pin_delta.get(pin_atom.pred)
            if not delta_facts:
                continue
            planned = self._plan_rows(rule, i, delta_facts)
            if planned is not None:
                vars_, rows = planned
                fv_idx = tuple(vars_.index(v) for v in fv_order)
                for row in rows:
                    env = Subst._make(dict(zip(vars_, row)))
                    if not self._delta_positions_ok(
                        rel, i, env, dep_gained, dep_lost, deleting
                    ):
                        continue
                    key = tuple(row[j] for j in fv_idx)
                    if key in seen:
                        continue
                    seen.add(key)
                    out.append(rule.head.substitute(env))
                continue
            rest, rest_fv = rule._delta_rest(i)
            for f in delta_facts:
                for env0 in match_atom(pin_atom, f):
                    for env in solver.solve(rest, env0, fv=rest_fv):
                        if not self._delta_positions_ok(
                            rel, i, env, dep_gained, dep_lost, deleting
                        ):
                            continue
                        self._require_head_ground(rule, env, head_vars)
                        key = tuple(env.apply(v) for v in fv_order)
                        if key in seen:
                            continue
                        seen.add(key)
                        out.append(rule.head.substitute(env))
        return out

    @staticmethod
    def _delta_positions_ok(
        rel,
        pin: int,
        env: Subst,
        dep_gained: Mapping[str, set[Atom]],
        dep_lost: Mapping[str, set[Atom]],
        deleting: bool,
    ) -> bool:
        for j, a in enumerate(rel):
            if j == pin:
                continue
            in_gained = dep_gained.get(a.pred)
            in_lost = dep_lost.get(a.pred) if deleting else None
            if not in_gained and not in_lost:
                continue
            g = a.substitute(env)
            if deleting:
                # Old state everywhere (no gained facts); positions before
                # the pin additionally use the post-deletion state.
                if in_gained and g in in_gained:
                    return False
                if j < pin and in_lost and g in in_lost:
                    return False
            else:
                # New state before the pin, pre-insertion (mid) state after
                # it — deleted facts are already absent from the join state.
                if j > pin and in_gained and g in in_gained:
                    return False
        return True

    # -- DRed strata -------------------------------------------------------------

    def _maintain_dred(
        self,
        group: StratumRules,
        gained: Mapping[str, set[Atom]],
        lost: Mapping[str, set[Atom]],
        edb_plus: set[Atom],
        edb_minus: set[Atom],
        stats: SolverStats,
    ) -> Events:
        rules = self._compiled[group.index]
        lps_clauses = [
            c for c in group.clauses if isinstance(c, LPSClause)
        ]
        dep_gained = {
            p: gained[p] for p in group.body_preds if gained.get(p)
        }
        dep_lost = {
            p: lost[p] for p in group.body_preds if lost.get(p)
        }

        # --- phase 1: overdelete everything reachable from a deletion ---
        overdeleted: set[Atom] = set()
        frontier: dict[str, set[Atom]] = {}
        for a in edb_minus:
            if a in self._interp and not self._protected(a):
                overdeleted.add(a)
                frontier.setdefault(a.pred, set()).add(a)
        for p, s in dep_lost.items():
            frontier.setdefault(p, set()).update(s)
        if frontier:
            readded = [
                a for s in dep_lost.values() for a in s
                if self._interp.add(a)
            ]
            solver = self._solver(stats)
            try:
                while frontier:
                    next_frontier: dict[str, set[Atom]] = {}
                    for rule in rules:
                        self._overdelete_rule(
                            rule, frontier, next_frontier, overdeleted,
                            dep_gained, solver,
                        )
                    frontier = next_frontier
            finally:
                for a in readded:
                    self._interp.remove(a)
        add_events: dict[str, set[Atom]] = {}
        rem_events: dict[str, set[Atom]] = {}
        for a in overdeleted:
            self._interp.remove(a)
            rem_events.setdefault(a.pred, set()).add(a)

        # --- phase 2: re-derive overdeleted atoms with surviving support ---
        if overdeleted:
            solver = self._solver(stats)
            by_head: dict[str, list[_CompiledRule]] = {}
            for rule in rules:
                by_head.setdefault(rule.head.pred, []).append(rule)
            rederived: dict[str, set[Atom]] = {}
            for h in overdeleted:
                if self._one_step_derivable(h, by_head.get(h.pred, ()), solver):
                    self._interp.add(h)
                    rederived.setdefault(h.pred, set()).add(h)
                    add_events.setdefault(h.pred, set()).add(h)
            if rederived:
                closure = self._seeded_fixpoint(
                    lps_clauses, rederived, stats, group=group
                )
                for p, s in closure.items():
                    add_events.setdefault(p, set()).update(s)

        # --- phase 3: close the insertions semi-naively from the deltas ---
        seed: dict[str, set[Atom]] = {}
        for a in edb_plus:
            if self._interp.add(a):
                self._domain.note_atom(a)
                seed.setdefault(a.pred, set()).add(a)
                add_events.setdefault(a.pred, set()).add(a)
        for p, s in dep_gained.items():
            seed.setdefault(p, set()).update(s)
        if seed:
            closure = self._seeded_fixpoint(
                lps_clauses, seed, stats, group=group
            )
            for p, s in closure.items():
                add_events.setdefault(p, set()).update(s)
        return add_events, rem_events

    def _overdelete_rule(
        self,
        rule: _CompiledRule,
        frontier: Mapping[str, set[Atom]],
        next_frontier: dict[str, set[Atom]],
        overdeleted: set[Atom],
        dep_gained: Mapping[str, set[Atom]],
        solver: Solver,
    ) -> None:
        rel = rule.relational
        head_vars = rule.head_vars
        for i, pin_atom in enumerate(rel):
            facts = frontier.get(pin_atom.pred)
            if not facts:
                continue
            planned = self._plan_rows(rule, i, facts)
            if planned is not None:
                vars_, rows = planned
                for row in rows:
                    env = Subst._make(dict(zip(vars_, row)))
                    # Overdeletion runs over the pre-batch state: facts
                    # gained below this stratum are not part of it.
                    if any(
                        dep_gained.get(a.pred)
                        and a.substitute(env) in dep_gained[a.pred]
                        for j, a in enumerate(rel) if j != i
                    ):
                        continue
                    h = rule.head.substitute(env)
                    if (
                        h in overdeleted
                        or h not in self._interp
                        or self._protected(h)
                    ):
                        continue
                    overdeleted.add(h)
                    next_frontier.setdefault(h.pred, set()).add(h)
                continue
            rest, rest_fv = rule._delta_rest(i)
            for f in facts:
                for env0 in match_atom(pin_atom, f):
                    for env in solver.solve(rest, env0, fv=rest_fv):
                        if any(
                            dep_gained.get(a.pred)
                            and a.substitute(env) in dep_gained[a.pred]
                            for j, a in enumerate(rel) if j != i
                        ):
                            continue
                        self._require_head_ground(rule, env, head_vars)
                        h = rule.head.substitute(env)
                        if (
                            h in overdeleted
                            or h not in self._interp
                            or self._protected(h)
                        ):
                            continue
                        overdeleted.add(h)
                        next_frontier.setdefault(h.pred, set()).add(h)

    def _one_step_derivable(
        self,
        h: Atom,
        rules: Iterable[_CompiledRule],
        solver: Solver,
    ) -> bool:
        for rule in rules:
            for env0 in match_atom(rule.head, h):
                for _env in solver.solve(rule.body, env0):
                    return True
        return False

    def _protected(self, a: Atom) -> bool:
        """Base-supported atoms survive overdeletion unconditionally."""
        return a in self.database or a in self._program_facts

    def _seeded_fixpoint(
        self,
        clauses: list[LPSClause],
        seed: Mapping[str, set[Atom]],
        stats: SolverStats,
        group: Optional[StratumRules] = None,
    ) -> dict[str, set[Atom]]:
        """Close a stratum from the given deltas; returns the atoms added.

        With ``group`` and a sharding evaluator (``EvalOptions.shards``),
        shardable strata close across the worker pool: the seed atoms are
        already in the interpretation, so the coordinator ships them as
        delta pins (owner-routed for this stratum's predicates, broadcast
        for lower-stratum dependencies) and gathers the closure back.  Any
        failure falls through to the single-process path below.
        """
        report = EvalReport(stats=stats, exec=self.exec_stats)
        if group is not None:
            coord = self._evaluator._shard_coordinator()
            if coord is not None:
                from ..parallel import shardable_group

                if shardable_group(group, self._evaluator.builtins):
                    result = coord.eval_stratum(
                        group, self._interp, self._domain, report,
                        seeds=seed,
                    )
                    if result is not None:
                        return result
        return self._evaluator._fixpoint(
            clauses,
            self._interp,
            self._domain,
            report,
            seed_deltas={p: frozenset(s) for p, s in seed.items()},
        )

    # -- recompute strata --------------------------------------------------------

    def _recompute_stratum(
        self, group: StratumRules, stats: SolverStats
    ) -> Events:
        """Clear and re-evaluate one stratum against maintained lower strata."""
        add_events: dict[str, set[Atom]] = {}
        rem_events: dict[str, set[Atom]] = {}
        for p in group.head_preds:
            cleared = set(self._interp.facts_of(p))
            for a in cleared:
                self._interp.remove(a)
            if cleared:
                rem_events[p] = cleared
            for a in self.database.facts_of(p):
                if self._interp.add(a):
                    self._domain.note_atom(a)
                    add_events.setdefault(p, set()).add(a)
        grouping = [
            c for c in group.clauses if isinstance(c, GroupingClause)
        ]
        normal = [c for c in group.clauses if isinstance(c, LPSClause)]
        ereport = EvalReport(stats=stats, exec=self.exec_stats)
        for g in grouping:
            grouped = self._evaluator._apply_grouping(
                g, self._interp, self._domain, ereport
            )
            if grouped:
                add_events.setdefault(g.pred, set()).update(grouped)
        closure = self._evaluator._fixpoint(
            normal, self._interp, self._domain, ereport
        )
        for p, s in closure.items():
            add_events.setdefault(p, set()).update(s)
        return add_events, rem_events


# ---------------------------------------------------------------------------
# Versioned publication: snapshot-isolated reads over a maintained model
# ---------------------------------------------------------------------------

class RetiredVersionError(EvaluationError):
    """The requested snapshot version is no longer resolvable.

    Raised by :meth:`VersionedModel.at` when a reader asks for a version
    the registry has already retired (older than ``keep_versions`` and not
    pinned by any session).  The error is *per-request*: the shared model
    and every still-registered snapshot are unaffected.
    """


@dataclass(frozen=True)
class ModelSnapshot:
    """One published version: an immutable view of the maintained model.

    ``interpretation`` and ``database`` are frozen copy-on-write snapshots
    (see :meth:`Interpretation.snapshot`), so holding a ``ModelSnapshot``
    is O(#predicates) and reading it never blocks — or observes — the
    writer.  ``report`` is the maintenance report of the delta that
    produced this version (``None`` for version 0).
    """

    version: int
    interpretation: Interpretation
    database: Database
    report: Optional[MaintenanceReport] = None

    def holds(self, a: Atom) -> bool:
        from ..core.formulas import evaluate_ground_atom

        return evaluate_ground_atom(a, self.interpretation.holds)

    def query(self, pattern: Atom) -> Iterator[Subst]:
        """All substitutions matching a pattern atom, in deterministic order."""
        from ..core.atoms import atom_order_key

        for f in sorted(
            self.interpretation.facts_of(pattern.pred), key=atom_order_key
        ):
            yield from match_atom(pattern, f)

    def relation(self, pred: str) -> set[tuple]:
        from .database import from_term

        return {
            tuple(from_term(t) for t in a.args)
            for a in self.interpretation.facts_of(pred)
        }

    def pretty(self) -> str:
        return self.interpretation.pretty()

    def __len__(self) -> int:
        return len(self.interpretation)


class VersionedModel:
    """A :class:`MaterializedModel` behind a single-writer / multi-reader
    snapshot discipline.

    * **One writer at a time.**  :meth:`apply_delta` (and
      :meth:`replace_program`) serialize on the write lock; each successful
      call publishes a new :class:`ModelSnapshot` with the next version
      number by a single attribute store (atomic under the GIL), so readers
      never observe a half-applied batch.
    * **Readers never lock.**  :attr:`current` is a plain attribute read;
      queries run against the frozen snapshot while the writer mutates its
      copy-on-write working state.
    * **Version registry.**  The last ``keep_versions`` snapshots stay
      resolvable through :meth:`at` for time-travel reads; sessions can
      :meth:`pin` a version to keep it alive past that window.  Asking for
      anything older raises :class:`RetiredVersionError`.
    """

    def __init__(
        self,
        program: Program,
        database: Optional[Database] = None,
        builtins: Mapping[str, Builtin] = DEFAULT_BUILTINS,
        options: Optional[EvalOptions] = None,
        keep_versions: int = 8,
        base_version: int = 0,
    ) -> None:
        if keep_versions < 1:
            raise ValueError("keep_versions must be >= 1")
        if base_version < 0:
            raise ValueError("base_version must be >= 0")
        self._lock = threading.RLock()
        #: Notified (under the write lock) every time a new version is
        #: published — the commit-wakeup primitive behind
        #: :meth:`wait_version` and the subscription dispatcher.
        self._version_cond = threading.Condition(self._lock)
        #: ``fn(snapshot)`` callbacks invoked under the write lock at every
        #: publication, in registration order.  Listeners must be cheap and
        #: non-blocking (enqueue-and-return); registering under
        #: :attr:`lock` makes the handoff gap-free: every version published
        #: after registration is observed exactly once.
        self._version_listeners: list[Callable[[ModelSnapshot], None]] = []
        self._keep = keep_versions
        self._materialized = MaterializedModel(
            program, database, builtins=builtins, options=options
        )
        self._pins: dict[int, int] = {}
        self._snapshots: dict[int, ModelSnapshot] = {}
        # ``base_version`` lets durable recovery resume the pre-crash
        # numbering: the initial publication becomes ``base_version + 1``
        # (the version the recovered checkpoint was taken at), so version
        # numbers stay monotone across restarts.
        self._version = base_version
        self.current: ModelSnapshot = self._publish(None)

    # -- read side ---------------------------------------------------------------

    @property
    def version(self) -> int:
        """The latest published version number."""
        return self.current.version

    @property
    def lock(self) -> threading.RLock:
        """The write lock (reentrant; for multi-step writer transactions)."""
        return self._lock

    @property
    def program(self) -> Program:
        return self._materialized.program

    @property
    def options(self) -> EvalOptions:
        return self._materialized.options

    @property
    def builtins(self) -> Mapping[str, Builtin]:
        return self._materialized.builtins

    def at(self, version: int) -> ModelSnapshot:
        """The snapshot published as ``version``.

        Raises :class:`RetiredVersionError` when that version has been
        retired (or never existed yet).
        """
        snap = self._snapshots.get(version)   # atomic lock-free fast path
        if snap is None:
            # Build the error under the lock: enumerating the registry
            # while the writer retires entries would race.
            with self._lock:
                snap = self._snapshots.get(version)
                if snap is None:
                    raise RetiredVersionError(
                        f"version {version} is retired or unknown "
                        f"(live: {sorted(self._snapshots)})"
                    )
        return snap

    def wait_version(
        self, version: int, timeout: Optional[float] = None
    ) -> int:
        """Block until the published version reaches ``version``.

        Returns the latest published version — ``>= version`` on success,
        smaller if the timeout expired first.  The wait parks on a
        condition variable notified at publication; no polling.
        """
        with self._version_cond:
            if timeout is None:
                while self.current.version < version:
                    self._version_cond.wait()
            else:
                deadline = time.monotonic() + max(0.0, timeout)
                while self.current.version < version:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._version_cond.wait(remaining)
            return self.current.version

    def add_version_listener(
        self, fn: Callable[[ModelSnapshot], None]
    ) -> None:
        """Register ``fn(snapshot)``, called at every publication.

        The callback runs on the writer thread under the write lock, so it
        must only hand the snapshot off (append to a queue, set an event)
        and return.  Acquire :attr:`lock` around ``add_version_listener``
        plus a read of :attr:`current` for a gap-free subscription: every
        later version is delivered exactly once, in order.
        """
        with self._lock:
            if fn not in self._version_listeners:
                self._version_listeners.append(fn)

    def remove_version_listener(
        self, fn: Callable[[ModelSnapshot], None]
    ) -> None:
        with self._lock:
            try:
                self._version_listeners.remove(fn)
            except ValueError:
                pass

    def pin(self, version: Optional[int] = None) -> ModelSnapshot:
        """Resolve and pin a version so it survives retirement."""
        with self._lock:
            snap = self.current if version is None else self.at(version)
            self._pins[snap.version] = self._pins.get(snap.version, 0) + 1
            return snap

    def release(self, version: int) -> None:
        """Undo one :meth:`pin`; retires the version if now out of window."""
        with self._lock:
            n = self._pins.get(version, 0)
            if n <= 1:
                self._pins.pop(version, None)
            else:
                self._pins[version] = n - 1
            self._retire()

    # -- write side --------------------------------------------------------------

    def apply_delta(
        self, adds: Iterable[Any] = (), dels: Iterable[Any] = ()
    ) -> ModelSnapshot:
        """Serialize one maintenance batch and publish the next version.

        Returns the snapshot that includes the batch.  A failed batch
        (bad fact spec, resource limit) publishes nothing: the previous
        snapshot stays current and the maintained state is unchanged or
        fully recomputed by :class:`MaterializedModel`'s own guards.
        """
        with self._lock:
            report = self._materialized.apply_delta(adds=adds, dels=dels)
            if report.strategy == STRATEGY_NOOP:
                return self.current
            return self._publish(report)

    def add(self, *spec: Any) -> ModelSnapshot:
        return self.apply_delta(adds=[_one_fact(spec)])

    def retract(self, *spec: Any) -> ModelSnapshot:
        return self.apply_delta(dels=[_one_fact(spec)])

    def replace_program(self, program: Program) -> ModelSnapshot:
        """Swap the rule program (same database), rebuild, publish."""
        with self._lock:
            db = self._materialized.database
            self._materialized = MaterializedModel(
                program,
                db,
                builtins=self._materialized.builtins,
                options=self._materialized.options,
            )
            return self._publish(self._materialized.last_report)

    @property
    def exec_stats(self) -> ExecStats:
        """The writer's aggregated executor counters (maintenance sweeps).

        Only the serialized writer mutates this; read a merged copy via
        the service layer when reader threads are active.
        """
        return self._materialized.exec_stats

    @property
    def last_report(self) -> Optional[MaintenanceReport]:
        return self._materialized.last_report

    # -- internals ---------------------------------------------------------------

    def _publish(self, report: Optional[MaintenanceReport]) -> ModelSnapshot:
        with self._lock:
            self._version += 1
            snap = ModelSnapshot(
                version=self._version,
                interpretation=self._materialized.interpretation.snapshot(),
                database=self._materialized.database.snapshot(),
                report=report,
            )
            self._snapshots[snap.version] = snap
            self.current = snap  # atomic publication point
            self._retire()
            for fn in tuple(self._version_listeners):
                # A broken listener must not poison the writer; the
                # subscription layer reports its own failures per-query.
                try:
                    fn(snap)
                except Exception:
                    pass
            self._version_cond.notify_all()
            return snap

    def _retire(self) -> None:
        horizon = self._version - self._keep + 1
        for v in [v for v in self._snapshots if v < horizon]:
            if v not in self._pins:
                del self._snapshots[v]
