"""Set-operation builtins: the languages ``L + union`` and ``L + scons``.

Definition 15 of the paper extends a logic ``L`` with a predicate
``union(x, y, z)`` interpreted as ``z = x ∪ y``, or with ``scons(x, y, z)``
interpreted as ``z = {x} ∪ y``; Theorem 10 proves ELPS ≡ Horn + union ≡
Horn + scons.  To make those Horn languages *executable* this module
provides ``union`` and ``scons`` as evaluable predicates with full
(finitely enumerable) binding modes:

``union(X, Y, Z)``:
    * X, Y bound        → Z = X ∪ Y (one answer);
    * Z bound           → all decompositions Z = X ∪ Y, i.e. pairs of
      subsets covering Z — there are 3^|Z| of them (each element goes to
      X only, Y only, or both), capped by :data:`MAX_DECOMP_WIDTH`;
    * X, Z bound        → all Y with X ∪ Y = Z (requires X ⊆ Z; Y ranges
      over Z∖X ∪ (any subset of X)); symmetric for Y, Z bound.

``scons(x, Y, Z)``:
    * x, Y bound        → Z = {x} ∪ Y;
    * Z bound           → for each x ∈ Z, Y ∈ {Z∖{x}, Z};
    * x, Z bound        → Y ∈ {Z∖{x}, Z} if x ∈ Z.

``choose_min(x, Y, Z)``:
    A *deterministic* scons-inverse: for bound Z ≠ ∅ it yields exactly
    ``x = min(Z)``, ``Y = Z∖{x}`` (by the canonical term order).  Not part
    of the paper's language; it gives the Example 5/6 recursions a
    linear-size derivation strategy (the paper's disjoint-union recursion
    admits any decomposition; ``choose_min`` fixes one).

``setdiff(X, Y, Z)`` / ``intersect(X, Y, Z)``:
    Convenience operations with all-but-output bound.

``subset_enum(X, Y)``:
    With Y bound, enumerates every subset X of Y (2^|Y|, capped).  Used by
    the Section 4.2 set-construction benchmarks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from ..core.errors import EvaluationError
from ..core.substitution import Subst
from ..core.terms import SetValue, Term, order_key, setvalue
from ..core.unify import unify
from .builtins import Builtin, default_builtins

#: Cap on |Z| for decomposition modes (3^|Z| / 2^|Z| answers).
MAX_DECOMP_WIDTH = 16


def _as_set(t: Term) -> SetValue | None:
    return t if isinstance(t, SetValue) else None


def _check_decomp(n: int) -> None:
    if n > MAX_DECOMP_WIDTH:
        raise EvaluationError(
            f"set decomposition over a set of {n} elements exceeds "
            f"MAX_DECOMP_WIDTH={MAX_DECOMP_WIDTH}"
        )


@dataclass
class UnionBuiltin(Builtin):
    """``union(X, Y, Z)`` ⇔ Z = X ∪ Y (Definition 15(1))."""

    name: str = "union"
    arity: int = 3

    def ready(self, args: Sequence[Term]) -> bool:
        x, y, z = args
        if x.is_ground() and y.is_ground():
            return isinstance(x, SetValue) or isinstance(y, SetValue) or z.is_ground()
        if isinstance(z, SetValue):
            return True
        return False

    def solve(self, args: Sequence[Term], env: Subst) -> Iterator[Subst]:
        x, y, z = args
        sx, sy, sz = _as_set(x), _as_set(y), _as_set(z)
        if sx is not None and sy is not None:
            result = setvalue(tuple(sx.elems) + tuple(sy.elems))
            yield from unify(z, result, env)
            return
        if sz is not None and sx is not None:
            # Y with X ∪ Y = Z: need X ⊆ Z; then Y = (Z∖X) ∪ S for S ⊆ X.
            if not set(sx.elems) <= set(sz.elems):
                return
            base = tuple(e for e in sz.elems if e not in sx.elems)
            _check_decomp(len(sx.elems))
            for k in range(len(sx.elems) + 1):
                for extra in itertools.combinations(sorted(sx.elems, key=order_key), k):
                    yield from unify(y, setvalue(base + extra), env)
            return
        if sz is not None and sy is not None:
            if not set(sy.elems) <= set(sz.elems):
                return
            base = tuple(e for e in sz.elems if e not in sy.elems)
            _check_decomp(len(sy.elems))
            for k in range(len(sy.elems) + 1):
                for extra in itertools.combinations(sorted(sy.elems, key=order_key), k):
                    yield from unify(x, setvalue(base + extra), env)
            return
        if sz is not None:
            # Full decomposition: each element goes to X, Y, or both.
            elems = sz.sorted_elems()
            _check_decomp(len(elems))
            for assignment in itertools.product((0, 1, 2), repeat=len(elems)):
                xs = [e for e, a in zip(elems, assignment) if a in (0, 2)]
                ys = [e for e, a in zip(elems, assignment) if a in (1, 2)]
                for env2 in unify(x, setvalue(xs), env):
                    yield from unify(y, setvalue(ys), env2)
            return


@dataclass
class SconsBuiltin(Builtin):
    """``scons(x, Y, Z)`` ⇔ Z = {x} ∪ Y (Definition 15(2))."""

    name: str = "scons"
    arity: int = 3

    def ready(self, args: Sequence[Term]) -> bool:
        x, y, z = args
        if x.is_ground() and isinstance(y, SetValue):
            return True
        return isinstance(z, SetValue)

    def solve(self, args: Sequence[Term], env: Subst) -> Iterator[Subst]:
        x, y, z = args
        sy, sz = _as_set(y), _as_set(z)
        if x.is_ground() and sy is not None:
            result = setvalue(tuple(sy.elems) + (x,))
            yield from unify(z, result, env)
            return
        if sz is not None:
            if x.is_ground():
                if x not in sz:
                    return
                candidates_x = [x]
            else:
                candidates_x = sz.sorted_elems()
            for xe in candidates_x:
                rest = setvalue(e for e in sz.elems if e != xe)
                for env2 in unify(x, xe, env):
                    for cand_y in (rest, sz):
                        yield from unify(y, cand_y, env2)
            return


@dataclass
class ChooseMin(Builtin):
    """Deterministic decomposition: x = min(Z), Y = Z ∖ {x}, for Z ≠ ∅."""

    name: str = "choose_min"
    arity: int = 3

    def ready(self, args: Sequence[Term]) -> bool:
        return isinstance(args[2], SetValue)

    def solve(self, args: Sequence[Term], env: Subst) -> Iterator[Subst]:
        x, y, z = args
        sz = _as_set(z)
        if sz is None or not sz.elems:
            return
        first = min(sz.elems, key=order_key)
        rest = setvalue(e for e in sz.elems if e != first)
        for env2 in unify(x, first, env):
            yield from unify(y, rest, env2)


@dataclass
class SetDiff(Builtin):
    """``setdiff(X, Y, Z)`` ⇔ Z = X ∖ Y."""

    name: str = "setdiff"
    arity: int = 3

    def ready(self, args: Sequence[Term]) -> bool:
        return isinstance(args[0], SetValue) and isinstance(args[1], SetValue)

    def solve(self, args: Sequence[Term], env: Subst) -> Iterator[Subst]:
        x, y, z = args
        sx, sy = _as_set(x), _as_set(y)
        if sx is None or sy is None:
            return
        yield from unify(z, setvalue(e for e in sx.elems if e not in sy.elems), env)


@dataclass
class Intersect(Builtin):
    """``intersect(X, Y, Z)`` ⇔ Z = X ∩ Y."""

    name: str = "intersect"
    arity: int = 3

    def ready(self, args: Sequence[Term]) -> bool:
        return isinstance(args[0], SetValue) and isinstance(args[1], SetValue)

    def solve(self, args: Sequence[Term], env: Subst) -> Iterator[Subst]:
        x, y, z = args
        sx, sy = _as_set(x), _as_set(y)
        if sx is None or sy is None:
            return
        yield from unify(z, setvalue(e for e in sx.elems if e in sy.elems), env)


@dataclass
class SubsetEnum(Builtin):
    """``subset_enum(X, Y)`` — with Y bound, enumerate all subsets X ⊆ Y."""

    name: str = "subset_enum"
    arity: int = 2

    def ready(self, args: Sequence[Term]) -> bool:
        return isinstance(args[1], SetValue)

    def solve(self, args: Sequence[Term], env: Subst) -> Iterator[Subst]:
        x, y = args
        sy = _as_set(y)
        if sy is None:
            return
        elems = sy.sorted_elems()
        _check_decomp(len(elems))
        for k in range(len(elems) + 1):
            for combo in itertools.combinations(elems, k):
                yield from unify(x, setvalue(combo), env)


def set_builtins() -> dict[str, Builtin]:
    """Just the set-operation builtins."""
    out: dict[str, Builtin] = {}
    for b in (
        UnionBuiltin(),
        SconsBuiltin(),
        ChooseMin(),
        SetDiff(),
        Intersect(),
        SubsetEnum(),
    ):
        out[b.name] = b
    return out


def with_set_builtins() -> dict[str, Builtin]:
    """Default registry extended with the set operations — the engine-level
    realisation of the languages ``L + union`` / ``L + scons``."""
    registry = default_builtins()
    registry.update(set_builtins())
    return registry
