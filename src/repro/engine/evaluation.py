"""Bottom-up evaluation of LPS/ELPS programs under active-domain semantics.

This is the runtime that makes the paper executable.  It computes the least
(perfect, when negation/grouping is present) model of a program **relative
to the active domain**: the set of ground a-terms and set values occurring
in the program, the database, or anything derived so far.  For programs
whose rules are range-restricted in the usual Datalog sense the result
coincides with ``M_P`` restricted to the derivable atoms; for rules such as
``subset(X, Y) :- (∀x ∈ X)(x ∈ Y)`` — whose full extension over the
Herbrand universe is infinite — it yields the restriction of ``M_P`` to
active-domain arguments, which is the standard finiteness discipline.

Design highlights (see DESIGN.md):

* **Formula solver.**  Rule bodies are solved by a generic backtracking
  solver over body *formulas* (conjunction, disjunction, restricted
  quantifiers, negation, built-ins).  A conjunct is scheduled when it is
  *ready* (can check or generate); when nothing is ready the solver falls
  back to enumerating an unbound variable over the active domain — that
  fallback is what gives non-range-restricted rules their active-domain
  meaning, and what realises the paper's vacuous-quantifier semantics
  (``(∀x ∈ ∅)φ`` is true even when φ's other conjuncts are false).
* **Stratified evaluation.**  Strata come from ``repro.engine.stratify``;
  negative literals and LDL grouping clauses only see fully computed lower
  strata, per Section 4.2 / Section 6 of the paper.
* **Semi-naive option.**  Plain conjunctive rules are differentiated on
  their recursive body atoms; rules with quantifiers or disjunction are
  re-evaluated only when a predicate they depend on (or the active domain)
  changed.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, Optional, Sequence

from ..core.atoms import Atom, Literal
from ..core.clauses import GroupingClause, LPSClause
from ..core.errors import EvaluationError, SafetyError
from ..core.formulas import (
    AndF,
    AtomF,
    ExistsIn,
    ForallIn,
    Formula,
    NotF,
    OrF,
    TrueF,
    conj,
    evaluate,
)
from ..core.program import Program
from ..core.sorts import EQUALS, MEMBER, SORT_A, SORT_S, SORT_U, sorts_compatible
from ..core.substitution import Subst
from ..core.terms import (
    App,
    Const,
    SetExpr,
    SetValue,
    Term,
    Var,
    order_key,
    setvalue,
    subterms,
)
from ..core.atoms import atom_order_key
from ..core.unify import (
    MATCH_FAILED,
    MATCH_REFUSED,
    match_atom,
    match_atom_fast,
    unify,
)
from ..semantics.interpretation import Interpretation
from .builtins import DEFAULT_BUILTINS, Builtin
from .database import Database, from_term
from .columnar import make_executor
from .executor import Executor, PlanInapplicable
from .ir import ExecStats, GroupBy, PlanNode
from .planner import CompiledPlan, compile_grouping, compile_rule, head_plan
from .stratify import Stratification, stratify

#: Default bound on fixpoint rounds (a safety net, not a semantic limit).
DEFAULT_MAX_ROUNDS = 100_000

#: Default bound on the number of domain-fallback enumerations per rule
#: application round; ``None`` disables the check.
DEFAULT_FALLBACK_LIMIT = 5_000_000



class ActiveDomain:
    """The growing two-sorted active domain.

    ``atoms`` are ground sort-a terms, ``sets`` ground set values.  The
    empty set is always a member (Definition 4 makes ``∅`` semantically
    load-bearing).  ``version`` increments whenever the carriers grow, so
    the evaluator can detect domain growth cheaply.
    """

    def __init__(self) -> None:
        self._atoms: dict[Term, None] = {}
        self._sets: dict[SetValue, None] = {setvalue(()): None}
        self.version = 0
        self._carrier_cache: dict[str, tuple[int, list[Term]]] = {}
        self._noted: dict[Term, None] = {}

    def note_term(self, t: Term) -> None:
        # The domain only grows, so noting a term is idempotent — and terms
        # are interned with cached hashes, so one dict probe replaces the
        # subterm walk for every repeat (fact columns repeat constants
        # heavily; this is the hot path of bulk fact loading).
        if t in self._noted:
            return
        self._noted[t] = None
        for s in subterms(t):
            if isinstance(s, SetValue):
                if s not in self._sets:
                    self._sets[s] = None
                    self.version += 1
            elif isinstance(s, (Const, App)) and s.is_ground():
                if s not in self._atoms:
                    self._atoms[s] = None
                    self.version += 1

    def note_atom(self, a: Atom) -> None:
        for t in a.args:
            self.note_term(t)

    def carrier(self, sort: str) -> list[Term]:
        """The carrier list of a sort, cached per domain version.

        Callers must treat the returned list as read-only; fallback
        enumeration asks for carriers far more often than the domain grows.
        """
        cached = self._carrier_cache.get(sort)
        if cached is not None and cached[0] == self.version:
            return cached[1]
        if sort == SORT_A:
            out: list[Term] = list(self._atoms)
        elif sort == SORT_S:
            out = list(self._sets)
        elif sort == SORT_U:
            out = list(self._atoms) + list(self._sets)
        else:
            raise EvaluationError(f"unknown sort {sort!r}")
        self._carrier_cache[sort] = (self.version, out)
        return out

    def carrier_size(self, sort: str) -> int:
        if sort == SORT_A:
            return len(self._atoms)
        if sort == SORT_S:
            return len(self._sets)
        if sort == SORT_U:
            return len(self._atoms) + len(self._sets)
        raise EvaluationError(f"unknown sort {sort!r}")

    @property
    def n_atoms(self) -> int:
        return len(self._atoms)

    @property
    def n_sets(self) -> int:
        return len(self._sets)


@dataclass
class SolverStats:
    """Counters exposed for benchmarks and the safety tests.

    A ``SolverStats`` is single-threaded state: every solver instance gets
    its own (or an explicitly shared one from a single-threaded caller).
    Concurrent consumers (the query service) keep one per session and
    combine them with :meth:`merge` on read, never sharing a live instance
    across threads.
    """

    matches: int = 0
    fallbacks: int = 0
    fallback_bindings: int = 0
    derivations: int = 0

    def merge(self, other: "SolverStats") -> None:
        """Fold another stats object into this one (counter-wise sum)."""
        self.matches += other.matches
        self.fallbacks += other.fallbacks
        self.fallback_bindings += other.fallback_bindings
        self.derivations += other.derivations


class Solver:
    """Backtracking solver for body formulas against an interpretation.

    ``solve(f, env)`` yields extensions of ``env`` that bind **all** free
    variables of ``f`` and make ``f`` true.  Bindings created for variables
    the formula does not constrain come from the active domain (see module
    docstring).
    """

    def __init__(
        self,
        interp: Interpretation,
        domain: ActiveDomain,
        builtins: Mapping[str, Builtin] = DEFAULT_BUILTINS,
        allow_fallback: bool = True,
        fallback_limit: Optional[int] = DEFAULT_FALLBACK_LIMIT,
        stats: Optional[SolverStats] = None,
        delta: Optional[Mapping[str, frozenset[Atom]]] = None,
        use_indexes: bool = True,
        plan_joins: bool = True,
    ) -> None:
        self.interp = interp
        self.domain = domain
        self.builtins = builtins
        self.allow_fallback = allow_fallback
        self.fallback_limit = fallback_limit
        self.stats = stats if stats is not None else SolverStats()
        self.delta = delta
        self.use_indexes = use_indexes
        self.plan_joins = plan_joins
        # Memoized restricted-quantifier unfoldings, keyed by (formula,
        # ground range set): the expansion is the same for every candidate
        # binding, so re-substituting per solver step is pure waste.
        self._forall_cache: dict[tuple, Formula] = {}
        self._exists_cache: dict[tuple, list[Formula]] = {}

    # -- public entry -----------------------------------------------------------

    def solve(
        self, f: Formula, env: Subst = Subst(), fv=None
    ) -> Iterator[Subst]:
        if fv is None:
            fv = f.free_vars()
        for out in self._solve(f, env):
            yield from self._complete_fv(f, fv, out)

    # -- helpers ----------------------------------------------------------------

    def _unbound(self, f: Formula, env: Subst) -> list[Var]:
        return sorted(
            (v for v in f.free_vars() if v not in env),
            key=lambda v: (v.sort, v.name),
        )

    def _complete_fv(
        self, f: Formula, fv: Iterable[Var], env: Subst
    ) -> Iterator[Subst]:
        """Like :meth:`_complete` with the free variables precomputed."""
        emap = env._map
        missing = [v for v in fv if v not in emap]
        if not missing:
            yield env
            return
        missing.sort(key=lambda v: (v.var_sort, v.name))
        self._require_fallback(missing, f)
        carriers = [self.domain.carrier(v.sort) for v in missing]
        total = 1
        for c in carriers:
            total *= max(len(c), 1)
        self._charge_fallback(total)
        for combo in itertools.product(*carriers):
            yield env.extend(dict(zip(missing, combo)))

    def _require_fallback(self, variables: Sequence[Var], f: Formula) -> None:
        if not self.allow_fallback:
            raise SafetyError(
                f"rule body {f} leaves variables {[str(v) for v in variables]} "
                "unconstrained; active-domain enumeration is disabled "
                "(allow_fallback=False)"
            )
        self.stats.fallbacks += 1

    def _charge_fallback(self, n: int) -> None:
        self.stats.fallback_bindings += n
        if self.fallback_limit is not None and (
            self.stats.fallback_bindings > self.fallback_limit
        ):
            raise EvaluationError(
                "active-domain fallback exceeded fallback_limit="
                f"{self.fallback_limit}; the program is likely not "
                "range-restricted enough for this database"
            )

    # -- readiness / priority -----------------------------------------------------

    def _priority(
        self, f: Formula, env: Subst, fv: Optional[Iterable[Var]] = None
    ) -> Optional[tuple]:
        """Scheduling priority (lower = sooner); ``None`` = not ready.

        For relational atoms the second component is an **estimated result
        cardinality** taken from the argument indexes (the exact size of the
        index bucket the join step would scan), so conjunctions are joined
        smallest-relation-first instead of most-bound-first.  This is the
        boundness-driven join planner of DESIGN.md; disable with
        ``plan_joins=False`` to fall back to the bound-argument heuristic.
        """
        if fv is None:
            fv = f.free_vars()
        unbound = sum(1 for v in fv if v not in env)
        if isinstance(f, TrueF):
            return (0, 0)
        if unbound == 0:
            # Pure check; NotF is only evaluable at this point.
            if isinstance(f, NotF):
                return (0, 0)
            return (0, 1)
        if isinstance(f, NotF):
            return None
        if isinstance(f, AtomF):
            a = f.atom
            if a.pred == EQUALS:
                l, r = (env.apply(t) for t in a.args)
                if l.is_ground() or r.is_ground():
                    return (1, unbound)
                return None
            if a.pred in self.builtins:
                args = tuple(env.apply(t) for t in a.args)
                if self.builtins[a.pred].ready(args):
                    return (2, unbound)
                return None
            if a.pred == MEMBER:
                container = env.apply(a.args[1])
                if isinstance(container, SetValue):
                    return (3, unbound)
                return None
            # Relational atom: join-plan by estimated selectivity.
            args = [env.apply(t) for t in a.args]
            bound_pos = tuple(
                i for i, t in enumerate(args)
                if not isinstance(t, SetExpr) and t.is_ground()
            )
            if not self.plan_joins:
                return (4, 0, -len(bound_pos), unbound)
            est = self._estimate(a.pred, args, bound_pos)
            return (4, est, -len(bound_pos), unbound)
        if isinstance(f, ExistsIn):
            if isinstance(env.apply(f.source), SetValue):
                return (5, unbound)
            return None
        if isinstance(f, (AndF, OrF)):
            return (6, unbound)
        if isinstance(f, ForallIn):
            if isinstance(env.apply(f.source), SetValue):
                return (7, unbound)
            return None
        return None

    def _estimate(
        self, pred: str, args: Sequence[Term], bound_pos: tuple[int, ...]
    ) -> int:
        """Candidate-count estimate for a relational conjunct under ``env``
        (the size of the index bucket :meth:`_candidates` would scan)."""
        if self.delta is not None and pred in self.delta:
            return len(self.delta[pred])
        if not bound_pos:
            return len(self.interp.facts_of(pred))
        return self.interp.estimate_for_pattern(pred, args, self.use_indexes)

    # -- dispatch ---------------------------------------------------------------

    def _solve(self, f: Formula, env: Subst) -> Iterator[Subst]:
        if isinstance(f, TrueF):
            yield env
        elif isinstance(f, AtomF):
            yield from self._solve_atom(f.atom, env)
        elif isinstance(f, NotF):
            yield from self._solve_not(f, env)
        elif isinstance(f, AndF):
            yield from self._solve_and(list(f.parts), env)
        elif isinstance(f, OrF):
            yield from self._solve_or(f, env)
        elif isinstance(f, ExistsIn):
            yield from self._solve_exists(f, env)
        elif isinstance(f, ForallIn):
            yield from self._solve_forall(f, env)
        else:  # pragma: no cover - defensive
            raise EvaluationError(f"cannot solve formula {f!r}")

    # -- atoms ------------------------------------------------------------------

    def _solve_atom(self, a: Atom, env: Subst) -> Iterator[Subst]:
        if a.pred == EQUALS:
            l, r = env.apply(a.args[0]), env.apply(a.args[1])
            if not (l.is_ground() or r.is_ground()):
                yield from self._solve_by_fallback(AtomF(a), env)
                return
            yield from unify(l, r, env)
            return
        if a.pred in self.builtins:
            b = self.builtins[a.pred]
            args = tuple(env.apply(t) for t in a.args)
            if len(args) != b.arity:
                raise EvaluationError(
                    f"builtin {a.pred!r} used with arity {len(args)}"
                )
            if b.ready(args):
                yield from b.solve(args, env)
            else:
                yield from self._solve_by_fallback(AtomF(a), env)
            return
        if a.pred == MEMBER:
            elem, container = env.apply(a.args[0]), env.apply(a.args[1])
            if isinstance(container, SetValue):
                cls = elem.__class__
                if cls is Var:
                    # Deterministic generate: one binding per element.
                    emap = env._map
                    sort = elem.var_sort
                    for e in container.sorted_elems():
                        if sorts_compatible(sort, e.sort):
                            new = dict(emap)
                            new[elem] = e
                            yield Subst._make(new)
                elif cls is not SetExpr and elem.is_ground():
                    if elem in container.elems:
                        yield env
                else:
                    for e in container.sorted_elems():
                        yield from unify(elem, e, env)
            else:
                yield from self._solve_by_fallback(AtomF(a), env)
            return
        yield from self._match_facts(a, env)

    def _match_facts(self, a: Atom, env: Subst) -> Iterator[Subst]:
        pattern = a.substitute(env)
        facts: Iterable[Atom]
        if self.delta is not None and a.pred in self.delta:
            facts = self.delta[a.pred]
        else:
            facts = self._candidates(pattern)
        stats = self.stats
        arity = pattern.arity
        for f in facts:
            stats.matches += 1
            if f.arity != arity:
                continue
            out = match_atom_fast(pattern, f, env)
            if out is MATCH_FAILED:
                continue
            if out is MATCH_REFUSED:
                yield from match_atom(pattern, f, env)
            else:
                yield out

    def _candidates(self, pattern: Atom) -> Iterable[Atom]:
        """Fact candidates via the interpretation's incremental indexes.

        The index is owned by the :class:`Interpretation` and maintained as
        facts are added, so it is shared between rounds, rules and solver
        instances instead of being rebuilt whenever the relation grows.
        With several bound positions the shared policy picks the **most
        selective** single bound position (comparing bucket sizes) rather
        than committing to a per-signature composite index — see
        :meth:`Interpretation.candidates_for_pattern`.
        """
        return self.interp.candidates_for_pattern(
            pattern.pred, pattern.args, self.use_indexes
        )

    def _solve_by_fallback(self, f: Formula, env: Subst) -> Iterator[Subst]:
        """Enumerate one unbound variable and retry (used when stuck)."""
        unbound = self._unbound(f, env)
        if not unbound:
            return
        self._require_fallback(unbound[:1], f)
        v = min(unbound, key=lambda u: self.domain.carrier_size(u.sort))
        carrier = self.domain.carrier(v.sort)
        self._charge_fallback(len(carrier))
        for value in carrier:
            yield from self._solve(f, env.bind(v, value))

    # -- compound formulas ---------------------------------------------------------

    def _solve_not(self, f: NotF, env: Subst) -> Iterator[Subst]:
        if self._unbound(f, env):
            yield from self._solve_by_fallback(f, env)
            return
        if not self._holds_closed(f.sub, env):
            yield env

    def _holds_closed(self, f: Formula, env: Subst) -> bool:
        closed = f.substitute(env)
        return evaluate(closed, self._oracle)

    def _oracle(self, a: Atom) -> bool:
        if a.pred in self.builtins:
            b = self.builtins[a.pred]
            return next(iter(b.solve(a.args, Subst())), None) is not None
        return self.interp.holds(a)

    def _solve_and(self, parts: list[Formula], env: Subst) -> Iterator[Subst]:
        # Free variables per conjunct are computed once for the whole
        # conjunction chain; only env membership changes while joining.
        yield from self._solve_and_fv(
            [(p, p.free_vars()) for p in parts], env
        )

    def _solve_and_fv(
        self, parts: list[tuple[Formula, Iterable[Var]]], env: Subst
    ) -> Iterator[Subst]:
        if not parts:
            yield env
            return
        best_i: Optional[int] = None
        best_p: Optional[tuple] = None
        for i, (p, fv) in enumerate(parts):
            pr = self._priority(p, env, fv)
            if pr is not None and (best_p is None or pr < best_p):
                best_i, best_p = i, pr
        if best_i is None:
            # Nothing ready: bind one variable from the domain and retry.
            all_vars: set[Var] = set()
            for p, fv in parts:
                all_vars |= {v for v in fv if v not in env}
            if not all_vars:
                # All parts ground yet none "ready" — cannot happen, since
                # ground formulas always have priority 0.
                raise EvaluationError("scheduler stuck on ground conjunction")
            self._require_fallback(
                sorted(all_vars, key=str)[:1],
                AndF(tuple(p for p, _ in parts)),
            )
            v = min(
                all_vars,
                key=lambda u: (self.domain.carrier_size(u.sort), u.name),
            )
            carrier = self.domain.carrier(v.sort)
            self._charge_fallback(len(carrier))
            for value in carrier:
                yield from self._solve_and_fv(parts, env.bind(v, value))
            return
        chosen = parts[best_i][0]
        rest = parts[:best_i] + parts[best_i + 1:]
        for env2 in self._solve(chosen, env):
            yield from self._solve_and_fv(rest, env2)

    def _solve_or(self, f: OrF, env: Subst) -> Iterator[Subst]:
        seen: set[Subst] = set()
        fv = f.free_vars()
        for part in f.parts:
            for env2 in self._solve(part, env):
                for env3 in self._complete_fv(f, fv, env2):
                    key = env3.restrict(fv)
                    if key not in seen:
                        seen.add(key)
                        yield env3

    def _solve_exists(self, f: ExistsIn, env: Subst) -> Iterator[Subst]:
        source = env.apply(f.source)
        if not isinstance(source, SetValue):
            yield from self._solve_by_fallback(f, env)
            return
        seen: set[Subst] = set()
        fv = f.free_vars()
        cache_key = (f, source)
        bodies = self._exists_cache.get(cache_key)
        if bodies is None:
            bodies = [
                f.body.substitute(Subst._checked({f.var: e}))
                for e in source.sorted_elems()
            ]
            self._exists_cache[cache_key] = bodies
        for body in bodies:
            for env2 in self._solve(body, env):
                key = env2.restrict(fv)
                if key not in seen:
                    seen.add(key)
                    yield env2

    def _solve_forall(self, f: ForallIn, env: Subst) -> Iterator[Subst]:
        source = env.apply(f.source)
        if not isinstance(source, SetValue):
            yield from self._solve_by_fallback(f, env)
            return
        cache_key = (f, source)
        expansion = self._forall_cache.get(cache_key)
        if expansion is None:
            expansion = conj(*(
                f.body.substitute(Subst._checked({f.var: e}))
                for e in source.sorted_elems()
            ))
            self._forall_cache[cache_key] = expansion
        yield from self._solve(expansion, env)


# ---------------------------------------------------------------------------
# The evaluator
# ---------------------------------------------------------------------------

def _default_columnar() -> bool:
    """Columnar mode defaults on; ``REPRO_COLUMNAR=0`` (or false/no/off)
    turns it off process-wide — the row-executor escape hatch for tests,
    benchmarking baselines, and bisecting."""
    return os.environ.get("REPRO_COLUMNAR", "1").strip().lower() not in (
        "0", "false", "no", "off"
    )


@dataclass
class EvalOptions:
    """Evaluator knobs.

    ``semi_naive``      — differentiate plain conjunctive rules on deltas.
    ``allow_fallback``  — permit active-domain enumeration for unconstrained
                          variables (the paper's semantics needs it; turn off
                          to enforce Datalog-style range restriction).
    ``fallback_limit``  — abort if fallback enumerations exceed this many
                          candidate bindings (per run).
    ``max_rounds``      — abort runaway fixpoints.
    ``use_indexes``     — consult the interpretation's incremental argument
                          indexes when matching facts (off = linear scans;
                          semantics-identical, for testing and measurement).
    ``plan_joins``      — order conjuncts by estimated selectivity from the
                          indexes (off = bound-argument-count heuristic).
    ``compile_plans``   — compile plain conjunctive rule bodies to
                          relational-algebra plans executed set-at-a-time
                          (see DESIGN.md, "Plan IR and executor"); bodies
                          the planner cannot schedule — and any rule
                          application whose static predictions fail on
                          real values — run on the tuple-at-a-time solver,
                          so the model is bit-identical either way.
    ``columnar``        — run capable plan operators on dense term-ID
                          columns instead of term-object rows (see
                          DESIGN.md, "Columnar execution"); per-node
                          fallback keeps type-sensitive operators on the
                          row executor, so results stay bit-identical.
                          Default from ``REPRO_COLUMNAR`` (on unless the
                          env var is ``0``/``false``/``no``/``off``).
                          Only meaningful with ``compile_plans``.
    ``shards``          — evaluate recursive conjunctive strata across this
                          many worker processes (see DESIGN.md, "Sharded
                          parallel evaluation"); ``<= 1`` or any stratum
                          the partitioner cannot prove safe falls back to
                          the single-process fixpoint, so the model is
                          bit-identical at every shard count.
    """

    semi_naive: bool = True
    allow_fallback: bool = True
    fallback_limit: Optional[int] = DEFAULT_FALLBACK_LIMIT
    max_rounds: int = DEFAULT_MAX_ROUNDS
    track_provenance: bool = False
    use_indexes: bool = True
    plan_joins: bool = True
    compile_plans: bool = True
    columnar: bool = field(default_factory=lambda: _default_columnar())
    shards: int = 1


@dataclass
class EvalReport:
    """Execution statistics for benchmarks and EXPERIMENTS.md."""

    rounds: int = 0
    derived: int = 0
    strata: int = 0
    passes: int = 0
    rule_applications: int = 0
    stats: SolverStats = field(default_factory=SolverStats)
    exec: ExecStats = field(default_factory=ExecStats)


class Model:
    """The computed (perfect) model plus query helpers."""

    def __init__(
        self,
        interp: Interpretation,
        report: EvalReport,
        provenance=None,
    ) -> None:
        self._interp = interp
        self.report = report
        self._provenance = provenance

    def explain(self, a: Atom, max_depth: int = 50):
        """Derivation tree for a ground atom (requires
        ``EvalOptions(track_provenance=True)``)."""
        if self._provenance is None:
            raise EvaluationError(
                "provenance was not tracked; evaluate with "
                "EvalOptions(track_provenance=True)"
            )
        if not self.holds(a):
            raise EvaluationError(f"{a} is not in the model")
        return self._provenance.explain(a, max_depth=max_depth)

    def explain_str(self, text: str, max_depth: int = 50) -> str:
        """Parse a ground atom and render its derivation tree."""
        from ..lang import parse_atom

        return self.explain(parse_atom(text), max_depth=max_depth).pretty()

    @property
    def interpretation(self) -> Interpretation:
        return self._interp

    def holds(self, a: Atom) -> bool:
        """Whether a ground atom is in the model (specials structurally)."""
        from ..core.formulas import evaluate_ground_atom

        return evaluate_ground_atom(a, self._interp.holds)

    def holds_str(self, text: str) -> bool:
        """Parse and test a ground atom, e.g. ``model.holds_str("p(a, {b})")``."""
        from ..lang import parse_atom

        return self.holds(parse_atom(text))

    def query(self, pattern: Atom) -> Iterator[Subst]:
        """All substitutions matching a pattern atom against the model."""
        for f in sorted(self._interp.facts_of(pattern.pred), key=atom_order_key):
            yield from match_atom(pattern, f)

    def query_str(self, text: str) -> list[dict[str, Any]]:
        """Parse a pattern and return bindings as Python values."""
        from ..lang import parse_atom

        pattern = parse_atom(text)
        out = []
        for theta in self.query(pattern):
            out.append({v.name: from_term(t) for v, t in theta.items()})
        return out

    def relation(self, pred: str) -> set[tuple]:
        """A predicate's extension as Python-value tuples."""
        return {
            tuple(from_term(t) for t in a.args)
            for a in self._interp.by_pred(pred)
        }

    def __len__(self) -> int:
        return len(self._interp)

    def __contains__(self, a: Atom) -> bool:
        return self.holds(a)

    def pretty(self) -> str:
        return self._interp.pretty()


class Evaluator:
    """Stratified bottom-up evaluator (naive or semi-naive)."""

    def __init__(
        self,
        program: Program,
        database: Optional[Database] = None,
        builtins: Mapping[str, Builtin] = DEFAULT_BUILTINS,
        options: Optional[EvalOptions] = None,
    ) -> None:
        self.program = program
        self.database = database
        self.builtins = builtins
        self.options = options or EvalOptions()
        program.validate()
        self._check_builtin_heads()
        self.stratification: Stratification = stratify(
            program, ignore=set(builtins)
        )
        #: grouping clause -> compiled body plan (keyed with plan_joins).
        self._grouping_plans: dict[tuple, CompiledPlan] = {}
        #: lazy ShardCoordinator (options.shards > 1 only); once sharding
        #: proves unavailable for this evaluator it stays off.
        self._coordinator = None
        self._sharding_unavailable = False

    def _check_builtin_heads(self) -> None:
        for c in self.program.clauses:
            head_pred = c.head.pred if isinstance(c, LPSClause) else c.pred
            if head_pred in self.builtins:
                raise EvaluationError(
                    f"clause head uses builtin predicate {head_pred!r}"
                )

    # -- sharding ----------------------------------------------------------------

    def _shard_coordinator(self):
        """The worker pool, spawned on first use — or ``None`` whenever
        this evaluator's configuration cannot shard (then the single-
        process path below is the only path, as before)."""
        if self._sharding_unavailable:
            return None
        if self._coordinator is not None:
            if self._coordinator.broken:
                self._sharding_unavailable = True
                return None
            return self._coordinator
        o = self.options
        if o.shards <= 1 or o.track_provenance or not o.semi_naive:
            self._sharding_unavailable = True
            return None
        from ..parallel import ShardCoordinator, builtin_profile

        profile = builtin_profile(self.builtins)
        if profile is None:
            self._sharding_unavailable = True
            return None
        try:
            self._coordinator = ShardCoordinator(
                self.program, o.shards, o, profile
            )
        except Exception:
            self._sharding_unavailable = True
            return None
        return self._coordinator

    def close(self) -> None:
        """Shut down shard workers, if any were spawned."""
        if self._coordinator is not None:
            self._coordinator.close()
            self._coordinator = None

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    # -- main loop ---------------------------------------------------------------

    def run(self) -> Model:
        """Evaluate to the perfect model over the (stabilised) active domain.

        Stratified evaluation assumes the domain is fixed, but derived set
        values (grouping results, head constructors, decomposition
        builtins) can grow the active domain *after* a lower stratum has
        already closed — and lower-stratum predicates are monotone in the
        domain.  We therefore run whole stratified passes until the domain
        stops growing, resetting the IDB between passes (negative
        conclusions drawn over the smaller domain may not survive).
        """
        domain = ActiveDomain()
        report = EvalReport(stats=SolverStats())
        for t in self.program.all_terms():
            domain.note_term(t)
        if self.database is not None:
            for a in self.database.facts():
                if a.pred in self.builtins:
                    raise EvaluationError(
                        f"database fact uses builtin predicate {a.pred!r}"
                    )
                domain.note_atom(a)

        report.strata = self.stratification.depth
        passes = 0
        while True:
            passes += 1
            if passes > self.options.max_rounds:
                raise EvaluationError(
                    "active domain kept growing; the program has no "
                    "finite perfect model over its own derivations"
                )
            version_before = domain.version
            interp = Interpretation()
            provenance = None
            if self.options.track_provenance:
                from .provenance import ProvenanceStore

                provenance = ProvenanceStore()
            if self.database is not None:
                for a in self.database.facts():
                    interp.add(a)
                    if provenance is not None:
                        provenance.note_given(a)
            groups = self.stratification.rule_groups()
            for gi, stratum in enumerate(self.stratification.strata):
                grouping = [c for c in stratum if isinstance(c, GroupingClause)]
                normal = [c for c in stratum if isinstance(c, LPSClause)]
                for g in grouping:
                    self._apply_grouping(g, interp, domain, report, provenance)
                if normal and provenance is None:
                    coord = self._shard_coordinator()
                    if coord is not None:
                        from ..parallel import shardable_group

                        if shardable_group(groups[gi], self.builtins):
                            result = coord.eval_stratum(
                                groups[gi], interp, domain, report
                            )
                            if result is not None:
                                continue
                self._fixpoint(normal, interp, domain, report, provenance)
            if domain.version == version_before:
                report.passes = passes
                return Model(interp, report, provenance)

    # -- stratum fixpoint -----------------------------------------------------------

    def _fixpoint(
        self,
        rules: Sequence[LPSClause],
        interp: Interpretation,
        domain: ActiveDomain,
        report: EvalReport,
        provenance=None,
        seed_deltas: Optional[Mapping[str, frozenset[Atom]]] = None,
        shard=None,
    ) -> dict[str, set[Atom]]:
        """Run one stratum to fixpoint; returns the atoms added, per predicate.

        With ``seed_deltas`` the loop starts **semi-naive from the given
        deltas** instead of with a naive first round: only rules depending
        on a seeded predicate fire, and delta-capable rules pin their
        differentiated conjunct to the seed.  This is how the incremental
        maintenance subsystem (``repro.engine.maintenance``) re-closes a
        stratum after a batch of fact insertions or DRed re-derivations —
        the interpretation is the already-materialized model, not the empty
        one, so a naive round would redo the entire join work.  The same
        subsystem consumes the return value as the stratum's exact gained
        set (the evaluator's own passes ignore it).

        ``shard`` (a ``repro.parallel.worker.ShardContext``) makes this
        the per-worker fixpoint of sharded evaluation: every derived head
        passes through ``shard.admit`` — owned heads proceed exactly as
        usual, foreign heads are dropped locally and, when the deriving
        rule read a partitioned predicate, queued for shipment to their
        owner shard.
        """
        added: dict[str, set[Atom]] = {}
        # Non-ground unit clauses (e.g. the ∅ base cases produced by the
        # Theorem 10 translation) are rules over the active domain, not
        # facts.
        facts = [c for c in rules if c.is_fact and c.head.is_ground()]
        proper = [c for c in rules if not (c.is_fact and c.head.is_ground())]
        for c in facts:
            # Under sharding every worker sees the full program; a ground
            # fact clause belongs only to its owner (nothing is shipped —
            # the owner derives its own copy from the same clause).
            if shard is not None and not shard.admit(c.head, False):
                continue
            if interp.add(c.head):
                domain.note_atom(c.head)
                report.derived += 1
                added.setdefault(c.head.pred, set()).add(c.head)
            if provenance is not None:
                provenance.note_given(c.head)

        if not proper:
            return added

        compiled = [_CompiledRule(c, self.builtins) for c in proper]
        recursive_preds = {c.head.pred for c in proper}
        changed_preds: Optional[set[str]] = None  # None = first round
        deltas: dict[str, frozenset[Atom]] = {}
        if seed_deltas is not None:
            # Seeded predicates may be lower-stratum inputs, so the pinnable
            # set must cover them, not just this stratum's own heads.
            deltas = {p: frozenset(s) for p, s in seed_deltas.items() if s}
            changed_preds = set(deltas)
            recursive_preds = recursive_preds | changed_preds
            if not deltas:
                return added
        round_no = 0
        prev_version = -1
        use_plans = self.options.compile_plans and provenance is None
        pj = self.options.plan_joins

        while True:
            round_no += 1
            report.rounds += 1
            if round_no > self.options.max_rounds:
                raise EvaluationError(
                    f"stratum did not converge within {self.options.max_rounds} rounds"
                )
            domain_grew = domain.version != prev_version
            prev_version = domain.version
            new_atoms: set[Atom] = set()
            solver = Solver(
                interp,
                domain,
                self.builtins,
                allow_fallback=self.options.allow_fallback,
                fallback_limit=self.options.fallback_limit,
                stats=report.stats,
                use_indexes=self.options.use_indexes,
                plan_joins=self.options.plan_joins,
            )
            executor = None
            if use_plans:
                executor = make_executor(
                    interp,
                    self.builtins,
                    delta=deltas,
                    use_indexes=self.options.use_indexes,
                    stats=report.exec,
                    columnar=self.options.columnar,
                )
            for rule in compiled:
                if not rule.affected(changed_preds, domain_grew):
                    continue
                report.rule_applications += 1
                exportable = shard is not None and shard.exportable(rule.deps)
                use_delta = (
                    self.options.semi_naive
                    and provenance is None
                    and changed_preds is not None
                    and rule.delta_capable
                )
                if use_delta:
                    derived = rule.derive_delta(
                        solver, deltas, recursive_preds,
                        executor=executor, plan_joins=pj,
                    )
                    for head in derived:
                        if head not in interp and head not in new_atoms:
                            if shard is None or shard.admit(head, exportable):
                                new_atoms.add(head)
                elif provenance is not None:
                    for head, env in rule.derive_with_env(solver):
                        if head not in interp and head not in new_atoms:
                            new_atoms.add(head)
                        provenance.note_derived(
                            head, rule.clause, env,
                            rule.ground_premises(env, self.builtins),
                        )
                else:
                    derived = None
                    if executor is not None:
                        derived = rule.derive_via_plan(executor, pj)
                        if derived is not None:
                            solver.stats.derivations += len(derived)
                    if derived is None:
                        derived = rule.derive(solver)
                    for head in derived:
                        if head not in interp and head not in new_atoms:
                            if shard is None or shard.admit(head, exportable):
                                new_atoms.add(head)
            if not new_atoms:
                break
            delta_map: dict[str, set[Atom]] = {}
            for a in new_atoms:
                interp.add(a)
                domain.note_atom(a)
                delta_map.setdefault(a.pred, set()).add(a)
                report.derived += 1
            for p, s in delta_map.items():
                added.setdefault(p, set()).update(s)
            deltas = {p: frozenset(s) for p, s in delta_map.items()}
            changed_preds = set(delta_map)
        return added

    # -- grouping ---------------------------------------------------------------

    def _apply_grouping(
        self,
        g: GroupingClause,
        interp: Interpretation,
        domain: ActiveDomain,
        report: EvalReport,
        provenance=None,
    ) -> set[Atom]:
        """Evaluate one LDL grouping clause (Definition 14).

        The grouped position receives the set of all group-variable values
        for which the body holds, per binding of the other head variables.
        Stratification guarantees the body's predicates are fully computed.
        Returns the head atoms actually added (consumed by maintenance).
        """
        groups: Optional[dict[tuple[Term, ...], set[Term]]] = None
        premises: dict[tuple[Term, ...], list[Atom]] = {}
        if self.options.compile_plans and provenance is None:
            groups = self._plan_grouping(g, interp, report)
        if groups is None:
            body = conj(*(
                AtomF(l.atom) if l.positive else NotF(AtomF(l.atom))
                for l in g.body
            ))
            solver = Solver(
                interp,
                domain,
                self.builtins,
                allow_fallback=self.options.allow_fallback,
                fallback_limit=self.options.fallback_limit,
                stats=report.stats,
                use_indexes=self.options.use_indexes,
                plan_joins=self.options.plan_joins,
            )
            groups = {}
            for env in solver.solve(body):
                key = tuple(env.apply(t) for t in g.head_args)
                gval = env.apply(g.group_var)
                if not gval.is_ground():
                    raise SafetyError(
                        f"grouping variable {g.group_var} not bound by body of {g}"
                    )
                groups.setdefault(key, set()).add(gval)
                if provenance is not None:
                    premises.setdefault(key, []).extend(
                        l.atom.substitute(env)
                        for l in g.body
                        if l.positive and not l.atom.is_special()
                        and l.atom.pred not in self.builtins
                    )
        added: set[Atom] = set()
        for key, values in groups.items():
            args = list(key)
            args.insert(g.group_pos, setvalue(values))
            head = Atom(g.pred, tuple(args))
            if interp.add(head):
                domain.note_atom(head)
                report.derived += 1
                added.add(head)
            if provenance is not None:
                provenance.note_grouped(
                    head, g, tuple(dict.fromkeys(premises.get(key, ())))
                )
        return added

    def _plan_grouping(
        self, g: GroupingClause, interp: Interpretation, report: EvalReport
    ) -> Optional[dict[tuple[Term, ...], set[Term]]]:
        """Set-at-a-time grouping: execute the compiled body plan and
        collect the groups; ``None`` falls back to the tuple path."""
        key = (g, self.options.plan_joins)
        cp = self._grouping_plans.get(key)
        if cp is None:
            cp = self._grouping_plans[key] = compile_grouping(
                g, self.builtins, self.options.plan_joins
            )
        if not cp.is_set:
            return None
        executor = make_executor(
            interp,
            self.builtins,
            use_indexes=self.options.use_indexes,
            stats=report.exec,
            columnar=self.options.columnar,
        )
        try:
            root = cp.root
            if isinstance(root, GroupBy):
                # Head args are plain distinct variables: the plan already
                # collected each group into a set column.
                rows = executor.batch(root)
                return {row[:-1]: set(row[-1].elems) for row in rows}
            rows = executor.batch(root)
            vars_ = root.out_vars
            pos = {v: i for i, v in enumerate(vars_)}
            gpos = pos[g.group_var]
            resolvers = [executor._resolver(t, vars_) for t in g.head_args]
            groups: dict[tuple[Term, ...], set[Term]] = {}
            for row in rows:
                k = tuple(f(row) for f in resolvers)
                groups.setdefault(k, set()).add(row[gpos])
            return groups
        except PlanInapplicable:
            return None


class _CompiledRule:
    """Per-rule compilation: body formula, dependencies, delta capability."""

    def __init__(self, clause: LPSClause, builtins: Mapping[str, Builtin]) -> None:
        self.clause = clause
        self.builtins = builtins
        self.head = clause.head
        self.head_vars = clause.head.free_vars()
        self.body = clause.body_formula()
        self._delta_rest_cache: dict[int, tuple[Formula, frozenset]] = {}
        # Plan IR compilation, keyed by (delta occurrence, plan_joins);
        # compiled lazily — rules that never reach a plan consumer (e.g.
        # under provenance tracking) pay nothing.
        self._plan_cache: dict[tuple, CompiledPlan] = {}
        self._head_plan_cache: dict[tuple, Optional[PlanNode]] = {}
        self._head_shape_cache: dict[tuple, Optional[tuple[int, ...]]] = {}
        self.deps = {
            a.pred
            for l in clause.body
            for a in (l.atom,)
            if not a.is_special() and a.pred not in builtins
        }
        # Delta capability: a plain conjunction of positive literals whose
        # relational atoms can be individually restricted to the delta.
        self.delta_capable = (
            not clause.quantifiers
            and all(l.positive for l in clause.body)
        )
        self.relational = [
            l.atom
            for l in clause.body
            if l.positive and not l.atom.is_special() and l.atom.pred not in builtins
        ]
        # A rule is domain-sensitive if its evaluation can consult the
        # active domain: quantifiers (vacuous branch), negation, or head/body
        # variables that no positive body atom constrains.
        constrained: set[Var] = set()
        for a in self.relational:
            constrained |= a.free_vars()
        self.domain_sensitive = (
            bool(clause.quantifiers)
            or any(not l.positive for l in clause.body)
            or bool(clause.free_vars() - constrained)
        )

    def affected(self, changed: Optional[set[str]], domain_grew: bool) -> bool:
        if changed is None:
            return True
        if self.deps & changed:
            return True
        return self.domain_sensitive and domain_grew

    def derive(self, solver: Solver) -> Iterator[Atom]:
        for head, _env in self.derive_with_env(solver):
            yield head

    # -- plan-IR execution (set-at-a-time path) ---------------------------------

    def plan(
        self, delta_index: Optional[int] = None, plan_joins: bool = True
    ) -> CompiledPlan:
        """The compiled body plan (full-width rows), cached per variant."""
        key = (delta_index, plan_joins)
        cp = self._plan_cache.get(key)
        if cp is None:
            cp = self._plan_cache[key] = compile_rule(
                self.clause, self.builtins, delta_index, plan_joins
            )
        return cp

    def head_node(
        self, delta_index: Optional[int] = None, plan_joins: bool = True
    ) -> Optional[PlanNode]:
        """The plan projected to head variables and deduplicated, or
        ``None`` when the body compiles to tuple mode."""
        key = (delta_index, plan_joins)
        if key not in self._head_plan_cache:
            self._head_plan_cache[key] = head_plan(
                self.plan(delta_index, plan_joins)
            )
        return self._head_plan_cache[key]

    def _head_shape(
        self, node: PlanNode, key: tuple
    ) -> Optional[tuple[int, ...]]:
        """Column extraction for Datalog-shaped heads (args all variables):
        head atoms then come straight from row cells, no substitution."""
        if key not in self._head_shape_cache:
            shape: Optional[tuple[int, ...]] = None
            if all(t.__class__ is Var for t in self.head.args):
                out = node.out_vars
                shape = tuple(out.index(t) for t in self.head.args)
            self._head_shape_cache[key] = shape
        return self._head_shape_cache[key]

    def _plan_heads(
        self, executor: "Executor", pin: Optional[int], plan_joins: bool
    ) -> Optional[list[Atom]]:
        node = self.head_node(pin, plan_joins)
        if node is None:
            return None
        shape = self._head_shape(node, (pin, plan_joins))
        try:
            # Head atoms land in a set; duplicate rows only cost decode
            # and substitution time, so let the executor collapse them —
            # for Datalog-shaped heads, after projecting to the head
            # columns so rows differing only elsewhere collapse too.
            if shape is not None:
                rows = executor.shaped_batch(node, shape)
                return [Atom(self.head.pred, r) for r in rows]
            rows = executor.distinct_batch(node)
        except PlanInapplicable:
            return None
        head, vars_ = self.head, node.out_vars
        if not vars_:
            return [head] if rows else []
        return [
            head.substitute(Subst._make(dict(zip(vars_, r)))) for r in rows
        ]

    def derive_via_plan(
        self, executor: "Executor", plan_joins: bool = True
    ) -> Optional[list[Atom]]:
        """Head atoms via set-at-a-time execution; ``None`` means the rule
        (or this application of it) must use the tuple path instead."""
        return self._plan_heads(executor, None, plan_joins)

    def derive_delta_via_plan(
        self, executor: "Executor", pin: int, plan_joins: bool = True
    ) -> Optional[list[Atom]]:
        """Heads of the differentiated rule with occurrence ``pin`` read
        from the executor's delta relation."""
        return self._plan_heads(executor, pin, plan_joins)

    def _delta_rest(self, i: int) -> tuple[Formula, frozenset]:
        """The body minus the pinned conjunct, with its free variables.

        Compiled against the rule's own builtin registry (the one it was
        constructed with), so the cache cannot go stale if a caller's solver
        carries a different registry.
        """
        cached = self._delta_rest_cache.get(i)
        if cached is None:
            builtins = self.builtins
            rest = conj(*(
                AtomF(a) for j, a in enumerate(self.relational) if j != i
            ), *(
                AtomF(l.atom)
                for l in self.clause.body
                if l.positive and (l.atom.is_special() or l.atom.pred in builtins)
            ))
            cached = (rest, frozenset(rest.free_vars()))
            self._delta_rest_cache[i] = cached
        return cached

    def _extend_env(
        self, solver: Solver, env: Subst, head_vars
    ) -> Iterator[Subst]:
        """Bind head variables the body left free from the active domain."""
        missing = [v for v in head_vars if v not in env]
        solver._require_fallback(missing, self.body)
        carriers = [solver.domain.carrier(v.sort) for v in missing]
        total = 1
        for c in carriers:
            total *= max(len(c), 1)
        solver._charge_fallback(total)
        for combo in itertools.product(*carriers):
            yield env.extend(dict(zip(missing, combo)))

    def derive_with_env(self, solver: Solver) -> Iterator[tuple[Atom, Subst]]:
        head_vars = self.head_vars
        for env in solver.solve(self.body):
            if all(v in env for v in head_vars):
                solver.stats.derivations += 1
                yield self.head.substitute(env), env
            else:
                # Head variables absent from the body range over the domain.
                for env2 in self._extend_env(solver, env, head_vars):
                    yield self.head.substitute(env2), env2

    def ground_premises(
        self, env: Subst, builtins: Mapping[str, Builtin]
    ) -> tuple[Atom, ...]:
        """The ground positive IDB/EDB body atoms of this application —
        quantifiers unfolded per Lemma 4 (empty ranges give no premises)."""
        free = self.clause.free_vars()
        theta = env.restrict(free)
        try:
            ground = self.clause.ground_instances(theta)
        except Exception:
            return ()
        return tuple(dict.fromkeys(
            l.atom
            for l in ground.body
            if l.positive and not l.atom.is_special()
            and l.atom.pred not in builtins
        ))

    def derive_delta(
        self,
        solver: Solver,
        deltas: Mapping[str, frozenset[Atom]],
        recursive_preds: set[str],
        executor: Optional["Executor"] = None,
        plan_joins: bool = True,
    ) -> Iterator[Atom]:
        """Semi-naive differentiation: one recursive atom pinned to its delta.

        With an ``executor`` each pinned occurrence is evaluated through
        its compiled delta-variant plan (the pinned Scan reading the
        executor's delta relation, everything else the full
        interpretation); occurrences whose plan is tuple-mode — or whose
        execution proves inapplicable — fall back to the solver path
        below, per occurrence.
        """
        pinned = [
            i for i, a in enumerate(self.relational)
            if a.pred in recursive_preds and a.pred in deltas
        ]
        if not pinned:
            return
        seen: set[Atom] = set()
        for i in pinned:
            if executor is not None:
                heads = self.derive_delta_via_plan(executor, i, plan_joins)
                if heads is not None:
                    for head in heads:
                        if head not in seen:
                            seen.add(head)
                            solver.stats.derivations += 1
                            yield head
                    continue
            target = self.relational[i]
            delta_solver = Solver(
                solver.interp,
                solver.domain,
                solver.builtins,
                allow_fallback=solver.allow_fallback,
                fallback_limit=solver.fallback_limit,
                stats=solver.stats,
                use_indexes=solver.use_indexes,
                plan_joins=solver.plan_joins,
            )
            # Seed the solver with each delta fact for the pinned conjunct,
            # then solve the remaining body under that binding.  The rest
            # formula and its free variables are compiled once per rule.
            rest, rest_fv = self._delta_rest(i)
            head_vars = self.head_vars
            for f in deltas[target.pred]:
                for env0 in match_atom(target, f):
                    for env in delta_solver.solve(rest, env0, fv=rest_fv):
                        if all(v in env for v in head_vars):
                            head = self.head.substitute(env)
                            if head not in seen:
                                seen.add(head)
                                solver.stats.derivations += 1
                                yield head
                        else:
                            for h in self._complete_head(delta_solver, env):
                                if h not in seen:
                                    seen.add(h)
                                    yield h

    def _complete_head(self, solver: Solver, env: Subst) -> Iterator[Atom]:
        missing = [v for v in self.head_vars if v not in env]
        solver._require_fallback(missing, self.body)
        carriers = [solver.domain.carrier(v.sort) for v in missing]
        total = 1
        for c in carriers:
            total *= max(len(c), 1)
        solver._charge_fallback(total)
        for combo in itertools.product(*carriers):
            yield self.head.substitute(env.extend(dict(zip(missing, combo))))


def solve(
    program: Program,
    database: Optional[Database] = None,
    **options: Any,
) -> Model:
    """One-call evaluation: build an :class:`Evaluator` and run it."""
    opts = EvalOptions(**options) if options else EvalOptions()
    return Evaluator(program, database, options=opts).run()
