"""Evaluable (computed) predicates for the engine.

The paper's Examples 5 and 6 use arithmetic (``m + n = k``) next to the set
machinery; a practical engine therefore needs *evaluable predicates*:
predicates with an infinite, fixed interpretation that are computed rather
than stored.  They are not part of the LPS logic proper — the theory modules
never see them — but the engine and the parser accept them in rule bodies.

Each builtin declares which binding *modes* it supports; the planner treats
an occurrence as ready once one of its modes is satisfied.  Modes use the
conventional ``b``/``f`` (bound/free) notation.

Provided builtins:

``plus(m, n, k)``   — m + n = k; any two arguments bound computes the third.
``times(m, n, k)``  — m * n = k; mode ``bbf``, plus exact division modes.
``minus(m, n, k)``  — m - n = k (delegates to plus).
``lt/le/gt/ge(m,n)``— numeric comparison, both bound.
``neq(x, y)``       — disequality of ground terms (the paper's ``x ≠ y``).
``card(X, n)``      — n is the cardinality of set X (mode ``bf``/``bb``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Optional, Sequence

from ..core.atoms import Atom
from ..core.errors import EvaluationError
from ..core.substitution import Subst
from ..core.terms import Const, SetValue, Term, Var
from ..core.unify import unify


def _int_of(t: Term) -> Optional[int]:
    if isinstance(t, Const) and isinstance(t.value, int):
        return t.value
    return None


class Builtin:
    """An evaluable predicate."""

    name: str
    arity: int

    def ready(self, args: Sequence[Term]) -> bool:
        """Whether the argument binding pattern is evaluable."""
        raise NotImplementedError

    def solve(self, args: Sequence[Term], env: Subst) -> Iterator[Subst]:
        """Extend ``env`` with solutions.  ``args`` are already resolved."""
        raise NotImplementedError


@dataclass
class ArithPlus(Builtin):
    """``plus(m, n, k)`` ⇔ m + n = k."""

    name: str = "plus"
    arity: int = 3

    def ready(self, args: Sequence[Term]) -> bool:
        ground = [a.is_ground() for a in args]
        return sum(ground) >= 2

    def solve(self, args: Sequence[Term], env: Subst) -> Iterator[Subst]:
        m, n, k = args
        vm, vn, vk = _int_of(m), _int_of(n), _int_of(k)
        if vm is not None and vn is not None:
            yield from unify(k, Const(vm + vn), env)
        elif vm is not None and vk is not None:
            yield from unify(n, Const(vk - vm), env)
        elif vn is not None and vk is not None:
            yield from unify(m, Const(vk - vn), env)
        # Non-integer ground args simply fail (no solutions).


@dataclass
class ArithTimes(Builtin):
    """``times(m, n, k)`` ⇔ m * n = k."""

    name: str = "times"
    arity: int = 3

    def ready(self, args: Sequence[Term]) -> bool:
        ground = [a.is_ground() for a in args]
        return sum(ground) >= 2

    def solve(self, args: Sequence[Term], env: Subst) -> Iterator[Subst]:
        m, n, k = args
        vm, vn, vk = _int_of(m), _int_of(n), _int_of(k)
        if vm is not None and vn is not None:
            yield from unify(k, Const(vm * vn), env)
        elif vm is not None and vk is not None:
            if vm != 0 and vk % vm == 0:
                yield from unify(n, Const(vk // vm), env)
        elif vn is not None and vk is not None:
            if vn != 0 and vk % vn == 0:
                yield from unify(m, Const(vk // vn), env)


@dataclass
class ArithMinus(Builtin):
    """``minus(m, n, k)`` ⇔ m - n = k."""

    name: str = "minus"
    arity: int = 3

    def ready(self, args: Sequence[Term]) -> bool:
        ground = [a.is_ground() for a in args]
        return sum(ground) >= 2

    def solve(self, args: Sequence[Term], env: Subst) -> Iterator[Subst]:
        m, n, k = args
        vm, vn, vk = _int_of(m), _int_of(n), _int_of(k)
        if vm is not None and vn is not None:
            yield from unify(k, Const(vm - vn), env)
        elif vm is not None and vk is not None:
            yield from unify(n, Const(vm - vk), env)
        elif vn is not None and vk is not None:
            yield from unify(m, Const(vk + vn), env)


@dataclass
class Comparison(Builtin):
    """A two-argument numeric comparison; both arguments must be bound."""

    name: str
    op: Callable[[int, int], bool]
    arity: int = 2

    def ready(self, args: Sequence[Term]) -> bool:
        return all(a.is_ground() for a in args)

    def solve(self, args: Sequence[Term], env: Subst) -> Iterator[Subst]:
        vm, vn = _int_of(args[0]), _int_of(args[1])
        if vm is not None and vn is not None and self.op(vm, vn):
            yield env


@dataclass
class NotEqual(Builtin):
    """``neq(x, y)`` — disequality of ground terms of either sort.

    The paper (Example 1) notes ``x ≠ y`` "could be defined as ¬(x = y)";
    providing it as an evaluable check keeps core examples negation-free.
    """

    name: str = "neq"
    arity: int = 2

    def ready(self, args: Sequence[Term]) -> bool:
        return all(a.is_ground() for a in args)

    def solve(self, args: Sequence[Term], env: Subst) -> Iterator[Subst]:
        if args[0] != args[1]:
            yield env


@dataclass
class Cardinality(Builtin):
    """``card(X, n)`` — n = |X| for a bound set X."""

    name: str = "card"
    arity: int = 2

    def ready(self, args: Sequence[Term]) -> bool:
        return args[0].is_ground()

    def solve(self, args: Sequence[Term], env: Subst) -> Iterator[Subst]:
        x, n = args
        if not isinstance(x, SetValue):
            return
        yield from unify(n, Const(len(x)), env)


def default_builtins() -> dict[str, Builtin]:
    """The standard registry used by the engine and the parser."""
    import operator

    registry: dict[str, Builtin] = {}
    for b in (
        ArithPlus(),
        ArithTimes(),
        ArithMinus(),
        Comparison("lt", operator.lt),
        Comparison("le", operator.le),
        Comparison("gt", operator.gt),
        Comparison("ge", operator.ge),
        NotEqual(),
        Cardinality(),
    ):
        registry[b.name] = b
    return registry


#: Shared immutable default registry.
DEFAULT_BUILTINS: Mapping[str, Builtin] = default_builtins()


def is_builtin(pred: str, registry: Mapping[str, Builtin] = DEFAULT_BUILTINS) -> bool:
    return pred in registry


def check_builtin_atom(a: Atom, registry: Mapping[str, Builtin] = DEFAULT_BUILTINS) -> None:
    b = registry.get(a.pred)
    if b is not None and a.arity != b.arity:
        raise EvaluationError(
            f"builtin {a.pred!r} used with arity {a.arity}, expects {b.arity}"
        )
