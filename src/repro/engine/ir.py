"""Relational-algebra plan IR for rule bodies.

The paper's Example 4 bridge shows that LPS rule bodies *are* nested
relational algebra: a body conjunct ``R(x, Y)`` is a scan, a shared
variable is a join, ``y ∈ Y`` is an unnest, negation is an anti-join and
LDL grouping is a group-by.  This module makes that reading executable:
it defines a small operator tree — the **plan IR** — that
:mod:`repro.engine.planner` compiles rule bodies into and
:mod:`repro.engine.executor` evaluates set-at-a-time over binding
*columns* (batches of value tuples keyed by an ordered variable schema)
instead of one :class:`~repro.core.substitution.Subst` per intermediate
tuple.

Operator nodes (all immutable after construction):

=============  =============================================================
``Unit``       the single empty binding (start of scan-free pipelines)
``Scan``       match one body atom against a relation (or a semi-naive delta)
``Join``       hash join of two subplans on their shared variables
``Select``     per-row filter (ground equality / builtin check / membership)
``Compute``    per-row extension (equality or builtin binding new variables)
``Unnest``     ``x ∈ S`` with ``S`` bound: one output row per set element
``AntiJoin``   stratified negation: drop rows whose ground instance holds
``Project``    restrict the variable schema (no dedup — see ``Distinct``)
``Distinct``   set semantics over the current schema
``GroupBy``    LDL grouping: collect one column into a set per key
=============  =============================================================

The bottom half of the module holds the **row kernels** — plain functions
over (rows, column-index) data that implement the shared set-at-a-time
semantics of join/anti-join/project/distinct/nest/unnest.  They are
deliberately generic over the cell type: the executor runs them on
canonical ground :class:`~repro.core.terms.Term` cells, while
:mod:`repro.nested.algebra` runs the *same* kernels on plain Python
values, so the value-level algebra and the engine cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence

from ..core.atoms import Atom, Literal
from ..core.terms import Term, Var

#: How a compiled rule is executed (see ``repro.engine.planner``).
MODE_SET = "set"      # set-at-a-time plan execution
MODE_TUPLE = "tuple"  # fall back to the backtracking tuple-at-a-time solver


@dataclass
class ExecStats:
    """Executor counters: totals plus per-operator batches and row flow.

    The ``col_nodes``/``row_nodes``/``rows_encoded``/``rows_decoded``
    quartet observes the columnar executor (``repro.engine.columnar``):
    how many operator executions ran on ID columns vs fell back to the
    row kernels, and how many rows crossed an encode/decode boundary.
    All four stay 0 under the plain row executor.
    """

    batches: int = 0
    rows_in: int = 0
    rows_out: int = 0
    #: operator executions on dense-ID columns (columnar executor only).
    col_nodes: int = 0
    #: operator executions that fell back to the row kernels.
    row_nodes: int = 0
    #: rows converted term-cells -> ID columns (scans, fallback results).
    rows_encoded: int = 0
    #: rows converted ID columns -> term-cells (plan boundaries).
    rows_decoded: int = 0
    #: operator name -> [batches, rows in, rows out]
    per_op: dict[str, list[int]] = field(default_factory=dict)

    def note(self, op: str, rows_in: int, rows_out: int) -> None:
        self.batches += 1
        self.rows_in += rows_in
        self.rows_out += rows_out
        cell = self.per_op.get(op)
        if cell is None:
            self.per_op[op] = [1, rows_in, rows_out]
        else:
            cell[0] += 1
            cell[1] += rows_in
            cell[2] += rows_out

    def merge(self, other: "ExecStats") -> None:
        self.batches += other.batches
        self.rows_in += other.rows_in
        self.rows_out += other.rows_out
        self.col_nodes += other.col_nodes
        self.row_nodes += other.row_nodes
        self.rows_encoded += other.rows_encoded
        self.rows_decoded += other.rows_decoded
        for op, (b, ri, ro) in other.per_op.items():
            cell = self.per_op.get(op)
            if cell is None:
                self.per_op[op] = [b, ri, ro]
            else:
                cell[0] += b
                cell[1] += ri
                cell[2] += ro

    def columnar_summary(self) -> dict[str, int]:
        """The columnar counters as one dict (the ``:stats`` payload)."""
        return {
            "col_nodes": self.col_nodes,
            "row_nodes": self.row_nodes,
            "rows_encoded": self.rows_encoded,
            "rows_decoded": self.rows_decoded,
        }

    def pretty(self) -> str:
        lines = [
            f"executor: {self.batches} batches, "
            f"{self.rows_in} rows in, {self.rows_out} rows out"
        ]
        if self.col_nodes or self.row_nodes:
            lines.append(
                f"  columnar: {self.col_nodes} col nodes, "
                f"{self.row_nodes} row-fallback nodes, "
                f"{self.rows_encoded} rows encoded, "
                f"{self.rows_decoded} rows decoded"
            )
        for op in sorted(self.per_op):
            b, ri, ro = self.per_op[op]
            lines.append(f"  {op:<9} batches={b} rows_in={ri} rows_out={ro}")
        return "\n".join(lines)


class PlanNode:
    """Base class of plan operators.

    ``out_vars`` is the ordered variable schema of the node's output batch;
    every row produced by the node is a tuple of ground terms positionally
    aligned with it.
    """

    __slots__ = ("out_vars", "_cmeta")

    out_vars: tuple[Var, ...]

    #: Columnar-executor metadata (``repro.engine.columnar``), memoized on
    #: first visit like ``_shape``/``_meta``; unset until then.

    #: Name used in pretty-printing and executor stats.
    op: str = "node"

    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def label(self) -> str:
        return self.op

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        out = [f"{pad}{self.label()}"]
        for c in self.children():
            out.append(c.pretty(indent + 1))
        return "\n".join(out)


class Unit(PlanNode):
    """The relation with one empty row (identity of ``Join``)."""

    __slots__ = ()
    op = "Unit"

    def __init__(self) -> None:
        self.out_vars = ()


class Scan(PlanNode):
    """Match a body atom against its relation (or a delta of it).

    ``delta`` marks the one occurrence a semi-naive differentiation pinned:
    the executor reads that scan from the round's delta relation instead of
    the full interpretation (ISSUE: "the delta relation substituted into one
    Scan per occurrence").
    """

    __slots__ = ("atom", "delta", "_shape")
    op = "Scan"

    def __init__(self, atom: Atom, delta: bool = False) -> None:
        self.atom = atom
        self.delta = delta
        self._shape = None  # match fast-path, memoized by the executor
        seen: dict[Var, None] = {}
        for t in atom.args:
            for v in _term_vars(t):
                seen.setdefault(v, None)
        self.out_vars = tuple(seen)

    def label(self) -> str:
        tag = "Δ" if self.delta else ""
        return f"Scan[{tag}{self.atom}]"


class Join(PlanNode):
    """Hash join of two subplans on their shared variables."""

    __slots__ = ("left", "right", "shared", "_meta")
    op = "Join"

    def __init__(self, left: PlanNode, right: PlanNode) -> None:
        self.left = left
        self.right = right
        self._meta = None  # executor-memoized static metadata
        lset = set(left.out_vars)
        self.shared = tuple(v for v in right.out_vars if v in lset)
        self.out_vars = left.out_vars + tuple(
            v for v in right.out_vars if v not in lset
        )

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        on = ", ".join(str(v) for v in self.shared) or "⊤ (cross)"
        return f"Join[{on}]"


class Select(PlanNode):
    """Per-row filter: a fully-bound equality, builtin or membership check."""

    __slots__ = ("input", "literal", "kind", "_meta")
    op = "Select"

    def __init__(self, input: PlanNode, literal: Literal, kind: str) -> None:
        self.input = input
        self.literal = literal
        self._meta = None  # executor-memoized static metadata
        self.kind = kind  # "equals" | "builtin" | "member"
        self.out_vars = input.out_vars

    def children(self) -> tuple[PlanNode, ...]:
        return (self.input,)

    def label(self) -> str:
        return f"Select[{self.kind}: {self.literal}]"


class Compute(PlanNode):
    """Per-row extension: equality/builtin conjunct binding new variables."""

    __slots__ = ("input", "atom", "kind", "new_vars", "_meta")
    op = "Compute"

    def __init__(
        self, input: PlanNode, atom: Atom, kind: str, new_vars: tuple[Var, ...]
    ) -> None:
        self.input = input
        self.atom = atom
        self.kind = kind  # "equals" | "builtin"
        self.new_vars = new_vars
        self._meta = None  # executor-memoized static metadata
        self.out_vars = input.out_vars + new_vars

    def children(self) -> tuple[PlanNode, ...]:
        return (self.input,)

    def label(self) -> str:
        binds = ", ".join(str(v) for v in self.new_vars)
        return f"Compute[{self.kind}: {self.atom} → {binds}]"


class Unnest(PlanNode):
    """``elem ∈ source`` with the source column bound.

    ``mode`` chooses the semantics the tuple path would apply:

    * ``expand`` — ``elem`` is an unbound variable: one row per element of
      the set, filtered by sort compatibility (Example 4's μ);
    * ``unify`` — ``elem`` is a non-ground structured term: enumerate
      unifiers against each element, binding ``new_vars``.

    (The fully-bound membership *check* is a ``Select`` with kind
    ``member``, not an ``Unnest``.)
    """

    __slots__ = ("input", "elem", "source", "mode", "new_vars", "_meta")
    op = "Unnest"

    def __init__(
        self,
        input: PlanNode,
        elem: Term,
        source: Term,
        mode: str,
        new_vars: tuple[Var, ...],
    ) -> None:
        self.input = input
        self.elem = elem
        self.source = source
        self.mode = mode  # "expand" | "unify"
        self._meta = None  # executor-memoized static metadata
        self.new_vars = new_vars
        self.out_vars = input.out_vars + new_vars

    def children(self) -> tuple[PlanNode, ...]:
        return (self.input,)

    def label(self) -> str:
        return f"Unnest[{self.mode}: {self.elem} in {self.source}]"


class AntiJoin(PlanNode):
    """Stratified negation: drop rows whose (ground) negated atom holds.

    The negated predicate lives in a strictly lower stratum, so the check
    runs against the full interpretation — never against a delta — exactly
    like the tuple path's closed-formula oracle.
    """

    __slots__ = ("input", "atom", "_meta")
    op = "AntiJoin"

    def __init__(self, input: PlanNode, atom: Atom) -> None:
        self.input = input
        self.atom = atom
        self.out_vars = input.out_vars
        self._meta = None  # executor-memoized static metadata

    def children(self) -> tuple[PlanNode, ...]:
        return (self.input,)

    def label(self) -> str:
        return f"AntiJoin[not {self.atom}]"


class Project(PlanNode):
    """Restrict the schema to ``vars`` (keeps duplicates; see ``Distinct``)."""

    __slots__ = ("input", "vars", "_meta")
    op = "Project"

    def __init__(self, input: PlanNode, vars: Sequence[Var]) -> None:
        self.input = input
        self.vars = tuple(vars)
        self._meta = None  # executor-memoized static metadata
        missing = [v for v in self.vars if v not in input.out_vars]
        if missing:
            raise ValueError(f"projection variables {missing} not in input")
        self.out_vars = self.vars

    def children(self) -> tuple[PlanNode, ...]:
        return (self.input,)

    def label(self) -> str:
        return f"Project[{', '.join(str(v) for v in self.vars)}]"


class Distinct(PlanNode):
    """Set semantics: deduplicate rows (SetValue columns hash canonically)."""

    __slots__ = ("input",)
    op = "Distinct"

    def __init__(self, input: PlanNode) -> None:
        self.input = input
        self.out_vars = input.out_vars

    def children(self) -> tuple[PlanNode, ...]:
        return (self.input,)


class GroupBy(PlanNode):
    """LDL grouping (Definition 14): collect ``group_var`` into a set per key.

    The output schema is ``key_vars + (group_var,)`` with the group column
    holding a :class:`~repro.core.terms.SetValue` per key.
    """

    __slots__ = ("input", "key_vars", "group_var", "_meta")
    op = "GroupBy"

    def __init__(
        self, input: PlanNode, key_vars: Sequence[Var], group_var: Var
    ) -> None:
        self.input = input
        self.key_vars = tuple(key_vars)
        self._meta = None  # executor-memoized static metadata
        self.group_var = group_var
        self.out_vars = self.key_vars + (group_var,)

    def children(self) -> tuple[PlanNode, ...]:
        return (self.input,)

    def label(self) -> str:
        keys = ", ".join(str(v) for v in self.key_vars)
        return f"GroupBy[⟨{self.group_var}⟩ per ({keys})]"


def _term_vars(t: Term) -> Iterable[Var]:
    from ..core.terms import free_vars

    return sorted(free_vars(t), key=lambda v: (v.var_sort, v.name))


def walk_plan(node: PlanNode) -> Iterable[PlanNode]:
    """Yield the node and all descendants, outermost first."""
    yield node
    for c in node.children():
        yield from walk_plan(c)


# ---------------------------------------------------------------------------
# Row kernels — the shared set-at-a-time semantics.
#
# Rows are tuples of hashable cells; ``*_idx`` arguments are tuples of
# column indices.  The kernels never look inside cells, so the executor
# (Term cells) and repro.nested.algebra (Python-value cells) share them.
# ---------------------------------------------------------------------------

Row = tuple


def join_rows(
    lrows: Sequence[Row],
    rrows: Sequence[Row],
    lkey_idx: tuple[int, ...],
    rkey_idx: tuple[int, ...],
    rtake_idx: tuple[int, ...],
) -> list[Row]:
    """Hash join: combined rows ``l + r[rtake_idx]`` where keys agree.

    Builds the hash table on the smaller side — the batch-level analogue of
    the tuple path's smallest-relation-first join planning.
    """
    if not lrows or not rrows:
        return []
    out: list[Row] = []
    if len(rrows) <= len(lrows):
        table: dict[tuple, list[Row]] = {}
        for r in rrows:
            table.setdefault(tuple(r[i] for i in rkey_idx), []).append(r)
        for l in lrows:
            bucket = table.get(tuple(l[i] for i in lkey_idx))
            if bucket:
                for r in bucket:
                    out.append(l + tuple(r[i] for i in rtake_idx))
    else:
        table = {}
        for l in lrows:
            table.setdefault(tuple(l[i] for i in lkey_idx), []).append(l)
        for r in rrows:
            bucket = table.get(tuple(r[i] for i in rkey_idx))
            if bucket:
                tail = tuple(r[i] for i in rtake_idx)
                for l in bucket:
                    out.append(l + tail)
    return out


def anti_join_rows(
    lrows: Sequence[Row],
    rrows: Sequence[Row],
    lkey_idx: tuple[int, ...],
    rkey_idx: tuple[int, ...],
) -> list[Row]:
    """Rows of the left side with no key-matching row on the right."""
    if not lrows:
        return []
    keys = {tuple(r[i] for i in rkey_idx) for r in rrows}
    return [l for l in lrows if tuple(l[i] for i in lkey_idx) not in keys]


def project_rows(rows: Iterable[Row], take_idx: tuple[int, ...]) -> list[Row]:
    """Projection with set semantics (dedup, first occurrence wins)."""
    return list(dict.fromkeys(tuple(r[i] for i in take_idx) for r in rows))


def distinct_rows(rows: Iterable[Row]) -> list[Row]:
    """Deduplicate rows preserving first-occurrence order."""
    return list(dict.fromkeys(tuple(r) for r in rows))


def select_rows(rows: Iterable[Row], keep: Callable[[Row], bool]) -> list[Row]:
    """Filter rows by a per-row predicate."""
    return [r for r in rows if keep(r)]


def unnest_rows(
    rows: Iterable[Row],
    pos: int,
    elems_of: Callable[[Any], Iterable[Any]],
) -> list[Row]:
    """μ: replace the set at column ``pos`` by its elements, one row each.

    Rows whose set is empty vanish — the operator's classical information
    loss, preserved identically by the algebra and the engine bridge.
    """
    out: list[Row] = []
    for r in rows:
        head, tail = r[:pos], r[pos + 1:]
        for e in elems_of(r[pos]):
            out.append(head + (e,) + tail)
    return out


def nest_rows(
    rows: Iterable[Row],
    pos: int,
    make_set: Callable[[set], Any],
) -> list[Row]:
    """ν: group on all other columns, collecting column ``pos`` into a set."""
    groups: dict[Row, set] = {}
    for r in rows:
        groups.setdefault(r[:pos] + r[pos + 1:], set()).add(r[pos])
    out: list[Row] = []
    for key, values in groups.items():
        out.append(key[:pos] + (make_set(values),) + key[pos:])
    return out


def group_rows(
    rows: Iterable[Row],
    key_idx: tuple[int, ...],
    group_pos: int,
) -> dict[Row, set]:
    """Group-by kernel: key tuple -> set of grouped-column values."""
    groups: dict[Row, set] = {}
    for r in rows:
        groups.setdefault(
            tuple(r[i] for i in key_idx), set()
        ).add(r[group_pos])
    return groups
