"""Columnar plan execution over dense interned-term IDs.

:class:`ColumnarExecutor` is a drop-in :class:`~repro.engine.executor.Executor`
whose capable operators run on **ID columns** — one int64 vector of dense
:data:`~repro.core.terms.TERM_DICT` IDs per schema variable — instead of
batches of term-object tuples.  Joining, deduplicating, filtering and
projecting integer vectors with numpy replaces the per-cell Python-level
``Term.__hash__``/``__eq__`` calls that dominate the row kernels, while
the append-only term dictionary guarantees *ID equality ⟺ term equality*
for the canonical ground cells every plan produces, so the computed row
sets are identical.

Encode/decode boundaries (see DESIGN.md, "Columnar execution"):

* **encode** — non-delta ``Scan`` nodes read the interpretation's cached
  relation columns
  (:meth:`~repro.semantics.interpretation.Interpretation.id_columns`,
  built incrementally like its argument indexes) and filter them with
  vector masks; delta scans and results of row-fallback operators are
  encoded on (re-)entry to a columnar parent.
* **decode** — ``batch()`` (the executor's public entry point) decodes the
  final columns back to term rows for head materialization, and any
  operator that must see real values (``Compute``, ``Unnest``, builtin
  ``Select`` — plus generic-shape scans) runs the inherited row kernel
  over its decoded input.  The per-node fallback keeps the plan running
  columnar around type-sensitive islands.

Capability is static per node (:func:`columnar_capable`): ``Unit``,
``Join``, ``Project``, ``Distinct`` and ``GroupBy`` always qualify;
``Scan`` needs a deterministic match shape; equality/membership
``Select`` and relational ``AntiJoin`` need every argument to be a schema
variable or ground.  Everything else — and every *dynamic* type
misprediction, exactly as in the row executor — falls back, ultimately to
:class:`~repro.engine.executor.PlanInapplicable` and the tuple solver, so
the bit-identity invariant of ``tests/test_index_vs_scan.py`` extends
across the full ``columnar × compile_plans × use_indexes × plan_joins``
grid.

numpy is the only soft dependency: without it :func:`make_executor`
silently hands back the row executor, so ``EvalOptions.columnar`` is
safe to leave on everywhere.
"""

from __future__ import annotations

from itertools import repeat
from typing import Mapping, Optional, Sequence

try:  # gate, don't require: the row executor is the degraded mode
    import numpy as _np
except ImportError:  # pragma: no cover - image always has numpy
    _np = None

from ..core.atoms import Atom
from ..core.terms import TERM_DICT, SetValue, Term, Var, canonicalize, setvalue
from ..core.sorts import sorts_compatible
from ..semantics.interpretation import INDEX_MIN_FACTS, Interpretation
from .builtins import Builtin
from .executor import _GENERIC, Executor, PlanInapplicable, _DISPATCH, _scan_shape
from .ir import (
    AntiJoin,
    Distinct,
    GroupBy,
    Join,
    PlanNode,
    Project,
    Row,
    Scan,
    Select,
    Unit,
)

_ID_OF = TERM_DICT.id_of
_TERMS = TERM_DICT.terms

#: Whether the vectorized kernels are available (benchmarks and tests
#: gate their columnar-vs-row comparisons on this).
HAS_NUMPY = _np is not None

#: Operators that are columnar-capable for every instance.
_ALWAYS_COL = (Unit, Join, Project, Distinct, GroupBy)


def _simple_args(
    args: Sequence[Term], out_vars: tuple[Var, ...]
) -> Optional[tuple]:
    """Per-argument access plan when every arg is a schema variable or
    ground: ``("col", index)`` or ``("term", canonical value)``; ``None``
    when any argument is structured-with-variables or an unbound variable
    (those need the row path's unification-aware resolvers)."""
    pos = {v: i for i, v in enumerate(out_vars)}
    metas = []
    for t in args:
        if t.__class__ is Var:
            i = pos.get(t)
            if i is None:
                return None
            metas.append(("col", i))
        elif t.is_ground():
            metas.append(("term", canonicalize(t)))
        else:
            return None
    return tuple(metas)


def _arg_meta(node: PlanNode, args, out_vars):
    """``_simple_args`` memoized on the node (``False`` = not capable)."""
    m = getattr(node, "_cmeta", None)
    if m is None:
        m = _simple_args(args, out_vars)
        if m is None:
            m = False
        node._cmeta = m
    return m


def columnar_capable(node: PlanNode, builtins: Mapping[str, Builtin]) -> bool:
    """Whether :class:`ColumnarExecutor` runs this node on ID columns.

    Static per node; the executor re-checks dynamic predictions (e.g.
    membership containers actually being sets) on real values at run
    time, exactly like the row executor.
    """
    cls = node.__class__
    if cls in _ALWAYS_COL:
        return True
    if cls is Scan:
        shape = node._shape
        if shape is None:
            shape = node._shape = _scan_shape(node.atom, node.out_vars)
        return shape is not _GENERIC
    if cls is Select:
        if node.kind == "builtin":
            return False
        return _arg_meta(
            node, node.literal.atom.args, node.input.out_vars
        ) is not False
    if cls is AntiJoin:
        a = node.atom
        if a.is_special() or a.pred in builtins:
            return False
        return _arg_meta(node, a.args, node.input.out_vars) is not False
    return False  # Compute, Unnest: bind new values per row


def plan_mode_counts(
    root: PlanNode, builtins: Mapping[str, Builtin]
) -> tuple[int, int]:
    """(columnar nodes, row-fallback nodes) the executor would choose."""
    col = row = 0
    stack = [root]
    while stack:
        node = stack.pop()
        if columnar_capable(node, builtins):
            col += 1
        else:
            row += 1
        stack.extend(node.children())
    return col, row


def annotated_pretty(
    node: PlanNode, builtins: Mapping[str, Builtin], indent: int = 0
) -> str:
    """``PlanNode.pretty`` with a per-node ``col``/``row`` mode tag, so
    ``:plan`` shows exactly which operators vectorize."""
    pad = "  " * indent
    tag = "col" if columnar_capable(node, builtins) else "row"
    out = [f"{pad}{node.label()}  ·{tag}"]
    for c in node.children():
        out.append(annotated_pretty(c, builtins, indent + 1))
    return "\n".join(out)


# ---------------------------------------------------------------------------
# Vector helpers (all operate on / return int64 ndarrays)
# ---------------------------------------------------------------------------

#: Per-sort compatibility masks over the term dictionary, grown lazily so
#: a scan's sort check becomes one fancy-index per column.  Entries are
#: replaced, never mutated, so concurrently-running executors only risk
#: duplicated work.
_SORT_MASKS: dict = {}


def _sort_mask(sort: str):
    n = len(_TERMS)
    cur = _SORT_MASKS.get(sort)
    if cur is not None and cur[0] >= n:
        return cur[1]
    start, old = (0, None) if cur is None else cur
    ext = _np.fromiter(
        (sorts_compatible(sort, t.sort) for t in _TERMS[start:n]),
        dtype=bool,
        count=n - start,
    )
    arr = ext if old is None else _np.concatenate([old, ext])
    _SORT_MASKS[sort] = (n, arr)
    return arr


def _pack(cols: list):
    """Collapse parallel key columns into one int64 code column preserving
    row equality (successive factorization keeps codes far below 2**63)."""
    codes = cols[0]
    for c in cols[1:]:
        _, inv1 = _np.unique(codes, return_inverse=True)
        u2, inv2 = _np.unique(c, return_inverse=True)
        codes = inv1.astype(_np.int64) * u2.size + inv2.astype(_np.int64)
    return codes


def _key_col(cols: list, key_idx: tuple, n: int):
    if len(key_idx) == 1:
        return cols[key_idx[0]]
    return _pack([cols[i] for i in key_idx])


def _equi_join_idx(lk, rk):
    """Matching (left, right) row-index vectors of an equi-join on packed
    int64 key columns: sort the right side once, then binary-search every
    left key and expand the hit ranges — no per-row Python at all."""
    order = _np.argsort(rk, kind="stable")
    rs = rk[order]
    lo = _np.searchsorted(rs, lk, "left")
    hi = _np.searchsorted(rs, lk, "right")
    cnt = hi - lo
    total = int(cnt.sum())
    lidx = _np.repeat(_np.arange(lk.size), cnt)
    starts = _np.repeat(lo, cnt)
    offsets = _np.arange(total) - _np.repeat(_np.cumsum(cnt) - cnt, cnt)
    ridx = order[starts + offsets]
    return lidx, ridx


def _take(cols: list, idx) -> list:
    return [c[idx] for c in cols]


def _distinct_cols_of(n: int, cols: list) -> tuple:
    """Deduplicate ID rows, returning ``(n, cols)`` of the distinct rows."""
    if not cols:
        return (1 if n else 0), []
    if n == 0:
        return 0, cols
    key = _key_col(cols, tuple(range(len(cols))), n)
    _, first = _np.unique(key, return_index=True)
    return int(first.size), _take(cols, first)


def _empty_cols(n: int) -> list:
    return [_np.empty(0, dtype=_np.int64) for _ in range(n)]


#: Size gate: vectorizing pays a fixed per-node cost (ndarray setup,
#: ``np.unique`` calls), while the row executor starts from its smallest
#: input and probes indexes — so a plan fed by a tiny scan leaf (a
#: single-fact maintenance delta, a near-empty relation) is cheaper
#: row-at-a-time no matter how large the other leaves are.  Chosen at
#: the maintenance-churn crossover; bulk loads and warm queries are
#: unaffected because every leaf is a full relation.
_MIN_VECTOR_ROWS = 64


class ColumnarExecutor(Executor):
    """Executes plans columnar where capable, row-at-a-time elsewhere.

    Same constructor and public surface as :class:`Executor` —
    ``batch()`` still returns term-tuple rows aligned with ``out_vars``
    and ``heads()`` still materializes head atoms — so every consumer
    (fixpoint, maintenance, server queries, recovery replay) swaps it in
    without change.  Raises :class:`PlanInapplicable` under exactly the
    same dynamic conditions as the row executor.
    """

    # -- entry points ------------------------------------------------------------

    #: Per-instance copy of :data:`_MIN_VECTOR_ROWS`; equivalence tests
    #: drop it to 0 to force the vector kernels on tiny relations.
    min_vector_rows = _MIN_VECTOR_ROWS

    def batch(self, node: PlanNode) -> list[Row]:
        if columnar_capable(node, self.builtins) \
                and self._vector_worthwhile(node):
            n, cols = self.cols(node)
            return self._decode(n, cols)
        method = _DISPATCH.get(node.__class__)
        if method is None:  # pragma: no cover - defensive
            raise PlanInapplicable(
                f"no executor for {node.__class__.__name__}"
            )
        self.stats.row_nodes += 1
        return method(self, node)

    def distinct_batch(self, node: PlanNode) -> list[Row]:
        if not columnar_capable(node, self.builtins) \
                or not self._vector_worthwhile(node):
            return super().distinct_batch(node)
        n, cols = self.cols(node)
        n, cols = _distinct_cols_of(n, cols)
        return self._decode(n, cols)

    def shaped_batch(self, node: PlanNode, take: tuple[int, ...]) -> list[Row]:
        if not columnar_capable(node, self.builtins) \
                or not self._vector_worthwhile(node):
            return super().shaped_batch(node, take)
        n, cols = self.cols(node)
        n, cols = _distinct_cols_of(n, [cols[i] for i in take])
        return self._decode(n, cols)

    def _vector_worthwhile(self, node: PlanNode) -> bool:
        """Whether every scan leaf feeds at least ``min_vector_rows``
        rows (see :data:`_MIN_VECTOR_ROWS`).

        Memoized per executor (row kernels recurse through ``batch``, so
        the same subtrees are asked repeatedly).  The gate is a pure
        performance heuristic — both paths compute identical rows — so a
        decision staying cached while the interpretation grows costs at
        most a missed vectorization, never correctness."""
        floor = self.min_vector_rows
        if not floor:
            return True
        try:
            cache = self._worth
        except AttributeError:
            cache = self._worth = {}
        hit = cache.get(node)
        if hit is not None:
            return hit
        delta = self.delta
        if delta and min(map(len, delta.values())) < floor:
            # Delta-pinned plan: the pinned scan reads exactly these
            # facts, and semi-naive/maintenance deltas are usually tiny —
            # answered from the dict sizes, no plan walk needed.
            cache[node] = False
            return False
        worth = True
        stack = [node]
        while stack:
            n = stack.pop()
            if n.__class__ is Scan:
                a = n.atom
                if n.delta:
                    rows = len(delta.get(a.pred, ())) if delta else 0
                else:
                    # For constant-bound scans the row executor reads an
                    # index bucket, so that bucket — not the relation —
                    # is the input to beat (same policy + estimate the
                    # join planner uses).
                    rows = self.interp.estimate_for_pattern(
                        a.pred, a.args, self.use_indexes
                    )
                if rows < floor:
                    worth = False
                    break
            else:
                stack.extend(n.children())
        cache[node] = worth
        return worth

    def cols(self, node: PlanNode) -> tuple:
        """Execute a plan as ID columns aligned with ``node.out_vars``."""
        cls = node.__class__
        if columnar_capable(node, self.builtins):
            self.stats.col_nodes += 1
            return _COL_DISPATCH[cls](self, node)
        method = _DISPATCH.get(cls)
        if method is None:  # pragma: no cover - defensive
            raise PlanInapplicable(f"no executor for {cls.__name__}")
        self.stats.row_nodes += 1
        return self._encode(method(self, node), len(node.out_vars))

    # -- encode / decode ---------------------------------------------------------

    def _encode(self, rows: list[Row], ncols: int) -> tuple:
        n = len(rows)
        self.stats.rows_encoded += n
        if not ncols:
            return n, []
        id_of = _ID_OF
        cols = [
            _np.fromiter((id_of(r[j]) for r in rows), _np.int64, count=n)
            for j in range(ncols)
        ]
        return n, cols

    def _decode(self, n: int, cols: list) -> list[Row]:
        self.stats.rows_decoded += n
        if not cols:
            return [()] * n
        term = _TERMS.__getitem__
        return list(zip(*[map(term, c.tolist()) for c in cols]))

    # -- leaves ------------------------------------------------------------------

    def _unit_cols(self, node: Unit) -> tuple:
        self.stats.note(node.op, 0, 1)
        return 1, []

    def _scan_cols(self, node: Scan) -> tuple:
        a = node.atom
        var_pos, const_checks, dup_checks, var_sorts = node._shape
        if not node.delta:
            entry = self.interp.id_columns(a.pred)
            if entry is not None:
                arity, n, bufs = entry
                if arity != a.arity:
                    self.stats.note(node.op, n, 0)
                    return 0, _empty_cols(len(var_pos))
                cols = [_np.frombuffer(b, dtype=_np.int64) for b in bufs]
                mask = None
                for i, t in const_checks:
                    m = cols[i] == _ID_OF(t)
                    mask = m if mask is None else (mask & m)
                for i, j in dup_checks:
                    m = cols[i] == cols[j]
                    mask = m if mask is None else (mask & m)
                for p, s in var_sorts:
                    m = _sort_mask(s)[cols[p]]
                    mask = m if mask is None else (mask & m)
                if mask is None:
                    out = [cols[p] for p in var_pos]
                    n_out = n
                else:
                    out = [cols[p][mask] for p in var_pos]
                    n_out = int(mask.sum())
                self.stats.note(node.op, n, n_out)
                return n_out, out
            facts = self.interp.candidates_for_pattern(
                a.pred, a.args, use_indexes=self.use_indexes
            )
        else:
            facts = self.delta.get(a.pred, ()) if self.delta is not None else ()
        # Delta scans and uncacheable relations: encode while matching.
        arity = a.arity
        matched: list = []
        append = matched.append
        n_in = 0
        for f in facts:
            n_in += 1
            args = f.args
            if len(args) != arity:
                continue
            ok = True
            for i, t in const_checks:
                if args[i] is not t and args[i] != t:
                    ok = False
                    break
            if ok:
                for i, j in dup_checks:
                    if args[i] is not args[j] and args[i] != args[j]:
                        ok = False
                        break
            if ok:
                for p, s in var_sorts:
                    if not sorts_compatible(s, args[p].sort):
                        ok = False
                        break
            if ok:
                append(args)
        id_of = _ID_OF
        n_out = len(matched)
        cols = [
            _np.fromiter(
                (id_of(args[p]) for args in matched), _np.int64, count=n_out
            )
            for p in var_pos
        ]
        self.stats.rows_encoded += n_out
        self.stats.note(node.op, n_in, n_out)
        return n_out, cols

    # -- binary ------------------------------------------------------------------

    def _join_cols(self, node: Join) -> tuple:
        ln, lcols = self.cols(node.left)
        meta = node._meta
        if meta is None:
            meta = node._meta = self._join_meta(node)
        lkey, rkey, rtake, probe = meta
        if ln and probe is not None and self.use_indexes:
            probed = self._probe_join_cols(node, ln, lcols, lkey, probe)
            if probed is not None:
                return probed
        rn, rcols = self.cols(node.right)
        if not ln or not rn:
            self.stats.note(node.op, ln + rn, 0)
            return 0, _empty_cols(len(node.out_vars))
        if not lkey:  # cross join
            lidx = _np.repeat(_np.arange(ln), rn)
            ridx = _np.tile(_np.arange(rn), ln)
        else:
            if len(lkey) == 1:
                lk = lcols[lkey[0]]
                rk = rcols[rkey[0]]
            else:
                # Pack left and right keys through one shared code space.
                packed = _pack([
                    _np.concatenate([lcols[i], rcols[j]])
                    for i, j in zip(lkey, rkey)
                ])
                lk, rk = packed[:ln], packed[ln:]
            lidx, ridx = _equi_join_idx(lk, rk)
        out = _take(lcols, lidx) + _take([rcols[i] for i in rtake], ridx)
        n_out = int(lidx.size)
        self.stats.note(node.op, ln + rn, n_out)
        return n_out, out

    def _probe_join_cols(
        self, node: Join, ln: int, lcols: list, lkey: tuple, probe
    ) -> Optional[tuple]:
        """Index nested-loop on ID columns: per distinct left key, decode
        the key terms once, read the relation's argument-index bucket and
        encode only the joining facts — the columnar mirror of
        :meth:`Executor._probe_join`, same row set when it applies.

        The applicability gate is stricter than the row executor's:
        probing runs a Python loop per candidate fact, while the
        vectorized sort join costs C-speed work linear-log in the
        relation, so probing only pays off when the distinct left keys
        select a small fraction of the relation (the semi-naive
        small-delta rounds it exists for)."""
        pred, arity, positions, template, rtake, dup_checks, var_sorts = probe
        facts = self.interp.facts_of(pred)
        if len(facts) < INDEX_MIN_FACTS:
            return None
        # Gate on the C-side distinct-key count before paying the Python
        # tolist/dict materialization it would take to actually probe
        # (sort+diff: cheaper than np.unique's hash table on int64).
        sk = _np.sort(_key_col(lcols, lkey, ln))
        nkeys = 1 + int((sk[1:] != sk[:-1]).sum())
        if nkeys * 16 >= len(facts):
            return None
        lkeys = list(zip(*[lcols[i].tolist() for i in lkey]))
        by_key: dict = {}
        for i, k in enumerate(lkeys):
            b = by_key.get(k)
            if b is None:
                by_key[k] = [i]
            else:
                b.append(i)
        id_of = _ID_OF
        candidates = self.interp.candidates
        lidx: list = []
        tails: list = []
        n_in = ln
        for key_ids, bucket in by_key.items():
            probe_key = tuple(
                t if k is None else _TERMS[key_ids[k]] for t, k in template
            )
            for f in candidates(pred, positions, probe_key):
                n_in += 1
                args = f.args
                if len(args) != arity:
                    continue
                ok = True
                for i, j in dup_checks:
                    if args[i] is not args[j] and args[i] != args[j]:
                        ok = False
                        break
                if ok:
                    for p, s in var_sorts:
                        if not sorts_compatible(s, args[p].sort):
                            ok = False
                            break
                if ok:
                    tail = tuple(id_of(args[p]) for p in rtake)
                    for i in bucket:
                        lidx.append(i)
                        tails.append(tail)
        idx = _np.asarray(lidx, dtype=_np.int64)
        out = _take(lcols, idx)
        n_out = len(lidx)
        out += [
            _np.fromiter((t[j] for t in tails), _np.int64, count=n_out)
            for j in range(len(rtake))
        ]
        self.stats.note(node.op, n_in, n_out)
        return n_out, out

    # -- per-row operators --------------------------------------------------------

    def _select_cols(self, node: Select) -> tuple:
        n, cols = self.cols(node.input)
        metas = node._cmeta  # set by columnar_capable before dispatch
        if node.kind == "equals":
            (lk, lv), (rk, rv) = metas
            if lk == "col" and rk == "col":
                mask = cols[lv] == cols[rv]
            elif lk == "col":
                mask = cols[lv] == _ID_OF(rv)
            elif rk == "col":
                mask = cols[rv] == _ID_OF(lv)
            else:
                n_out = n if _ID_OF(lv) == _ID_OF(rv) else 0
                self.stats.note(node.op, n, n_out)
                return (n, cols) if n_out else (0, _empty_cols(len(cols)))
            out = [c[mask] for c in cols]
            n_out = int(mask.sum())
            self.stats.note(node.op, n, n_out)
            return n_out, out
        # membership check: the container's real value decides
        (ek, ev), (ck, cv) = metas
        if ck == "col":
            containers = [_TERMS[i] for i in cols[cv].tolist()]
        else:
            if n and not isinstance(cv, SetValue):
                raise PlanInapplicable(
                    f"membership container {cv} is not a set"
                )
            containers = repeat(cv, n)
        if ek == "col":
            elems = [_TERMS[i] for i in cols[ev].tolist()]
        else:
            elems = repeat(ev, n)
        keep: list = []
        ka = keep.append
        for i, (e, container) in enumerate(zip(elems, containers)):
            if not isinstance(container, SetValue):
                raise PlanInapplicable(
                    f"membership container {container} is not a set"
                )
            if e in container.elems:
                ka(i)
        idx = _np.asarray(keep, dtype=_np.int64)
        out = _take(cols, idx)
        self.stats.note(node.op, n, len(keep))
        return len(keep), out

    def _anti_join_cols(self, node: AntiJoin) -> tuple:
        n, cols = self.cols(node.input)
        metas = node._cmeta
        pred = node.atom.pred
        holds = self.interp.holds
        if not metas:  # zero-arity negated atom: one oracle call decides
            if holds(Atom(pred, ())):
                self.stats.note(node.op, n, 0)
                return 0, _empty_cols(len(cols))
            self.stats.note(node.op, n, n)
            return n, cols
        term = _TERMS.__getitem__
        seqs = [
            map(term, cols[v].tolist()) if k == "col" else repeat(v, n)
            for k, v in metas
        ]
        keep: list = []
        ka = keep.append
        for i, args in enumerate(zip(*seqs)):
            if not holds(Atom(pred, args)):
                ka(i)
        idx = _np.asarray(keep, dtype=_np.int64)
        out = _take(cols, idx)
        self.stats.note(node.op, n, len(keep))
        return len(keep), out

    # -- schema operators ---------------------------------------------------------

    def _project_cols(self, node: Project) -> tuple:
        n, cols = self.cols(node.input)
        take = node._meta
        if take is None:
            pos = {v: i for i, v in enumerate(node.input.out_vars)}
            take = node._meta = tuple(pos[v] for v in node.vars)
        # Columns are never mutated once built, so projection shares them.
        self.stats.note(node.op, n, n)
        return n, [cols[i] for i in take]

    def _distinct_cols(self, node: Distinct) -> tuple:
        n, cols = self.cols(node.input)
        if not cols:
            n_out = 1 if n else 0
            self.stats.note(node.op, n, n_out)
            return n_out, []
        if n == 0:
            self.stats.note(node.op, 0, 0)
            return 0, cols
        key = _key_col(cols, tuple(range(len(cols))), n)
        _, first = _np.unique(key, return_index=True)
        out = _take(cols, first)
        n_out = int(first.size)
        self.stats.note(node.op, n, n_out)
        return n_out, out

    def _group_by_cols(self, node: GroupBy) -> tuple:
        n, cols = self.cols(node.input)
        meta = node._meta
        if meta is None:
            pos = {v: i for i, v in enumerate(node.input.out_vars)}
            meta = node._meta = (
                tuple(pos[v] for v in node.key_vars), pos[node.group_var]
            )
        key_idx, group_idx = meta
        if n == 0:
            self.stats.note(node.op, 0, 0)
            return 0, _empty_cols(len(key_idx) + 1)
        term = _TERMS.__getitem__
        id_of = _ID_OF
        if not key_idx:  # one group holding every value
            members = set(cols[group_idx].tolist())
            gid = id_of(setvalue(map(term, members)))
            self.stats.note(node.op, n, 1)
            return 1, [_np.asarray([gid], dtype=_np.int64)]
        key = _key_col(cols, key_idx, n)
        order = _np.argsort(key, kind="stable")
        gs = cols[group_idx][order]
        ks = key[order]
        bounds = _np.nonzero(_np.diff(ks))[0] + 1
        groups = _np.split(gs, bounds)
        reps = order[
            _np.concatenate([_np.asarray([0], dtype=bounds.dtype), bounds])
        ]
        out = _take([cols[i] for i in key_idx], reps)
        out.append(_np.fromiter(
            (id_of(setvalue(map(term, set(g.tolist())))) for g in groups),
            _np.int64,
            count=len(groups),
        ))
        self.stats.note(node.op, n, len(groups))
        return len(groups), out


_COL_DISPATCH = {
    Unit: ColumnarExecutor._unit_cols,
    Scan: ColumnarExecutor._scan_cols,
    Join: ColumnarExecutor._join_cols,
    Select: ColumnarExecutor._select_cols,
    AntiJoin: ColumnarExecutor._anti_join_cols,
    Project: ColumnarExecutor._project_cols,
    Distinct: ColumnarExecutor._distinct_cols,
    GroupBy: ColumnarExecutor._group_by_cols,
}


def make_executor(
    interp: Interpretation,
    builtins,
    delta=None,
    use_indexes: bool = True,
    stats=None,
    columnar: bool = True,
) -> Executor:
    """The executor the options ask for: columnar (default) or row.

    Falls back to the row executor when numpy is unavailable, so the
    ``columnar`` option is safe to leave on in every environment.
    """
    cls = ColumnarExecutor if (columnar and _np is not None) else Executor
    return cls(
        interp, builtins, delta=delta, use_indexes=use_indexes, stats=stats
    )
