"""A goal-directed (SLD-style) prover for LPS programs.

Section 3.2 of the paper remarks that "the standard procedural semantics can
also be extended to LPS.  However, to do so, we have to use arbitrary
unifiers, rather than the most specific one.  For this reason, it is no
longer a practical decision procedure."  This module realises exactly that:

* clause application uses :func:`repro.core.unify.unify_atoms`, which
  enumerates a complete finite set of unifiers (set terms are non-unitary);
* restricted quantifiers in a clause body are *delayed* until their range
  set is instantiated, then unfolded per Lemma 4;
* the search is depth-bounded and loop-checked on ground subgoals, so it is
  a sound but — as the paper predicts — incomplete decision procedure.

The prover is compared against the bottom-up engine in the tests (they must
agree on ground queries whenever the prover terminates) and in benchmark B3.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Optional, Sequence

from ..core.atoms import Atom, Literal, atom_order_key
from ..core.clauses import GroupingClause, LPSClause
from ..core.errors import EvaluationError
from ..core.formulas import Formula, evaluate
from ..core.program import Program
from ..core.sorts import EQUALS, MEMBER
from ..core.substitution import Subst
from ..core.terms import SetValue, Term, Var, free_vars
from ..core.unify import unify, unify_atoms
from ..semantics.interpretation import Interpretation
from .builtins import DEFAULT_BUILTINS, Builtin
from .database import Database


@dataclass(frozen=True)
class _Goal:
    """A pending proof obligation.

    ``quantifiers`` is the not-yet-unfolded prefix for goals spawned from a
    clause body; a goal is *ready* once enough of the environment is known
    (its quantifier sources resolve to ground sets, or it has none).
    ``ancestors`` holds the ground goal atoms on this goal's own derivation
    path — the loop check compares against them only, so repeated *sibling*
    subgoals (e.g. ``p(b) :- p(a), p(a)``) are unaffected.
    """

    literal: Literal
    quantifiers: tuple[tuple[Var, Term], ...] = ()
    ancestors: frozenset = frozenset()


class TopDownProver:
    """Depth-bounded SLD proof search with set unification."""

    def __init__(
        self,
        program: Program,
        database: Optional[Database] = None,
        builtins: Mapping[str, Builtin] = DEFAULT_BUILTINS,
        max_depth: int = 400,
    ) -> None:
        for c in program.clauses:
            if isinstance(c, GroupingClause):
                raise EvaluationError(
                    "the top-down prover handles LPS clauses only"
                )
        self.builtins = builtins
        self.max_depth = max_depth
        # Ground unit clauses are facts: they go to an indexed store (shared
        # machinery with the bottom-up engine — see DESIGN.md) rather than
        # the clause list, so goal resolution against a large EDB is a hash
        # lookup on the goal's bound argument positions instead of a linear
        # scan that unifies with every unit clause.
        self._by_pred: dict[str, list[LPSClause]] = {}
        self._facts = Interpretation()
        fact_atoms: list[Atom] = []
        for c in program.lps_clauses():
            if c.is_fact and c.head.is_ground() and not c.head.is_special():
                fact_atoms.append(c.head)
            else:
                self._by_pred.setdefault(c.head.pred, []).append(c)
        if database is not None:
            fact_atoms.extend(database.facts())
        # Deterministic fact order (database iteration order is not).
        for a in sorted(fact_atoms, key=atom_order_key):
            self._facts.add(a)
        self._fresh = itertools.count()

    # -- public API -----------------------------------------------------------

    def prove(self, goal: Atom, env: Subst = Subst()) -> Iterator[Subst]:
        """Enumerate answer substitutions for a single goal atom."""
        goals = [_Goal(Literal(goal, True))]
        goal_vars = sorted(goal.free_vars(), key=lambda v: v.name)
        for sigma in self._solve(goals, env, depth=0):
            # Resolve chains through renamed clause variables before
            # projecting onto the query variables.
            yield Subst({v: sigma.apply(v) for v in goal_vars
                         if sigma.apply(v) != v})

    def holds(self, goal: Atom) -> bool:
        """Whether a ground goal is provable."""
        return next(self.prove(goal), None) is not None

    def ask(self, goal: Atom, limit: Optional[int] = None) -> list[Subst]:
        """Collect up to ``limit`` answers."""
        out = []
        for sigma in self.prove(goal):
            out.append(sigma)
            if limit is not None and len(out) >= limit:
                break
        return out

    # -- search -----------------------------------------------------------------

    def _solve(
        self,
        goals: list[_Goal],
        env: Subst,
        depth: int,
    ) -> Iterator[Subst]:
        if not goals:
            yield env
            return
        if depth > self.max_depth:
            return
        idx = self._select(goals, env)
        if idx is None:
            # Every remaining goal is delayed on an uninstantiated set; the
            # paper's "no longer a practical decision procedure" in action.
            return
        goal = goals[idx]
        rest = goals[:idx] + goals[idx + 1:]
        for env2, new_goals in self._expand(goal, env):
            yield from self._solve(new_goals + rest, env2, depth + 1)

    def _select(self, goals: list[_Goal], env: Subst) -> Optional[int]:
        for i, g in enumerate(goals):
            if self._ready(g, env):
                return i
        return None

    def _ready(self, g: _Goal, env: Subst) -> bool:
        if g.quantifiers:
            # Pending prefix: the goal is ready to *unfold* as soon as every
            # range set is instantiated; the literal itself is only
            # inspected after expansion grounds the bound variables.
            return all(
                isinstance(env.apply(source), SetValue)
                for _, source in g.quantifiers
            )
        a = g.literal.atom
        if not g.literal.positive:
            return a.substitute(env).is_ground()
        if a.pred == MEMBER:
            return isinstance(env.apply(a.args[1]), SetValue)
        if a.pred == EQUALS:
            l, r = (env.apply(t) for t in a.args)
            return l.is_ground() or r.is_ground() or isinstance(
                l, Var
            ) or isinstance(r, Var)
        if a.pred in self.builtins:
            args = tuple(env.apply(t) for t in a.args)
            return self.builtins[a.pred].ready(args)
        return True

    def _expand(
        self, goal: _Goal, env: Subst
    ) -> Iterator[tuple[Subst, list[_Goal]]]:
        # Unfold the (now ground) quantifier prefix first: Lemma 4.
        if goal.quantifiers:
            (var, source), remaining = goal.quantifiers[0], goal.quantifiers[1:]
            sv = env.apply(source)
            assert isinstance(sv, SetValue)
            # The goal multiplies into one copy per element; the empty set
            # discharges it entirely (vacuous truth).
            goals_out: list[_Goal] = []
            for e in sv.sorted_elems():
                lit = goal.literal.substitute(Subst({var: e}))
                goals_out.append(_Goal(lit, remaining, goal.ancestors))
            yield env, goals_out
            return

        lit = goal.literal
        a = lit.atom.substitute(env)

        if not lit.positive:
            # Negation as failure on ground literals.
            if self.holds_closed(a):
                return
            yield env, []
            return

        if a.pred == EQUALS:
            for sigma in unify(a.args[0], a.args[1], env):
                yield sigma, []
            return
        if a.pred == MEMBER:
            container = env.apply(a.args[1])
            if isinstance(container, SetValue):
                for e in container.sorted_elems():
                    for sigma in unify(a.args[0], e, env):
                        yield sigma, []
            return
        if a.pred in self.builtins:
            b = self.builtins[a.pred]
            for sigma in b.solve(tuple(a.args), env):
                yield sigma, []
            return

        if a.is_ground() and a in goal.ancestors:
            return  # loop check on the goal's own derivation path
        child_ancestors = (
            goal.ancestors | {a} if a.is_ground() else goal.ancestors
        )
        for fct in self._fact_candidates(a):
            for sigma in unify_atoms(a, fct, env):
                yield sigma, []
        for c in self._by_pred.get(a.pred, ()):
            renamed = self._rename(c)
            for sigma in unify_atoms(a, renamed.head, env):
                body_goals = [
                    _Goal(l, renamed.quantifiers, child_ancestors)
                    for l in renamed.body
                ]
                if not renamed.body and renamed.quantifiers:
                    # A clause whose entire body is quantified over possibly
                    # empty sets with no literals is just true.
                    body_goals = []
                yield sigma, body_goals

    def _fact_candidates(self, a: Atom):
        """Facts that can resolve the (env-applied) goal atom ``a``.

        Uses the interpretation's shared candidate policy (single-position
        indexes, most selective bound position first — see
        :meth:`Interpretation.candidates_for_pattern`); small relations
        and all-unbound goals scan the insertion-ordered fact map
        directly.  Facts were inserted in ``atom_order_key`` order, so
        enumeration order is deterministic regardless of how the database
        iterated.
        """
        return self._facts.candidates_for_pattern(a.pred, a.args)

    def holds_closed(self, a: Atom) -> bool:
        """Ground-atom provability (used for negation as failure)."""
        return next(self.prove(a), None) is not None

    def _rename(self, c: LPSClause) -> LPSClause:
        """Rename clause variables apart with a fresh suffix."""
        n = next(self._fresh)
        mapping = {
            v: Var(f"{v.name}__r{n}", v.var_sort)
            for v in (c.free_vars() | c.quantified_vars())
        }
        theta = Subst(mapping)
        return LPSClause(
            head=c.head.substitute(theta),
            quantifiers=tuple(
                (mapping.get(v, v), theta.apply(s)) for v, s in c.quantifiers
            ),
            body=tuple(l.substitute(theta) for l in c.body),
        )
