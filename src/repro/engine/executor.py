"""Set-at-a-time execution of compiled rule plans.

The executor evaluates a :mod:`repro.engine.ir` plan bottom-up, carrying
**binding columns**: each operator produces a batch of rows — tuples of
canonical ground terms positionally aligned with the node's ``out_vars``
schema — instead of one :class:`~repro.core.substitution.Subst` per
intermediate tuple.  Scans read the
:class:`~repro.semantics.interpretation.Interpretation`'s incremental
argument indexes (or, for delta-flagged scans, the round's semi-naive
delta relation); joins are hash joins whose build side is chosen by
actual batch size — the dynamic half of the selectivity heuristics the
planner lifted out of ``Solver._priority``.

Equivalence discipline.  Compilation predicts readiness statically; the
executor re-checks every type-sensitive prediction on real values
(builtin ``ready`` modes, membership in a non-set value bound to an ELPS
``u`` variable, equality with neither side ground) and raises
:class:`PlanInapplicable` when the prediction fails.  Callers catch it
and re-run that one rule application through the tuple-at-a-time solver,
so the computed model is bit-identical with plans on or off — the
invariant ``tests/test_index_vs_scan.py`` enforces across the whole
``compile_plans × use_indexes × plan_joins`` grid.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Optional, Sequence

from ..core.atoms import Atom
from ..core.formulas import evaluate_ground_atom
from ..core.sorts import sorts_compatible
from ..core.substitution import EMPTY_SUBST, Subst
from ..core.terms import SetExpr, SetValue, Term, Var, free_vars, setvalue
from ..core.unify import match_atom, unify
from ..semantics.interpretation import INDEX_MIN_FACTS, Interpretation
from .builtins import DEFAULT_BUILTINS, Builtin
from .ir import (
    AntiJoin,
    Compute,
    Distinct,
    ExecStats,
    GroupBy,
    Join,
    PlanNode,
    Project,
    Row,
    Scan,
    Select,
    Unit,
    Unnest,
    distinct_rows,
    group_rows,
    join_rows,
)


class PlanInapplicable(Exception):
    """A static scheduling prediction failed on real values; the caller
    must re-run this rule application through the tuple-at-a-time solver."""


class Executor:
    """Evaluates plans against one interpretation (plus optional deltas).

    ``delta`` maps predicate names to the current semi-naive delta facts;
    only :class:`~repro.engine.ir.Scan` nodes flagged ``delta`` read it —
    other occurrences of the same predicate see the full interpretation,
    exactly like the tuple path's pinned differentiation.
    """

    def __init__(
        self,
        interp: Interpretation,
        builtins: Mapping[str, Builtin] = DEFAULT_BUILTINS,
        delta: Optional[Mapping[str, Iterable[Atom]]] = None,
        use_indexes: bool = True,
        stats: Optional[ExecStats] = None,
    ) -> None:
        self.interp = interp
        self.builtins = builtins
        self.delta = delta
        self.use_indexes = use_indexes
        self.stats = stats if stats is not None else ExecStats()

    # -- entry points ------------------------------------------------------------

    def batch(self, node: PlanNode) -> list[Row]:
        """Execute a plan; rows align with ``node.out_vars``."""
        cls = node.__class__
        method = _DISPATCH.get(cls)
        if method is None:  # pragma: no cover - defensive
            raise PlanInapplicable(f"no executor for {cls.__name__}")
        return method(self, node)

    def distinct_batch(self, node: PlanNode) -> list[Row]:
        """``batch()`` without duplicate rows.

        Every engine consumer treats plan output as a *set* of rows (head
        derivation into an interpretation, maintenance keyed on the free
        variables, query answers deduplicated) — deduplicating inside the
        executor lets the columnar subclass collapse duplicates on ID
        columns before paying the per-cell decode.
        """
        return distinct_rows(self.batch(node))

    def shaped_batch(self, node: PlanNode, take: tuple[int, ...]) -> list[Row]:
        """Distinct rows projected to the ``take`` column indices.

        The head-materialization fast path for Datalog-shaped heads: the
        caller builds one atom per returned row, so projecting and
        deduplicating first — on ID columns in the columnar subclass —
        skips decoding and substituting rows that only differ in
        projected-away columns.
        """
        rows = self.batch(node)
        return distinct_rows([tuple(r[i] for i in take) for r in rows])

    def heads(self, node: PlanNode, head: Atom) -> list[Atom]:
        """Execute a (projected, distinct) plan and substitute the head."""
        rows = self.batch(node)
        vars_ = node.out_vars
        if not vars_:
            return [head] if rows else []
        out = []
        for row in rows:
            out.append(head.substitute(Subst._make(dict(zip(vars_, row)))))
        return out

    # -- leaves ------------------------------------------------------------------

    def _unit(self, node: Unit) -> list[Row]:
        self.stats.note(node.op, 0, 1)
        return [()]

    def _scan(self, node: Scan) -> list[Row]:
        a = node.atom
        if node.delta:
            facts: Iterable[Atom] = (
                self.delta.get(a.pred, ()) if self.delta is not None else ()
            )
        else:
            facts = self.interp.candidates_for_pattern(
                a.pred, a.args, use_indexes=self.use_indexes
            )
        shape = node._shape
        if shape is None:
            shape = node._shape = _scan_shape(a, node.out_vars)
        rows: list[Row] = []
        n_in = 0
        arity = a.arity
        if shape is _GENERIC:
            out_vars = node.out_vars
            for f in facts:
                n_in += 1
                for sigma in match_atom(a, f):
                    rows.append(tuple(sigma._map[v] for v in out_vars))
        else:
            var_pos, const_checks, dup_checks, var_sorts = shape
            for f in facts:
                n_in += 1
                args = f.args
                if len(args) != arity:
                    continue
                ok = True
                for i, t in const_checks:
                    if args[i] is not t and args[i] != t:
                        ok = False
                        break
                if ok:
                    for i, j in dup_checks:
                        if args[i] is not args[j] and args[i] != args[j]:
                            ok = False
                            break
                if ok:
                    for p, s in var_sorts:
                        if not sorts_compatible(s, args[p].sort):
                            ok = False
                            break
                if ok:
                    rows.append(tuple(args[p] for p in var_pos))
        self.stats.note(node.op, n_in, len(rows))
        return rows

    # -- binary ------------------------------------------------------------------

    def _join_meta(self, node: Join):
        """Static join metadata, memoized on the node: hash-join key and
        take indices, plus the index-probe descriptor when the right child
        is a plain (non-delta) scan with a deterministic match shape."""
        lv, rv = node.left.out_vars, node.right.out_vars
        lpos = {v: i for i, v in enumerate(lv)}
        rpos = {v: i for i, v in enumerate(rv)}
        lkey = tuple(lpos[v] for v in node.shared)
        rkey = tuple(rpos[v] for v in node.shared)
        rtake = tuple(rpos[v] for v in node.out_vars[len(lv):])
        probe = None
        right = node.right
        if node.shared and right.__class__ is Scan and not right.delta:
            a = right.atom
            shape = right._shape
            if shape is None:
                shape = right._shape = _scan_shape(a, right.out_vars)
            if shape is not _GENERIC:
                var_pos, const_checks, dup_checks, var_sorts = shape
                out_index = {v: i for i, v in enumerate(right.out_vars)}
                # Index signature: the shared variables' (first) argument
                # positions plus the pattern's ground positions, ascending.
                sig = [
                    (var_pos[out_index[v]], None, k)
                    for k, v in enumerate(node.shared)
                ]
                sig += [(p, t, None) for p, t in const_checks]
                sig.sort(key=lambda x: x[0])
                probe = (
                    a.pred,
                    a.arity,
                    tuple(p for p, _, _ in sig),          # index positions
                    tuple((t, k) for _, t, k in sig),     # key template
                    tuple(var_pos[out_index[v]]
                          for v in node.out_vars[len(lv):]),
                    dup_checks,
                    var_sorts,
                )
        return (lkey, rkey, rtake, probe)

    def _join(self, node: Join) -> list[Row]:
        lrows = self.batch(node.left)
        meta = node._meta
        if meta is None:
            meta = node._meta = self._join_meta(node)
        lkey, rkey, rtake, probe = meta
        if lrows and probe is not None and self.use_indexes:
            probed = self._probe_join(node, lrows, lkey, probe)
            if probed is not None:
                return probed
        rrows = self.batch(node.right)
        out = join_rows(lrows, rrows, lkey, rkey, rtake)
        self.stats.note(node.op, len(lrows) + len(rrows), len(out))
        return out

    def _probe_join(
        self, node: Join, lrows: list[Row], lkey: tuple[int, ...], probe
    ) -> Optional[list[Row]]:
        """Index nested-loop: probe the scan's relation per distinct key.

        When the left batch has fewer distinct join keys than the right
        relation has facts, reading the relation's incremental argument
        index bucket per key touches exactly the joining facts instead of
        hash-building over a full scan — the batch-level descendant of the
        tuple path's index probes, and what keeps single-delta semi-naive
        rounds O(output).  Returns ``None`` when inapplicable (small
        relations, too many keys) and the caller hash joins instead; both
        strategies compute the same row set.
        """
        pred, arity, positions, template, rtake, dup_checks, var_sorts = probe
        facts = self.interp.facts_of(pred)
        if len(facts) < INDEX_MIN_FACTS:
            return None
        by_key: dict[tuple, list[Row]] = {}
        for l in lrows:
            by_key.setdefault(tuple(l[i] for i in lkey), []).append(l)
        if len(by_key) >= len(facts):
            return None
        out: list[Row] = []
        n_in = len(lrows)
        candidates = self.interp.candidates
        for lkey_vals, bucket_rows in by_key.items():
            probe_key = tuple(
                t if k is None else lkey_vals[k] for t, k in template
            )
            for f in candidates(pred, positions, probe_key):
                n_in += 1
                args = f.args
                if len(args) != arity:
                    continue
                ok = True
                for i, j in dup_checks:
                    if args[i] is not args[j] and args[i] != args[j]:
                        ok = False
                        break
                if ok:
                    for p, s in var_sorts:
                        if not sorts_compatible(s, args[p].sort):
                            ok = False
                            break
                if ok:
                    tail = tuple(args[p] for p in rtake)
                    for l in bucket_rows:
                        out.append(l + tail)
        self.stats.note(node.op, n_in, len(out))
        return out

    # -- per-row operators --------------------------------------------------------

    def _resolver(
        self, term: Term, vars_: Sequence[Var]
    ) -> Callable[[Row], Term]:
        """A per-row evaluator of one argument term under the schema."""
        pos = {v: i for i, v in enumerate(vars_)}
        if term.__class__ is Var:
            i = pos.get(term)
            if i is None:
                return lambda row: term
            return lambda row, i=i: row[i]
        if term.is_ground():
            value = EMPTY_SUBST.apply(term)  # canonicalize once
            return lambda row: value
        needed = [(v, pos[v]) for v in free_vars(term) if v in pos]
        if not needed:
            return lambda row: term

        def resolve(row: Row, term=term, needed=needed) -> Term:
            return Subst._make({v: row[i] for v, i in needed}).apply(term)

        return resolve

    def _select(self, node: Select) -> list[Row]:
        rows = self.batch(node.input)
        a = node.literal.atom
        res = node._meta
        if res is None:
            res = node._meta = tuple(
                self._resolver(t, node.input.out_vars) for t in a.args
            )
        out: list[Row]
        if node.kind == "equals":
            lres, rres = res
            out = [r for r in rows if lres(r) == rres(r)]
        elif node.kind == "member":
            eres, cres = res
            out = []
            for r in rows:
                container = cres(r)
                if not isinstance(container, SetValue):
                    raise PlanInapplicable(
                        f"membership container {container} is not a set"
                    )
                if eres(r) in container.elems:
                    out.append(r)
        else:  # builtin check
            b = self.builtins[a.pred]
            out = []
            for r in rows:
                args = tuple(f(r) for f in res)
                if not b.ready(args):
                    raise PlanInapplicable(
                        f"builtin {a.pred} not ready for {args}"
                    )
                if next(iter(b.solve(args, EMPTY_SUBST)), None) is not None:
                    out.append(r)
        self.stats.note(node.op, len(rows), len(out))
        return out

    def _compute(self, node: Compute) -> list[Row]:
        rows = self.batch(node.input)
        a = node.atom
        res = node._meta
        if res is None:
            res = node._meta = tuple(
                self._resolver(t, node.input.out_vars) for t in a.args
            )
        new_vars = node.new_vars
        out: list[Row] = []
        if node.kind == "equals":
            lres, rres = res
            for r in rows:
                l, rt = lres(r), rres(r)
                if not (l.is_ground() or rt.is_ground()):
                    raise PlanInapplicable(
                        f"equality {l} = {rt} with neither side ground"
                    )
                for sigma in unify(l, rt, EMPTY_SUBST):
                    out.append(r + _extension(sigma, new_vars))
        else:  # builtin binding new variables
            b = self.builtins[a.pred]
            for r in rows:
                args = tuple(f(r) for f in res)
                if not b.ready(args):
                    raise PlanInapplicable(
                        f"builtin {a.pred} not ready for {args}"
                    )
                for sigma in b.solve(args, EMPTY_SUBST):
                    out.append(r + _extension(sigma, new_vars))
        self.stats.note(node.op, len(rows), len(out))
        return out

    def _unnest(self, node: Unnest) -> list[Row]:
        rows = self.batch(node.input)
        res = node._meta
        if res is None:
            vars_ = node.input.out_vars
            res = node._meta = (
                self._resolver(node.elem, vars_),
                self._resolver(node.source, vars_),
            )
        eres, sres = res
        out: list[Row] = []
        if node.mode == "expand":
            sort = node.elem.var_sort
            for r in rows:
                source = sres(r)
                if not isinstance(source, SetValue):
                    raise PlanInapplicable(
                        f"membership source {source} is not a set"
                    )
                for e in source.sorted_elems():
                    if sorts_compatible(sort, e.sort):
                        out.append(r + (e,))
        else:  # unify a structured element pattern against each member
            new_vars = node.new_vars
            for r in rows:
                source = sres(r)
                if not isinstance(source, SetValue):
                    raise PlanInapplicable(
                        f"membership source {source} is not a set"
                    )
                elem = eres(r)
                for e in source.sorted_elems():
                    for sigma in unify(elem, e, EMPTY_SUBST):
                        out.append(r + _extension(sigma, new_vars))
        self.stats.note(node.op, len(rows), len(out))
        return out

    def _anti_join(self, node: AntiJoin) -> list[Row]:
        rows = self.batch(node.input)
        a = node.atom
        res = node._meta
        if res is None:
            res = node._meta = tuple(
                self._resolver(t, node.input.out_vars) for t in a.args
            )
        pred = a.pred
        out: list[Row] = []
        for r in rows:
            ground = Atom(pred, tuple(f(r) for f in res))
            if not evaluate_ground_atom(ground, self._oracle):
                out.append(r)
        self.stats.note(node.op, len(rows), len(out))
        return out

    def _oracle(self, a: Atom) -> bool:
        # Mirrors Solver._oracle: builtins are decided by evaluation, other
        # predicates by the (lower-stratum-complete) interpretation; the
        # delta is never consulted — stratified negation reads closed data.
        if a.pred in self.builtins:
            b = self.builtins[a.pred]
            return next(iter(b.solve(a.args, EMPTY_SUBST)), None) is not None
        return self.interp.holds(a)

    # -- schema operators ---------------------------------------------------------

    def _project(self, node: Project) -> list[Row]:
        rows = self.batch(node.input)
        take = node._meta
        if take is None:
            pos = {v: i for i, v in enumerate(node.input.out_vars)}
            take = node._meta = tuple(pos[v] for v in node.vars)
        out = [tuple(r[i] for i in take) for r in rows]
        self.stats.note(node.op, len(rows), len(out))
        return out

    def _distinct(self, node: Distinct) -> list[Row]:
        rows = self.batch(node.input)
        out = distinct_rows(rows)
        self.stats.note(node.op, len(rows), len(out))
        return out

    def _group_by(self, node: GroupBy) -> list[Row]:
        rows = self.batch(node.input)
        meta = node._meta
        if meta is None:
            pos = {v: i for i, v in enumerate(node.input.out_vars)}
            meta = node._meta = (
                tuple(pos[v] for v in node.key_vars), pos[node.group_var]
            )
        key_idx, group_idx = meta
        groups = group_rows(rows, key_idx, group_idx)
        out = [key + (setvalue(values),) for key, values in groups.items()]
        self.stats.note(node.op, len(rows), len(out))
        return out


def _extension(sigma: Subst, new_vars: tuple[Var, ...]) -> Row:
    """Ground values for the variables a unifier/builtin step just bound."""
    cells = []
    for v in new_vars:
        t = sigma.apply(v)
        if not t.is_ground():
            raise PlanInapplicable(f"{v} not grounded by {sigma}")
        cells.append(t)
    return tuple(cells)


#: Sentinel: the pattern needs the generic matcher (structured non-ground
#: args, or ground SetExpr args that must canonicalize before comparing).
_GENERIC = object()


def _scan_shape(a: Atom, out_vars: tuple[Var, ...]):
    """Precompute the deterministic column extraction for a scan pattern.

    Mirrors :func:`repro.core.unify.match_atom_fast`: patterns whose args
    are variables or ground non-``SetExpr`` terms match deterministically,
    so the scan can emit columns directly; anything else falls back to the
    generic enumerating matcher.  ``out_vars`` fixes the column order.
    """
    var_first: dict[Var, int] = {}
    const_checks: list[tuple[int, Term]] = []
    dup_checks: list[tuple[int, int]] = []
    for i, t in enumerate(a.args):
        if t.__class__ is Var:
            j = var_first.get(t)
            if j is None:
                var_first[t] = i
            else:
                dup_checks.append((i, j))
        elif t.__class__ is SetExpr:
            return _GENERIC
        elif t.is_ground():
            const_checks.append((i, t))
        else:
            return _GENERIC
    var_pos = tuple(var_first[v] for v in out_vars)
    var_sorts = tuple(
        (p, v.var_sort)
        for v, p in zip(out_vars, var_pos)
        if v.var_sort != "u"
    )
    return (var_pos, tuple(const_checks), tuple(dup_checks), var_sorts)


_DISPATCH = {
    Unit: Executor._unit,
    Scan: Executor._scan,
    Join: Executor._join,
    Select: Executor._select,
    Compute: Executor._compute,
    Unnest: Executor._unnest,
    AntiJoin: Executor._anti_join,
    Project: Executor._project,
    Distinct: Executor._distinct,
    GroupBy: Executor._group_by,
}
