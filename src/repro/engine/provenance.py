"""Why-provenance: derivation trees for atoms in the computed model.

With ``EvalOptions(track_provenance=True)`` the evaluator records, for every
derived atom, the clause and ground substitution that first produced it.
:func:`explain` then reconstructs a derivation tree: the atom, the clause
instance (with Lemma-4 quantifier unfolding), and recursively the proofs of
the ground body atoms.  Built-in and special atoms are leaves ("holds
structurally"); EDB facts are leaves ("given").

This is classical why-provenance for Datalog, extended to LPS's quantified
clauses: a quantified rule's children are the instances over the elements
of the (ground) range sets, so an application with an empty range shows up
— honestly — as a derivation step with zero premises.

:class:`SupportCounts` is the quantitative sibling of the store: instead of
remembering *which* derivation produced an atom first, it remembers *how
many* derivations (plus base supports — database facts and ground fact
clauses) currently justify it.  Counts are exactly the support relation the
incremental maintenance subsystem needs: counting maintenance decrements
per lost derivation and an atom dies when its count reaches zero, and the
same structure doubles as DRed's "has the atom any surviving support"
oracle (``repro.engine.maintenance``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..core.atoms import Atom
from ..core.clauses import GroupingClause, LPSClause
from ..core.substitution import Subst

#: How an atom entered the model.
GIVEN = "given"          # EDB fact or ground fact clause
DERIVED = "derived"      # via an LPS clause
GROUPED = "grouped"      # via an LDL grouping clause
STRUCTURAL = "structural"  # special/builtin atom, true by Definition 3


@dataclass(frozen=True)
class ProvenanceEntry:
    """How one atom was first derived."""

    kind: str
    clause: Optional[object] = None      # LPSClause | GroupingClause
    theta: Optional[Subst] = None        # grounding substitution
    premises: tuple[Atom, ...] = ()      # ground positive body atoms


@dataclass
class DerivationNode:
    """A node of a derivation tree."""

    atom: Atom
    kind: str
    clause: Optional[object] = None
    children: list["DerivationNode"] = field(default_factory=list)

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        label = {
            GIVEN: "(given)",
            STRUCTURAL: "(structural)",
            GROUPED: "(grouping)",
            DERIVED: "",
        }[self.kind]
        rule = ""
        if self.kind == DERIVED and self.clause is not None:
            rule = f"   [{self.clause}]"
        elif self.kind == GROUPED and self.clause is not None:
            rule = f"   [{self.clause}]"
        lines = [f"{pad}{self.atom} {label}{rule}".rstrip()]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def size(self) -> int:
        return 1 + sum(c.size() for c in self.children)

    def depth(self) -> int:
        return 1 + max((c.depth() for c in self.children), default=0)


class SupportCounts:
    """Derivation counts per atom (counting maintenance / DRed support).

    The count of an atom is the number of distinct justifications it has:
    one per (rule, grounding) derivation, plus one per base support (an EDB
    fact or a ground fact clause).  The maintenance subsystem keeps the
    invariant ``count(a) > 0  ⟺  a is in the materialized stratum``.
    """

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: dict[Atom, int] = {}

    def add(self, atom: Atom, n: int = 1) -> int:
        """Add ``n`` supports; returns the new count."""
        new = self._counts.get(atom, 0) + n
        self._counts[atom] = new
        return new

    def discharge(self, atom: Atom, n: int = 1) -> int:
        """Remove ``n`` supports; returns the new count (0 = unsupported).

        Discharging below zero signals that the maintainer's delta
        enumeration diverged from the counts and raises ``ValueError`` —
        callers treat that as "abandon incremental, recompute".
        """
        new = self._counts.get(atom, 0) - n
        if new < 0:
            raise ValueError(
                f"support count of {atom} went negative ({new}); "
                "derivation bookkeeping is inconsistent"
            )
        if new == 0:
            self._counts.pop(atom, None)
        else:
            self._counts[atom] = new
        return new

    def count(self, atom: Atom) -> int:
        return self._counts.get(atom, 0)

    def __contains__(self, atom: Atom) -> bool:
        return atom in self._counts

    def __len__(self) -> int:
        return len(self._counts)

    def atoms(self) -> tuple[Atom, ...]:
        return tuple(self._counts)


class ProvenanceStore:
    """First-derivation records, keyed by atom."""

    def __init__(self) -> None:
        self._entries: dict[Atom, ProvenanceEntry] = {}

    def note_given(self, atom: Atom) -> None:
        self._entries.setdefault(atom, ProvenanceEntry(GIVEN))

    def note_derived(
        self,
        atom: Atom,
        clause: LPSClause,
        theta: Subst,
        premises: tuple[Atom, ...],
    ) -> None:
        self._entries.setdefault(
            atom, ProvenanceEntry(DERIVED, clause, theta, premises)
        )

    def note_grouped(
        self, atom: Atom, clause: GroupingClause, premises: tuple[Atom, ...]
    ) -> None:
        self._entries.setdefault(
            atom, ProvenanceEntry(GROUPED, clause, None, premises)
        )

    def entry(self, atom: Atom) -> Optional[ProvenanceEntry]:
        return self._entries.get(atom)

    def __len__(self) -> int:
        return len(self._entries)

    def explain(self, atom: Atom, max_depth: int = 50) -> DerivationNode:
        """Build the derivation tree for a ground atom.

        Special and builtin atoms explain themselves structurally; atoms
        without a record raise ``KeyError`` (they are not in the model)."""
        return self._explain(atom, max_depth, frozenset())

    def _explain(
        self, atom: Atom, fuel: int, on_path: frozenset[Atom]
    ) -> DerivationNode:
        if atom.is_special():
            return DerivationNode(atom, STRUCTURAL)
        entry = self._entries.get(atom)
        if entry is None:
            return DerivationNode(atom, STRUCTURAL)
        if entry.kind == GIVEN:
            return DerivationNode(atom, GIVEN)
        node_kind = entry.kind
        node = DerivationNode(atom, node_kind, clause=entry.clause)
        if fuel <= 0 or atom in on_path:
            return node  # truncate (cycle-safe: first-derivations are acyclic,
            # but grouping premises can be large)
        for premise in entry.premises:
            node.children.append(
                self._explain(premise, fuel - 1, on_path | {atom})
            )
        return node
