"""Compile rule bodies to relational-algebra plans.

This is the planning half of the plan-IR pipeline (see
:mod:`repro.engine.ir` for the operator set and DESIGN.md, "Plan IR and
executor", for the architecture).  It lifts the tuple-at-a-time solver's
scheduling discipline — ``Solver._priority``'s readiness tiers and its
boundness/selectivity heuristics — out of the per-substitution hot loop
and into **one compilation per rule**:

* each positive relational conjunct becomes a :class:`~repro.engine.ir.Scan`
  joined into a left-deep tree of hash :class:`~repro.engine.ir.Join` nodes;
* equality / builtin / membership conjuncts attach at the earliest point
  where the tuple path would consider them *ready* (their inputs bound),
  as :class:`~repro.engine.ir.Select`, :class:`~repro.engine.ir.Compute`
  or :class:`~repro.engine.ir.Unnest` nodes;
* negative literals become :class:`~repro.engine.ir.AntiJoin` nodes once
  fully bound (stratified negation: the check reads the completed lower
  stratum, never a delta).

Readiness is decided **statically** from which variables are bound at
each point; the executor re-checks the type-sensitive cases (builtin
modes, membership in a non-set ``u`` value) at run time and raises
``PlanInapplicable``, falling the single rule application back to the
tuple path — compilation is a prediction, the tuple solver remains the
semantic ground truth.

A body that cannot be fully scheduled — restricted quantifiers, head or
body variables no conjunct constrains (the active-domain fallback cases),
builtin modes that never become ready — compiles to
:data:`~repro.engine.ir.MODE_TUPLE` with a human-readable ``reason``;
the evaluator then uses the backtracking solver exactly as before.

**Semi-naive delta variants.**  ``compile_rule(..., delta_index=i)``
compiles the same body with the *i*-th relational occurrence pinned: that
one Scan is flagged ``delta`` (the executor reads it from the round's
delta relation) and is forced to the front of the join order, mirroring
the differentiation ``Δ(B1 ⋈ … ⋈ Bn) = Σ_i Bs ⋈ ΔB_i``.  The fixpoint
loop and the incremental-maintenance subsystem share these variants, so
join order is derived once per rule rather than once per batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from ..core.atoms import Atom, Literal
from ..core.clauses import GroupingClause, LPSClause
from ..core.formulas import Formula
from ..core.sorts import EQUALS, MEMBER, SORT_A, SORT_S, SORT_U
from ..core.terms import Const, SetExpr, Term, Var, free_vars, setvalue
from .builtins import Builtin
from .ir import (
    MODE_SET,
    MODE_TUPLE,
    AntiJoin,
    Compute,
    Distinct,
    GroupBy,
    Join,
    PlanNode,
    Project,
    Scan,
    Select,
    Unit,
    Unnest,
)

#: Placeholder ground terms used to probe builtin readiness at compile
#: time: a bound variable of each sort is represented by a dummy value of
#: that sort.  Builtins' ``ready`` only inspects groundness and value
#: *kind* (SetValue vs atom), so the probe is exact for a/s variables; a
#: ``u`` variable is probed as an atom, which is conservative — the
#: executor re-checks ``ready`` on real values and falls back if needed.
_DUMMY = {
    SORT_A: Const("§dummy_a"),
    SORT_U: Const("§dummy_u"),
    SORT_S: setvalue(()),
}


@dataclass
class CompiledPlan:
    """The result of compiling one rule (or grouping) body."""

    mode: str                      # MODE_SET | MODE_TUPLE
    root: Optional[PlanNode]       # full-width body rows (SET mode only)
    clause: object                 # the LPSClause / GroupingClause compiled
    reason: Optional[str] = None   # why the body stayed on the tuple path
    bound_vars: frozenset = frozenset()

    @property
    def is_set(self) -> bool:
        return self.mode == MODE_SET

    def pretty(self) -> str:
        if self.root is None:
            return f"tuple-mode ({self.reason})"
        return self.root.pretty()


def _tuple_plan(clause: object, reason: str) -> CompiledPlan:
    return CompiledPlan(MODE_TUPLE, None, clause, reason=reason)


def _sorted_vars(vs) -> tuple[Var, ...]:
    return tuple(sorted(vs, key=lambda v: (v.var_sort, v.name)))


def _dummy_args(a: Atom, bound: set[Var]) -> tuple[Term, ...]:
    """The atom's args with bound variables replaced by sort dummies."""
    from ..core.substitution import Subst

    needed = {v: _DUMMY[v.var_sort] for v in a.free_vars() if v in bound}
    if not needed:
        return a.args
    theta = Subst._make(needed)
    return tuple(theta.apply(t) for t in a.args)


class _Conjunct:
    """One body literal with its scheduling classification."""

    __slots__ = ("lit", "kind", "rel_index", "src")

    def __init__(self, lit: Literal, kind: str, rel_index: int, src: int):
        self.lit = lit
        self.kind = kind          # "rel" | "eq" | "member" | "builtin" | "neg"
        self.rel_index = rel_index  # index among positive relational atoms
        self.src = src            # source position in the body


def _classify(
    body: Sequence[Literal], builtins: Mapping[str, Builtin]
) -> list[_Conjunct]:
    out: list[_Conjunct] = []
    rel_i = 0
    for src, lit in enumerate(body):
        a = lit.atom
        if not lit.positive:
            out.append(_Conjunct(lit, "neg", -1, src))
        elif a.pred == EQUALS:
            out.append(_Conjunct(lit, "eq", -1, src))
        elif a.pred == MEMBER:
            out.append(_Conjunct(lit, "member", -1, src))
        elif a.pred in builtins:
            out.append(_Conjunct(lit, "builtin", -1, src))
        else:
            out.append(_Conjunct(lit, "rel", rel_i, src))
            rel_i += 1
    return out


def _ready(c: _Conjunct, bound: set[Var], builtins: Mapping[str, Builtin]):
    """Whether the conjunct is schedulable now; mirrors ``Solver._priority``.

    Returns a priority tier (lower = sooner) or ``None``.  The tiers match
    the tuple path's: negation-as-check < equality < builtin < membership
    < relational scan.
    """
    a = c.lit.atom
    if c.kind == "neg":
        return 0 if a.free_vars() <= bound else None
    if c.kind == "eq":
        l, r = a.args
        if free_vars(l) <= bound or free_vars(r) <= bound:
            return 1
        return None
    if c.kind == "builtin":
        b = builtins[a.pred]
        if len(a.args) != b.arity:
            return None  # arity error: let the tuple path raise it
        return 2 if b.ready(_dummy_args(a, bound)) else None
    if c.kind == "member":
        return 3 if free_vars(a.args[1]) <= bound else None
    return 4  # relational atoms are always scannable


def _scan_order_key(c: _Conjunct, bound: set[Var], pin: Optional[int],
                    plan_joins: bool):
    """Static join-order preference among schedulable relational atoms.

    The pinned delta occurrence always goes first (semi-naive
    differentiation).  With ``plan_joins`` the planner then prefers scans
    connected to already-bound variables (avoids cross products) with the
    most constrained argument positions — the static residue of the
    tuple path's index-cardinality estimates, whose dynamic half now
    lives in the executor's build-side selection.  Without ``plan_joins``
    scans keep body order, mirroring the bound-count heuristic mode.
    """
    pinned = 0 if (pin is not None and c.rel_index == pin) else 1
    if not plan_joins:
        return (pinned, c.src)
    a = c.lit.atom
    connected = 0
    constrained = 0
    for t in a.args:
        fv = free_vars(t)
        if not fv:
            constrained += 1
        elif fv <= bound:
            constrained += 1
            connected = 1
        elif fv & bound:
            connected = 1
    return (pinned, -connected, -constrained, c.src)


def compile_body(
    body: Sequence[Literal],
    builtins: Mapping[str, Builtin],
    delta_index: Optional[int] = None,
    plan_joins: bool = True,
) -> tuple[Optional[PlanNode], set[Var], Optional[str]]:
    """Schedule a literal conjunction into a plan.

    Returns ``(root, bound_vars, reason)``; ``reason`` is non-``None`` iff
    the body is not fully schedulable (the caller then uses tuple mode).
    """
    pending = _classify(body, builtins)
    if delta_index is not None:
        if not any(c.rel_index == delta_index for c in pending):
            return None, set(), f"no relational occurrence {delta_index}"
    node: Optional[PlanNode] = None
    bound: set[Var] = set()
    while pending:
        ready = [
            (tier, c) for c in pending
            if (tier := _ready(c, bound, builtins)) is not None
        ]
        if not ready:
            blocked = ", ".join(str(c.lit) for c in pending)
            return None, bound, f"unschedulable conjuncts: {blocked}"
        tier = min(t for t, _ in ready)
        tied = [c for t, c in ready if t == tier]
        if tier == 4:
            chosen = min(
                tied,
                key=lambda c: _scan_order_key(c, bound, delta_index, plan_joins),
            )
        else:
            chosen = min(tied, key=lambda c: c.src)
        pending.remove(chosen)
        node = _attach(node, chosen, bound, builtins, delta_index)
        bound |= chosen.lit.atom.free_vars()
    return node, bound, None


def _attach(
    node: Optional[PlanNode],
    c: _Conjunct,
    bound: set[Var],
    builtins: Mapping[str, Builtin],
    delta_index: Optional[int],
) -> PlanNode:
    a = c.lit.atom
    if c.kind == "rel":
        scan = Scan(a, delta=(delta_index is not None
                              and c.rel_index == delta_index))
        return scan if node is None else Join(node, scan)
    if node is None:
        node = Unit()
    if c.kind == "neg":
        return AntiJoin(node, a)
    new_vars = _sorted_vars(a.free_vars() - bound)
    if c.kind == "member":
        elem, source = a.args
        if not new_vars:
            return Select(node, c.lit, "member")
        if elem.__class__ is Var and elem not in bound:
            return Unnest(node, elem, source, "expand", (elem,))
        return Unnest(node, elem, source, "unify", new_vars)
    kind = "equals" if c.kind == "eq" else "builtin"
    if not new_vars:
        return Select(node, c.lit, kind)
    return Compute(node, a, kind, new_vars)


def compile_rule(
    clause: LPSClause,
    builtins: Mapping[str, Builtin],
    delta_index: Optional[int] = None,
    plan_joins: bool = True,
) -> CompiledPlan:
    """Compile one LPS clause body to a plan producing full-width rows.

    The plan's output schema covers every body variable, so consumers that
    need whole derivations (counting maintenance, delta filtering) can use
    it directly; the evaluator wraps it with ``Project``/``Distinct`` via
    :func:`head_plan` for plain head derivation.
    """
    if clause.quantifiers:
        return _tuple_plan(clause, "restricted quantifiers")
    if not clause.body:
        return _tuple_plan(clause, "empty body (active-domain rule)")
    root, bound, reason = compile_body(
        clause.body, builtins, delta_index, plan_joins
    )
    if reason is not None:
        return _tuple_plan(clause, reason)
    head_fv = clause.head.free_vars()
    if not head_fv <= bound:
        missing = ", ".join(str(v) for v in _sorted_vars(head_fv - bound))
        return _tuple_plan(
            clause, f"head variables range over the active domain: {missing}"
        )
    return CompiledPlan(MODE_SET, root, clause, bound_vars=frozenset(bound))


def head_plan(compiled: CompiledPlan) -> Optional[PlanNode]:
    """Wrap a rule plan for head derivation: project to the head variables
    and deduplicate (tuple-path head dedup lifted to a plan operator)."""
    if compiled.root is None:
        return None
    head_vars = _sorted_vars(compiled.clause.head.free_vars())
    if not head_vars:
        return Distinct(compiled.root)
    return Distinct(Project(compiled.root, head_vars))


def compile_grouping(
    g: GroupingClause,
    builtins: Mapping[str, Builtin],
    plan_joins: bool = True,
) -> CompiledPlan:
    """Compile an LDL grouping body; SET mode requires the grouped variable
    and every head-argument variable bound by the body.

    When the head arguments are plain distinct variables the plan ends in
    a :class:`~repro.engine.ir.GroupBy` node; structured head arguments
    keep the full-width row plan and group on resolved argument values in
    the evaluator (same semantics, no dedicated operator).
    """
    root, bound, reason = compile_body(g.body, builtins, None, plan_joins)
    if reason is not None:
        return _tuple_plan(g, reason)
    needed = set(g.free_vars()) | {g.group_var}
    if not needed <= bound:
        missing = ", ".join(str(v) for v in _sorted_vars(needed - bound))
        return _tuple_plan(g, f"unbound grouping variables: {missing}")
    head_arg_vars = [t for t in g.head_args if t.__class__ is Var]
    if (
        len(head_arg_vars) == len(g.head_args)
        and len(set(head_arg_vars)) == len(head_arg_vars)
    ):
        root = GroupBy(root, tuple(head_arg_vars), g.group_var)
    return CompiledPlan(MODE_SET, root, g, bound_vars=frozenset(bound))
