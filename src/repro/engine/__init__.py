"""The LPS evaluation engine.

* :mod:`repro.engine.database` — EDB facts and Python-value conversion;
* :mod:`repro.engine.builtins` — evaluable predicates (arithmetic, ``neq``,
  ``card``, plus the set builtins in :mod:`repro.engine.setops` that realise
  the languages ``L + union`` and ``L + scons`` of Section 6);
* :mod:`repro.engine.stratify` — stratification (Section 4.2, [ABW86]);
* :mod:`repro.engine.evaluation` — bottom-up naive/semi-naive evaluation
  under active-domain semantics, with LDL grouping;
* :mod:`repro.engine.ir` / :mod:`repro.engine.planner` /
  :mod:`repro.engine.executor` — the relational-algebra plan pipeline:
  rule bodies compile to Scan/Join/AntiJoin/… operator trees executed
  set-at-a-time over the interpretation's argument indexes, with the
  tuple-at-a-time solver as the equivalence-tested fallback;
* :mod:`repro.engine.columnar` — the columnar executor: capable plan
  operators run over dense interned-term-ID columns (``array('q')``),
  decoding to term objects only at plan boundaries;
* :mod:`repro.engine.maintenance` — incremental model maintenance
  (counting + DRed + per-stratum recompute) for batched insert/delete
  fact streams;
* :mod:`repro.engine.topdown` — the depth-bounded SLD prover with set
  unification (Section 3.2's procedural semantics).
"""

from .builtins import (
    DEFAULT_BUILTINS,
    Builtin,
    default_builtins,
    is_builtin,
)
from .database import Database, from_term, to_term
from .evaluation import (
    ActiveDomain,
    EvalOptions,
    EvalReport,
    Evaluator,
    Model,
    Solver,
    SolverStats,
    solve,
)
from .columnar import ColumnarExecutor, columnar_capable, make_executor
from .executor import Executor, PlanInapplicable
from .ir import MODE_SET, MODE_TUPLE, ExecStats
from .maintenance import (
    MaintenanceReport,
    MaterializedModel,
    ModelSnapshot,
    RetiredVersionError,
    VersionedModel,
)
from .planner import CompiledPlan, compile_grouping, compile_rule, head_plan
from .setops import set_builtins, with_set_builtins
from .stratify import Stratification, StratumRules, is_stratified, stratify
from .topdown import TopDownProver

__all__ = [
    "Builtin",
    "DEFAULT_BUILTINS",
    "default_builtins",
    "is_builtin",
    "Database",
    "to_term",
    "from_term",
    "ActiveDomain",
    "Solver",
    "SolverStats",
    "EvalOptions",
    "EvalReport",
    "Evaluator",
    "Model",
    "solve",
    "Executor",
    "ColumnarExecutor",
    "columnar_capable",
    "make_executor",
    "PlanInapplicable",
    "ExecStats",
    "MODE_SET",
    "MODE_TUPLE",
    "CompiledPlan",
    "compile_rule",
    "compile_grouping",
    "head_plan",
    "set_builtins",
    "with_set_builtins",
    "MaterializedModel",
    "ModelSnapshot",
    "RetiredVersionError",
    "VersionedModel",
    "MaintenanceReport",
    "Stratification",
    "StratumRules",
    "stratify",
    "is_stratified",
    "TopDownProver",
]
