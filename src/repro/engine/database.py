"""EDB storage and Python-value conversion.

A :class:`Database` is a bag of ground facts — the extensional database the
paper's examples assume (``R(x, Y)`` in Example 4, ``parts``/``cost`` in
Example 6).  Facts can be loaded from plain Python values; the conversion
rules are:

* ``str`` / ``int``       →  constant of sort ``a``
* ``frozenset`` / ``set`` / iterables →  canonical :class:`SetValue`
  (recursively, so nested frozensets give ELPS values)
* :class:`~repro.core.terms.Term` —  passed through.

The inverse mapping turns ``SetValue`` back into ``frozenset`` and constants
back into their payloads, so query results read naturally in Python.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from ..core.atoms import Atom, atom_order_key
from ..core.clauses import LPSClause, fact
from ..core.errors import EvaluationError
from ..core.program import Program
from ..core.terms import App, Const, SetValue, Term, setvalue


def to_term(value: Any) -> Term:
    """Convert a Python value to a ground term (see module docstring)."""
    if isinstance(value, Term):
        if not value.is_ground():
            raise EvaluationError(f"database value {value} is not ground")
        return value
    if isinstance(value, bool):
        return Const("true" if value else "false")
    if isinstance(value, (str, int)):
        return Const(value)
    if isinstance(value, (set, frozenset, list, tuple)):
        return setvalue(to_term(v) for v in value)
    raise EvaluationError(f"cannot convert {value!r} to an LPS term")


def as_fact(spec: Any) -> Atom:
    """Normalize a fact spec — an :class:`Atom` or a ``(pred, args...)``
    tuple of Python values — into a ground atom."""
    if isinstance(spec, Atom):
        if not spec.is_ground():
            raise EvaluationError(f"fact {spec} is not ground")
        return spec
    if isinstance(spec, tuple) and spec and isinstance(spec[0], str):
        return Atom(spec[0], tuple(to_term(v) for v in spec[1:]))
    raise EvaluationError(f"cannot interpret {spec!r} as a fact")


def from_term(term: Term) -> Any:
    """Convert a ground term back to a Python value."""
    if isinstance(term, Const):
        return term.value
    if isinstance(term, SetValue):
        return frozenset(from_term(e) for e in term.elems)
    if isinstance(term, App):
        return (term.fname, *[from_term(a) for a in term.args])
    raise EvaluationError(f"cannot convert {term} to a Python value")


class Database:
    """A mutable collection of ground facts, keyed by predicate.

    :meth:`snapshot` returns an immutable O(#predicates) view sharing the
    per-predicate fact sets; the writable original copies a predicate's
    set on its next mutation (copy-on-write), mirroring
    :meth:`repro.semantics.interpretation.Interpretation.snapshot`.
    """

    def __init__(self) -> None:
        self._facts: dict[str, set[Atom]] = {}
        self._frozen = False
        #: Predicates whose fact set is shared with a snapshot.
        self._shared: set[str] = set()

    # -- snapshots / copy-on-write ------------------------------------------------

    @property
    def frozen(self) -> bool:
        """Whether this database is an immutable snapshot."""
        return self._frozen

    def snapshot(self) -> "Database":
        """An immutable O(#predicates) snapshot of the current facts."""
        snap = Database.__new__(Database)
        snap._facts = dict(self._facts)
        snap._frozen = True
        snap._shared = set()
        if not self._frozen:
            self._shared = set(self._facts)
        return snap

    def _mutable_bucket(self, pred: str):
        """The predicate's fact set, un-shared and safe to mutate."""
        if self._frozen:
            raise EvaluationError(
                "database is a frozen snapshot and cannot be mutated"
            )
        shared = self._shared
        if shared and pred in shared:
            shared.discard(pred)
            bucket = self._facts.get(pred)
            if bucket is not None:
                bucket = self._facts[pred] = set(bucket)
            return bucket
        return self._facts.get(pred)

    # -- mutation ----------------------------------------------------------------

    def add(self, pred: str, *args: Any) -> Atom:
        """Assert ``pred(args...)``, converting Python values to terms."""
        a = Atom(pred, tuple(to_term(v) for v in args))
        self.add_atom(a)
        return a

    def add_atom(self, a: Atom) -> None:
        if not a.is_ground():
            raise EvaluationError(f"fact {a} is not ground")
        bucket = self._mutable_bucket(a.pred)
        if bucket is None:
            bucket = self._facts[a.pred] = set()
        bucket.add(a)

    def retract(self, pred: str, *args: Any) -> bool:
        """Retract ``pred(args...)``; returns ``True`` if it was present."""
        return self.retract_atom(Atom(pred, tuple(to_term(v) for v in args)))

    def retract_atom(self, a: Atom) -> bool:
        bucket = self._facts.get(a.pred)
        if bucket is None or a not in bucket:
            return False
        bucket = self._mutable_bucket(a.pred)
        bucket.discard(a)
        if not bucket:
            del self._facts[a.pred]
        return True

    def apply_delta(
        self,
        adds: Iterable[Any] = (),
        dels: Iterable[Any] = (),
    ) -> tuple[frozenset[Atom], frozenset[Atom]]:
        """Batch update: the database becomes ``(db − dels) ∪ adds``.

        ``adds``/``dels`` accept :class:`~repro.core.atoms.Atom` objects or
        ``(pred, arg, ...)`` tuples of Python values.  Returns the **net**
        ``(added, removed)`` atom sets: a fact both deleted and re-asserted
        in one batch appears in neither.
        """
        removed: set[Atom] = set()
        added: set[Atom] = set()
        for spec in dels:
            a = as_fact(spec)
            if self.retract_atom(a):
                removed.add(a)
        for spec in adds:
            a = as_fact(spec)
            if a not in self:
                self.add_atom(a)
                added.add(a)
        return frozenset(added - removed), frozenset(removed - added)

    def extend(self, pred: str, rows: Iterable[tuple]) -> None:
        """Bulk-load rows of Python values into one predicate."""
        for row in rows:
            self.add(pred, *row)

    def facts(self) -> Iterator[Atom]:
        for atoms in self._facts.values():
            yield from atoms

    def facts_of(self, pred: str) -> frozenset[Atom]:
        """The current fact atoms of one predicate."""
        return frozenset(self._facts.get(pred, ()))

    def relation(self, pred: str) -> set[tuple]:
        """The extension of a predicate as Python-value tuples."""
        return {
            tuple(from_term(t) for t in a.args)
            for a in self._facts.get(pred, ())
        }

    def predicates(self) -> set[str]:
        return set(self._facts)

    def __contains__(self, a: Atom) -> bool:
        return a in self._facts.get(a.pred, ())

    def __len__(self) -> int:
        return sum(len(s) for s in self._facts.values())

    def as_program(self) -> Program:
        """The database as a program of unit clauses."""
        return Program(tuple(fact(a) for a in sorted(
            self.facts(), key=atom_order_key)))

    @staticmethod
    def from_mapping(data: Mapping[str, Iterable[tuple]]) -> "Database":
        db = Database()
        for pred, rows in data.items():
            db.extend(pred, rows)
        return db
