"""Append-only write-ahead log of committed delta batches.

Layout: a data directory holds numbered **segments** ``wal-%016d.log``,
named by the version of their first record.  Records are the JSON-lines
frames of :mod:`repro.storage.codec`, one per line, with strictly
increasing ``version`` fields across the whole log.  Three kinds ride in
the WAL:

* ``delta``    — one committed batch: ``{version, epoch, adds, dels}``
  with atoms in concrete syntax (sorted, so records are deterministic);
* ``program``  — a program replacement: ``{version, epoch, source}``;
* ``abort``    — a tombstone: the *previous* record with the same version
  was logged but its application failed before publication; replay skips
  the pair (see :meth:`repro.storage.durable.DurableModel.apply_delta`);
* ``epoch``    — a fencing bump: ``{version, epoch}`` recorded at
  promotion time.  ``version`` is the version the store held when the
  bump happened (epoch records publish nothing); every later delta and
  program record carries the new epoch, and replay rejects any record
  whose epoch is *lower* than one already seen — a fenced old leader's
  appends can never sneak into a promoted lineage (see
  DESIGN.md, "Replication & failover").

Records written before the replication PR carry no ``epoch`` field;
decoders treat a missing epoch as ``0``, so pre-existing logs replay
unchanged.

Durability contract.  :meth:`append` returns only after the line is
written and — under the default ``fsync="always"`` policy — flushed to
stable storage, so a batch acknowledged to a client survives any later
crash.  ``fsync="never"`` leaves flushing to the OS (fast, survives
process death but not power loss); both policies keep the byte stream
identical, only the moment of stability differs.

Crash anatomy.  A crash can only tear the **final** record (single
appender, append-only file): recovery treats an undecodable suffix after
the last complete record as torn, moves the bytes to a
``*.quarantine-<n>`` sidecar (never silently discarded), truncates the
segment, and logs what it did.  An undecodable record *before* a decodable
one cannot be produced by a crash — that is corruption, and recovery
refuses with :class:`~repro.storage.codec.RecoveryError` rather than
serve a model missing an acknowledged batch.
"""

from __future__ import annotations

import logging
import os
from pathlib import Path
from typing import Any, Iterable, Optional

from ..core.atoms import Atom
from .codec import (
    KIND_ABORT,
    KIND_DELTA,
    KIND_EPOCH,
    KIND_PROGRAM,
    CodecError,
    RecoveryError,
    decode_record,
    encode_atoms,
    encode_record,
)

logger = logging.getLogger("repro.storage")

SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".log"

#: fsync policies.
FSYNC_ALWAYS = "always"
FSYNC_NEVER = "never"


def _segment_name(version: int) -> str:
    return f"{SEGMENT_PREFIX}{version:016d}{SEGMENT_SUFFIX}"


def _segment_version(path: Path) -> Optional[int]:
    name = path.name
    if not (name.startswith(SEGMENT_PREFIX) and name.endswith(SEGMENT_SUFFIX)):
        return None
    digits = name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)]
    return int(digits) if digits.isdigit() else None


class WriteAheadLog:
    """Segmented append-only log in one directory (single appender)."""

    def __init__(
        self,
        directory: os.PathLike | str,
        fsync: str = FSYNC_ALWAYS,
        segment_max_bytes: int = 1 << 20,
    ) -> None:
        if fsync not in (FSYNC_ALWAYS, FSYNC_NEVER):
            raise ValueError(f"unknown fsync policy {fsync!r}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.segment_max_bytes = segment_max_bytes
        self._file = None          # open append handle for the active segment
        self._active: Optional[Path] = None

    # -- inventory ---------------------------------------------------------------

    def segments(self) -> list[Path]:
        """All segment files, oldest first."""
        out = [
            p for p in self.directory.iterdir()
            if _segment_version(p) is not None
        ]
        return sorted(out, key=lambda p: _segment_version(p))

    def __len__(self) -> int:
        return sum(1 for _ in self.records())

    # -- appending ---------------------------------------------------------------

    def append_delta(
        self,
        version: int,
        adds: Iterable[Atom],
        dels: Iterable[Atom],
        epoch: int = 0,
    ) -> dict:
        """Log one committed batch; returns once it is durable."""
        return self._append(KIND_DELTA, version, {
            "version": version,
            "epoch": epoch,
            "adds": encode_atoms(adds),
            "dels": encode_atoms(dels),
        })

    def append_program(
        self, version: int, source: str, epoch: int = 0
    ) -> dict:
        """Log a program replacement publishing ``version``."""
        return self._append(KIND_PROGRAM, version, {
            "version": version, "epoch": epoch, "source": source,
        })

    def append_abort(self, version: int) -> dict:
        """Tombstone: the record logged for ``version`` was never applied."""
        return self._append(KIND_ABORT, version, {"version": version})

    def append_epoch(self, version: int, epoch: int) -> dict:
        """Log a fencing bump to ``epoch`` at the store's ``version``."""
        return self._append(KIND_EPOCH, version, {
            "version": version, "epoch": epoch,
        })

    def _append(self, kind: str, version: int, data: dict) -> dict:
        """Write one record durably; returns the exact data dict written
        (callers forward it verbatim, e.g. to replication subscribers)."""
        line = encode_record(kind, data) + "\n"
        f = self._handle(version, len(line))
        f.write(line)
        f.flush()
        if self.fsync == FSYNC_ALWAYS:
            os.fsync(f.fileno())
        return data

    def _handle(self, version: int, incoming: int):
        """The active segment's append handle, rotating when full."""
        if self._file is None:
            existing = self.segments()
            if existing:
                self._active = existing[-1]
            else:
                self._active = self.directory / _segment_name(version)
            self._file = self._reopen_text(self._active)
        if (
            self._file.tell() > 0
            and self._file.tell() + incoming > self.segment_max_bytes
        ):
            self.close()
            self._active = self.directory / _segment_name(version)
            self._file = self._reopen_text(self._active)
        return self._file

    @staticmethod
    def _reopen_text(path: Path):
        f = open(path, "a", encoding="ascii", newline="\n")
        f.seek(0, os.SEEK_END)
        return f

    def close(self) -> None:
        if self._file is not None:
            self._file.flush()
            if self.fsync == FSYNC_ALWAYS:
                os.fsync(self._file.fileno())
            self._file.close()
            self._file = None

    # -- reading / recovery ------------------------------------------------------

    def first_version(self) -> Optional[int]:
        """The version of the oldest record still on disk (``None`` when
        the log is empty).  After checkpoint truncation this is the floor
        of what :meth:`records_from` can serve — a follower further behind
        needs a snapshot bootstrap instead."""
        for seg in self.segments():
            for line in self._lines(seg):
                try:
                    _, data = decode_record(line)
                except CodecError:
                    return None        # torn/corrupt head: no safe floor
                if isinstance(data, dict) and isinstance(
                    data.get("version"), int
                ):
                    return data["version"]
        return None

    def records_from(self, version: int) -> list[tuple[str, Any]]:
        """Committed records with ``version > version`` — the tail a
        follower at ``version`` must replay to catch up.

        Abort tombstones and the failed appends they cancel are dropped
        (the shipping stream only ever carries published history); epoch
        bumps are kept because followers must learn the fencing state.
        Strict like :meth:`records`: an undecodable line raises — the tail
        of a live leader's WAL is only read under the model write lock,
        where a torn final record cannot be observed.
        """
        return committed_records(self.records(), from_version=version)

    def records(self) -> list[tuple[str, Any]]:
        """Decode every record, strict: any undecodable line raises."""
        out: list[tuple[str, Any]] = []
        for seg in self.segments():
            for i, line in enumerate(self._lines(seg)):
                try:
                    out.append(decode_record(line))
                except CodecError as exc:
                    raise RecoveryError(
                        f"corrupt WAL record {seg.name}:{i + 1}: {exc}"
                    ) from exc
        return out

    def recover_records(self) -> list[tuple[str, Any]]:
        """Decode the log for recovery, repairing a torn tail.

        A decode failure on the **last line of the last segment** is the
        crash signature: the bytes are moved to a quarantine sidecar, the
        segment truncated to its last complete record, and the surviving
        records returned.  A failure anywhere else is corruption and
        raises :class:`RecoveryError` — an acknowledged batch would be
        missing from the replayed state.
        """
        segments = self.segments()
        out: list[tuple[str, Any]] = []
        for seg_idx, seg in enumerate(segments):
            raw = seg.read_bytes()
            lines = raw.split(b"\n")
            # A well-formed segment ends with a newline, so the final
            # split element is empty; anything else is a torn tail.
            complete, tail = lines[:-1], lines[-1]
            good_bytes = 0
            for i, bline in enumerate(complete):
                is_final_line = (
                    seg_idx == len(segments) - 1
                    and i == len(complete) - 1
                    and not tail
                )
                try:
                    text = bline.decode("ascii")
                    rec = decode_record(text)
                except (CodecError, UnicodeDecodeError) as exc:
                    if is_final_line:
                        # Complete line, bad payload, at the very end:
                        # indistinguishable from a torn write that happened
                        # to stop after a stray newline — quarantine it.
                        tail = bline
                        break
                    raise RecoveryError(
                        f"corrupt WAL record {seg.name}:{i + 1} is not the "
                        f"final record; refusing to recover past it: {exc}"
                    ) from exc
                out.append(rec)
                good_bytes += len(bline) + 1
            if tail:
                if seg_idx != len(segments) - 1:
                    raise RecoveryError(
                        f"segment {seg.name} has a torn tail but is not the "
                        "final segment; the log is corrupt"
                    )
                self._quarantine(seg, raw, good_bytes)
        return out

    def _quarantine(self, seg: Path, raw: bytes, good_bytes: int) -> None:
        """Move the torn suffix to a sidecar and truncate the segment."""
        n = 0
        while True:
            sidecar = seg.with_name(f"{seg.name}.quarantine-{n}")
            if not sidecar.exists():
                break
            n += 1
        sidecar.write_bytes(raw[good_bytes:])
        with open(seg, "r+b") as f:
            f.truncate(good_bytes)
            f.flush()
            os.fsync(f.fileno())
        logger.warning(
            "WAL %s: torn final record (%d trailing bytes) quarantined to "
            "%s; recovering through the last complete record",
            seg.name, len(raw) - good_bytes, sidecar.name,
        )

    @staticmethod
    def _lines(seg: Path) -> list[str]:
        text = seg.read_text(encoding="ascii", errors="surrogateescape")
        return [l for l in text.split("\n") if l]

    # -- truncation ---------------------------------------------------------------

    def truncate_through(self, version: int) -> list[Path]:
        """Delete whole segments containing only records ``<= version``.

        Segment boundaries are version-aligned (a segment covers versions
        from its own first version up to the next segment's first version,
        exclusive), so a segment is removable exactly when the *next*
        segment starts at or below ``version + 1``.  The active (last)
        segment is never removed.  Returns the deleted paths.
        """
        segments = self.segments()
        removed: list[Path] = []
        for seg, nxt in zip(segments, segments[1:]):
            if _segment_version(nxt) <= version + 1:
                seg.unlink()
                removed.append(seg)
                logger.info("WAL %s truncated (covered by checkpoint at "
                            "version %d)", seg.name, version)
            else:
                break
        return removed


def committed_records(
    records: list[tuple[str, Any]], from_version: int = 0
) -> list[tuple[str, Any]]:
    """The published suffix of a record list: versions ``> from_version``,
    with abort tombstones and the appends they cancel removed.

    This is the shared filter between recovery replay and WAL shipping: a
    ``(record, abort)`` pair for the same version documents a logged batch
    that was never applied or acknowledged, so neither a recovering store
    nor a follower must ever see it.
    """
    out: list[tuple[str, Any]] = []
    i = 0
    while i < len(records):
        kind, data = records[i]
        version = data.get("version") if isinstance(data, dict) else None
        if kind == KIND_ABORT:
            i += 1
            continue
        nxt = records[i + 1] if i + 1 < len(records) else None
        if (
            nxt is not None
            and nxt[0] == KIND_ABORT
            and isinstance(nxt[1], dict)
            and nxt[1].get("version") == version
        ):
            i += 2
            continue
        # Epoch bumps publish no version of their own (they are recorded
        # *at* the store's current version), so a follower sitting exactly
        # on the bump version still needs them; application is idempotent.
        if isinstance(version, int):
            floor = from_version - 1 if kind == KIND_EPOCH else from_version
            if version > floor:
                out.append((kind, data))
        i += 1
    return out
