"""Append-only write-ahead log of committed delta batches.

Layout: a data directory holds numbered **segments** ``wal-%016d.log``,
named by the version of their first record.  Records are the JSON-lines
frames of :mod:`repro.storage.codec`, one per line, with strictly
increasing ``version`` fields across the whole log.  Three kinds ride in
the WAL:

* ``delta``    — one committed batch: ``{version, adds, dels}`` with atoms
  in concrete syntax (sorted, so records are deterministic);
* ``program``  — a program replacement: ``{version, source}``;
* ``abort``    — a tombstone: the *previous* record with the same version
  was logged but its application failed before publication; replay skips
  the pair (see :meth:`repro.storage.durable.DurableModel.apply_delta`).

Durability contract.  :meth:`append` returns only after the line is
written and — under the default ``fsync="always"`` policy — flushed to
stable storage, so a batch acknowledged to a client survives any later
crash.  ``fsync="never"`` leaves flushing to the OS (fast, survives
process death but not power loss); both policies keep the byte stream
identical, only the moment of stability differs.

Crash anatomy.  A crash can only tear the **final** record (single
appender, append-only file): recovery treats an undecodable suffix after
the last complete record as torn, moves the bytes to a
``*.quarantine-<n>`` sidecar (never silently discarded), truncates the
segment, and logs what it did.  An undecodable record *before* a decodable
one cannot be produced by a crash — that is corruption, and recovery
refuses with :class:`~repro.storage.codec.RecoveryError` rather than
serve a model missing an acknowledged batch.
"""

from __future__ import annotations

import logging
import os
from pathlib import Path
from typing import Any, Iterable, Optional

from ..core.atoms import Atom
from .codec import (
    KIND_ABORT,
    KIND_DELTA,
    KIND_PROGRAM,
    CodecError,
    RecoveryError,
    decode_record,
    encode_atoms,
    encode_record,
)

logger = logging.getLogger("repro.storage")

SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".log"

#: fsync policies.
FSYNC_ALWAYS = "always"
FSYNC_NEVER = "never"


def _segment_name(version: int) -> str:
    return f"{SEGMENT_PREFIX}{version:016d}{SEGMENT_SUFFIX}"


def _segment_version(path: Path) -> Optional[int]:
    name = path.name
    if not (name.startswith(SEGMENT_PREFIX) and name.endswith(SEGMENT_SUFFIX)):
        return None
    digits = name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)]
    return int(digits) if digits.isdigit() else None


class WriteAheadLog:
    """Segmented append-only log in one directory (single appender)."""

    def __init__(
        self,
        directory: os.PathLike | str,
        fsync: str = FSYNC_ALWAYS,
        segment_max_bytes: int = 1 << 20,
    ) -> None:
        if fsync not in (FSYNC_ALWAYS, FSYNC_NEVER):
            raise ValueError(f"unknown fsync policy {fsync!r}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.segment_max_bytes = segment_max_bytes
        self._file = None          # open append handle for the active segment
        self._active: Optional[Path] = None

    # -- inventory ---------------------------------------------------------------

    def segments(self) -> list[Path]:
        """All segment files, oldest first."""
        out = [
            p for p in self.directory.iterdir()
            if _segment_version(p) is not None
        ]
        return sorted(out, key=lambda p: _segment_version(p))

    def __len__(self) -> int:
        return sum(1 for _ in self.records())

    # -- appending ---------------------------------------------------------------

    def append_delta(
        self, version: int, adds: Iterable[Atom], dels: Iterable[Atom]
    ) -> None:
        """Log one committed batch; returns once it is durable."""
        self._append(KIND_DELTA, version, {
            "version": version,
            "adds": encode_atoms(adds),
            "dels": encode_atoms(dels),
        })

    def append_program(self, version: int, source: str) -> None:
        """Log a program replacement publishing ``version``."""
        self._append(KIND_PROGRAM, version, {
            "version": version, "source": source,
        })

    def append_abort(self, version: int) -> None:
        """Tombstone: the record logged for ``version`` was never applied."""
        self._append(KIND_ABORT, version, {"version": version})

    def _append(self, kind: str, version: int, data: dict) -> None:
        line = encode_record(kind, data) + "\n"
        f = self._handle(version, len(line))
        f.write(line)
        f.flush()
        if self.fsync == FSYNC_ALWAYS:
            os.fsync(f.fileno())

    def _handle(self, version: int, incoming: int):
        """The active segment's append handle, rotating when full."""
        if self._file is None:
            existing = self.segments()
            if existing:
                self._active = existing[-1]
            else:
                self._active = self.directory / _segment_name(version)
            self._file = self._reopen_text(self._active)
        if (
            self._file.tell() > 0
            and self._file.tell() + incoming > self.segment_max_bytes
        ):
            self.close()
            self._active = self.directory / _segment_name(version)
            self._file = self._reopen_text(self._active)
        return self._file

    @staticmethod
    def _reopen_text(path: Path):
        f = open(path, "a", encoding="ascii", newline="\n")
        f.seek(0, os.SEEK_END)
        return f

    def close(self) -> None:
        if self._file is not None:
            self._file.flush()
            if self.fsync == FSYNC_ALWAYS:
                os.fsync(self._file.fileno())
            self._file.close()
            self._file = None

    # -- reading / recovery ------------------------------------------------------

    def records(self) -> list[tuple[str, Any]]:
        """Decode every record, strict: any undecodable line raises."""
        out: list[tuple[str, Any]] = []
        for seg in self.segments():
            for i, line in enumerate(self._lines(seg)):
                try:
                    out.append(decode_record(line))
                except CodecError as exc:
                    raise RecoveryError(
                        f"corrupt WAL record {seg.name}:{i + 1}: {exc}"
                    ) from exc
        return out

    def recover_records(self) -> list[tuple[str, Any]]:
        """Decode the log for recovery, repairing a torn tail.

        A decode failure on the **last line of the last segment** is the
        crash signature: the bytes are moved to a quarantine sidecar, the
        segment truncated to its last complete record, and the surviving
        records returned.  A failure anywhere else is corruption and
        raises :class:`RecoveryError` — an acknowledged batch would be
        missing from the replayed state.
        """
        segments = self.segments()
        out: list[tuple[str, Any]] = []
        for seg_idx, seg in enumerate(segments):
            raw = seg.read_bytes()
            lines = raw.split(b"\n")
            # A well-formed segment ends with a newline, so the final
            # split element is empty; anything else is a torn tail.
            complete, tail = lines[:-1], lines[-1]
            good_bytes = 0
            for i, bline in enumerate(complete):
                is_final_line = (
                    seg_idx == len(segments) - 1
                    and i == len(complete) - 1
                    and not tail
                )
                try:
                    text = bline.decode("ascii")
                    rec = decode_record(text)
                except (CodecError, UnicodeDecodeError) as exc:
                    if is_final_line:
                        # Complete line, bad payload, at the very end:
                        # indistinguishable from a torn write that happened
                        # to stop after a stray newline — quarantine it.
                        tail = bline
                        break
                    raise RecoveryError(
                        f"corrupt WAL record {seg.name}:{i + 1} is not the "
                        f"final record; refusing to recover past it: {exc}"
                    ) from exc
                out.append(rec)
                good_bytes += len(bline) + 1
            if tail:
                if seg_idx != len(segments) - 1:
                    raise RecoveryError(
                        f"segment {seg.name} has a torn tail but is not the "
                        "final segment; the log is corrupt"
                    )
                self._quarantine(seg, raw, good_bytes)
        return out

    def _quarantine(self, seg: Path, raw: bytes, good_bytes: int) -> None:
        """Move the torn suffix to a sidecar and truncate the segment."""
        n = 0
        while True:
            sidecar = seg.with_name(f"{seg.name}.quarantine-{n}")
            if not sidecar.exists():
                break
            n += 1
        sidecar.write_bytes(raw[good_bytes:])
        with open(seg, "r+b") as f:
            f.truncate(good_bytes)
            f.flush()
            os.fsync(f.fileno())
        logger.warning(
            "WAL %s: torn final record (%d trailing bytes) quarantined to "
            "%s; recovering through the last complete record",
            seg.name, len(raw) - good_bytes, sidecar.name,
        )

    @staticmethod
    def _lines(seg: Path) -> list[str]:
        text = seg.read_text(encoding="ascii", errors="surrogateescape")
        return [l for l in text.split("\n") if l]

    # -- truncation ---------------------------------------------------------------

    def truncate_through(self, version: int) -> list[Path]:
        """Delete whole segments containing only records ``<= version``.

        Segment boundaries are version-aligned (a segment covers versions
        from its own first version up to the next segment's first version,
        exclusive), so a segment is removable exactly when the *next*
        segment starts at or below ``version + 1``.  The active (last)
        segment is never removed.  Returns the deleted paths.
        """
        segments = self.segments()
        removed: list[Path] = []
        for seg, nxt in zip(segments, segments[1:]):
            if _segment_version(nxt) <= version + 1:
                seg.unlink()
                removed.append(seg)
                logger.info("WAL %s truncated (covered by checkpoint at "
                            "version %d)", seg.name, version)
            else:
                break
        return removed
