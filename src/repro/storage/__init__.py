"""Durable storage: write-ahead logged deltas + checkpointed snapshots.

The subsystem has four layers (see DESIGN.md, "Durability"):

* :mod:`repro.storage.codec` — canonical checksummed JSON-lines records;
  terms/atoms/programs ride as concrete LPS syntax (verified round trip);
* :mod:`repro.storage.wal` — segmented append-only write-ahead log with a
  configurable fsync policy and torn-tail quarantine;
* :mod:`repro.storage.checkpoint` — atomic write-temp-then-rename EDB +
  program snapshots;
* :mod:`repro.storage.durable` — :class:`DurableModel`, the log-before-
  publish wrapper around the versioned maintained model, and
  :meth:`DurableModel.recover`.
"""

from .codec import (
    FORMAT_VERSION,
    CodecError,
    RecoveryError,
    StorageError,
    decode_record,
    encode_record,
)
from .checkpoint import list_checkpoints, load_checkpoint, write_checkpoint
from .durable import DurableModel, FencingError, has_state, save_snapshot
from .wal import (
    FSYNC_ALWAYS,
    FSYNC_NEVER,
    WriteAheadLog,
    committed_records,
)

__all__ = [
    "FORMAT_VERSION",
    "StorageError",
    "CodecError",
    "RecoveryError",
    "FencingError",
    "encode_record",
    "decode_record",
    "WriteAheadLog",
    "FSYNC_ALWAYS",
    "FSYNC_NEVER",
    "committed_records",
    "write_checkpoint",
    "load_checkpoint",
    "list_checkpoints",
    "DurableModel",
    "has_state",
    "save_snapshot",
]
