"""``DurableModel``: a versioned model whose committed state survives crashes.

The durability discipline is **log-before-publish**:

1. a committed batch is normalized and its net effect predicted against
   the current EDB (the same set algebra ``Database.apply_delta`` uses);
   genuine no-ops publish nothing and are not logged;
2. the batch is appended to the WAL — :meth:`apply_delta` cannot return
   (and the service cannot acknowledge ``:commit``) before the record is
   on disk under the configured fsync policy;
3. only then is the delta applied through the maintenance engine and the
   next version published.

So *acknowledged ⇒ logged*, and recovery replays the log through the same
``MaterializedModel.apply_delta`` engine that produced the live state —
durability reuses the maintenance discipline (``apply_delta ≡ recompute``)
instead of introducing a second evaluation path.

:meth:`recover` reconstructs a model from a data directory:

* load the **newest loadable checkpoint** (corrupt ones are quarantined to
  ``*.corrupt`` and skipped — with ``keep_checkpoints >= 2`` a torn latest
  checkpoint falls back to its predecessor, whose WAL suffix is retained
  exactly for this);
* replay the WAL records *after* the checkpoint's version, in order,
  skipping abort tombstones and enforcing gap-free version continuity —
  any divergence between log and replayed state is a
  :class:`~repro.storage.codec.RecoveryError`, never a silently wrong
  model;
* a torn final record (the crash signature) is quarantined and ignored:
  it belongs to a batch that was never acknowledged.

The resulting guarantee, property-tested byte-by-byte in
``tests/test_durability.py``: for a crash at **any** byte boundary of the
recorded run, ``recover(data_dir)`` reproduces exactly the model at the
last acknowledged version.
"""

from __future__ import annotations

import logging
from pathlib import Path
from typing import Any, Iterable, Mapping, Optional

from ..core.program import Program
from ..engine.builtins import DEFAULT_BUILTINS, Builtin
from ..engine.database import Database
from ..engine.evaluation import EvalOptions
from ..engine.maintenance import ModelSnapshot, VersionedModel
from .codec import (
    KIND_ABORT,
    KIND_DELTA,
    KIND_EPOCH,
    KIND_PROGRAM,
    CodecError,
    RecoveryError,
    StorageError,
    decode_atoms,
    decode_program,
    encode_atom,
    encode_program,
)
from .checkpoint import (
    checkpoint_version,
    clean_temp_files,
    list_checkpoints,
    load_checkpoint,
    write_checkpoint,
)
from .wal import FSYNC_ALWAYS, WriteAheadLog

logger = logging.getLogger("repro.storage")

QUARANTINE_SUFFIX = ".corrupt"


class FencingError(StorageError):
    """A write (or replayed record) carries a stale replication epoch.

    Raised when a record from a fenced old leader reaches a store that
    has already seen a higher epoch — the replication safety property is
    precisely that such writes are *rejected*, never silently merged into
    the promoted lineage.
    """


def has_state(data_dir: Path | str) -> bool:
    """Whether a directory holds recoverable durable state."""
    d = Path(data_dir)
    if not d.is_dir():
        return False
    if list_checkpoints(d):
        return True
    return bool(WriteAheadLog(d).segments())


def save_snapshot(data_dir: Path | str, model: VersionedModel) -> Path:
    """Freeze any versioned model into a fresh durable directory.

    The REPL's ``:save DIR``: writes one checkpoint of the model's current
    program + EDB, creating a directory :meth:`DurableModel.recover` (and
    ``:open DIR``) accepts.  Refuses a directory that already holds state.
    """
    d = Path(data_dir)
    if has_state(d):
        raise StorageError(
            f"{d} already holds durable state; refusing to overwrite it"
        )
    with model.lock:
        mm = model._materialized
        return write_checkpoint(
            d, model.version, mm.program, mm.database, fsync=True,
            epoch=getattr(model, "epoch", 0),
        )


class DurableModel(VersionedModel):
    """A :class:`VersionedModel` with a write-ahead log and checkpoints.

    Same read/write surface as its base (sessions and the query service
    use it unchanged); every committed batch is durable before it is
    acknowledged, and :meth:`checkpoint` bounds recovery time by snapshots
    plus WAL truncation.
    """

    def __init__(
        self,
        program: Program,
        data_dir: Path | str,
        database: Optional[Database] = None,
        builtins: Mapping[str, Builtin] = DEFAULT_BUILTINS,
        options: Optional[EvalOptions] = None,
        keep_versions: int = 8,
        fsync: str = FSYNC_ALWAYS,
        checkpoint_every: Optional[int] = 512,
        keep_checkpoints: int = 2,
        segment_max_bytes: int = 1 << 20,
        base_version: int = 0,
        epoch: int = 0,
        _recovering: bool = False,
    ) -> None:
        if keep_checkpoints < 1:
            raise ValueError("keep_checkpoints must be >= 1")
        if epoch < 0:
            raise ValueError("epoch must be >= 0")
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        if not _recovering and has_state(self.data_dir):
            raise StorageError(
                f"{self.data_dir} already holds durable state; use "
                "DurableModel.recover() or DurableModel.open()"
            )
        if not _recovering:
            # A crash inside checkpoint() — after creating ``ckpt-*.tmp``
            # but before os.replace — leaves an orphan that contributes no
            # durable state, so ``open()`` routes back through this fresh
            # path (recover() sweeps its own).  Sweep here too, or the
            # orphan shadows this store's checkpoints forever.
            clean_temp_files(self.data_dir)
        #: Replication fencing epoch: stamped into every WAL record,
        #: bumped by :meth:`bump_epoch` at promotion (see DESIGN.md,
        #: "Replication & failover").  Single-node stores stay at 0.
        self.epoch = epoch
        self._fsync = fsync
        self._checkpoint_every = checkpoint_every
        self._keep_checkpoints = keep_checkpoints
        self._records_since_checkpoint = 0
        self._replaying = False
        self._closed = False
        #: Commit listeners: ``fn(kind, data)`` called under the write
        #: lock after every successfully applied *logged* operation, in
        #: commit order, with exactly the data dict the WAL recorded —
        #: the leader-side replication hub subscribes here.
        self._commit_listeners: list = []
        self._wal = WriteAheadLog(
            self.data_dir, fsync=fsync, segment_max_bytes=segment_max_bytes
        )
        super().__init__(
            program,
            database,
            builtins=builtins,
            options=options,
            keep_versions=keep_versions,
            base_version=base_version,
        )
        if not _recovering:
            # A fresh store always has a base checkpoint, so recovery never
            # depends on replaying from an empty implicit state.
            self.checkpoint()

    # -- lifecycle ---------------------------------------------------------------

    @classmethod
    def open(
        cls, program: Program, data_dir: Path | str, **kwargs: Any
    ) -> "DurableModel":
        """Recover an existing store, or create a fresh one from ``program``.

        When the directory holds state, the *stored* program wins —
        ``program`` only seeds brand-new directories.
        """
        if has_state(data_dir):
            kwargs.pop("database", None)
            return cls.recover(data_dir, **kwargs)
        return cls(program, data_dir, **kwargs)

    @classmethod
    def recover(
        cls,
        data_dir: Path | str,
        builtins: Mapping[str, Builtin] = DEFAULT_BUILTINS,
        options: Optional[EvalOptions] = None,
        keep_versions: int = 8,
        fsync: str = FSYNC_ALWAYS,
        checkpoint_every: Optional[int] = 512,
        keep_checkpoints: int = 2,
        segment_max_bytes: int = 1 << 20,
    ) -> "DurableModel":
        """Reconstruct the model at the last acknowledged version."""
        d = Path(data_dir)
        if not has_state(d):
            raise RecoveryError(f"no durable state at {d}")
        clean_temp_files(d)
        base = None
        for path in reversed(list_checkpoints(d)):
            try:
                base = load_checkpoint(path)
                break
            except CodecError as exc:
                quarantined = path.with_name(path.name + QUARANTINE_SUFFIX)
                path.rename(quarantined)
                logger.error(
                    "checkpoint %s is unusable (%s); quarantined to %s and "
                    "falling back to an older checkpoint",
                    path.name, exc, quarantined.name,
                )
        if base is None:
            raise RecoveryError(
                f"{d} holds no loadable checkpoint; cannot recover"
            )
        version, epoch, program, db = base
        model = cls(
            program,
            d,
            db,
            builtins=builtins,
            options=options,
            keep_versions=keep_versions,
            fsync=fsync,
            checkpoint_every=checkpoint_every,
            keep_checkpoints=keep_checkpoints,
            segment_max_bytes=segment_max_bytes,
            base_version=version - 1,
            epoch=epoch,
            _recovering=True,
        )
        records = model._wal.recover_records()
        model._replay(records)
        logger.info(
            "recovered %s at version %d epoch %d (checkpoint %d + %d "
            "replayed records)", d, model.version, model.epoch, version,
            model._records_since_checkpoint,
        )
        return model

    def close(self) -> None:
        """Flush and release the WAL; further writes are refused."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._wal.close()

    def __enter__(self) -> "DurableModel":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- write side (log-before-publish) ------------------------------------------

    def apply_delta(
        self, adds: Iterable[Any] = (), dels: Iterable[Any] = ()
    ) -> ModelSnapshot:
        with self._lock:
            self._check_writable()
            mm = self._materialized
            add_atoms = [mm._check_fact(s) for s in adds]
            del_atoms = [mm._check_fact(s) for s in dels]
            if self._replaying:
                return super().apply_delta(adds=add_atoms, dels=del_atoms)
            # Predict the net effect with the same set algebra
            # Database.apply_delta uses: deletions first, then additions.
            db = mm.database
            removed = {a for a in del_atoms if a in db}
            added = {a for a in add_atoms if a not in db or a in removed}
            if not (added - removed) and not (removed - added):
                # True no-op: publishes nothing, so nothing to log.
                return super().apply_delta(adds=add_atoms, dels=del_atoms)
            target = self._version + 1
            logged = self._wal.append_delta(
                target, add_atoms, del_atoms, epoch=self.epoch
            )
            try:
                snap = super().apply_delta(adds=add_atoms, dels=del_atoms)
            except Exception:
                # Applied nothing (resource limit mid-recompute): tombstone
                # the logged record so replay skips it, then surface the
                # error exactly like the in-memory model would.
                self._abort_logged(target)
                raise
            if snap.version != target:
                self._abort_logged(target)
                raise StorageError(
                    f"published version {snap.version} does not match the "
                    f"logged version {target}; refusing to continue with a "
                    "log that diverges from the state"
                )
            self._note_record()
            self._notify_commit(KIND_DELTA, logged)
            return snap

    def replace_program(self, program: Program) -> ModelSnapshot:
        with self._lock:
            self._check_writable()
            if self._replaying:
                return super().replace_program(program)
            source = encode_program(program)  # verified round trip
            target = self._version + 1
            logged = self._wal.append_program(
                target, source, epoch=self.epoch
            )
            try:
                snap = super().replace_program(program)
            except Exception:
                self._abort_logged(target)
                raise
            if snap.version != target:  # pragma: no cover - defensive
                self._abort_logged(target)
                raise StorageError(
                    f"program replacement published {snap.version}, "
                    f"logged {target}"
                )
            self._note_record()
            self._notify_commit(KIND_PROGRAM, logged)
            return snap

    def bump_epoch(self, epoch: int) -> None:
        """Raise the fencing epoch (promotion): durable before effective.

        The bump is WAL-logged at the store's current version — epoch
        records publish no model version of their own — and every later
        record carries the new epoch.  Replay (and followers) reject any
        record whose epoch is lower than one already seen, which is what
        fences a deposed leader out of the promoted lineage.
        """
        with self._lock:
            self._check_writable()
            if epoch <= self.epoch:
                raise FencingError(
                    f"cannot move the epoch backwards or in place: "
                    f"current {self.epoch}, requested {epoch}"
                )
            logged = self._wal.append_epoch(self._version, epoch)
            self.epoch = epoch
            self._note_record()
            self._notify_commit(KIND_EPOCH, logged)

    def add_commit_listener(self, fn) -> None:
        """Register ``fn(kind, data)`` to observe logged commits in order
        (called under the write lock — keep it non-blocking)."""
        with self._lock:
            self._commit_listeners.append(fn)

    def subscribe_replication(
        self, listener, from_version: int = 0
    ) -> tuple[list, Optional[dict], int, int]:
        """Gap-free subscription handoff for WAL shipping.

        Atomically — under the write lock, so no commit can slip between
        the history read and the registration — read the committed WAL
        tail after ``from_version`` and register ``listener`` for every
        subsequent commit.  Returns ``(history, snapshot, version,
        epoch)``; ``snapshot`` is a bootstrap payload (and ``history``
        restarts after it) when the WAL no longer covers ``from_version``
        — which is always the case for a brand-new follower, because a
        fresh store's initial version lives only in its base checkpoint.
        """
        with self._lock:
            history = self._wal.records_from(from_version)
            snapshot = None
            if from_version < self._version:
                published = [
                    d["version"] for k, d in history
                    if k in (KIND_DELTA, KIND_PROGRAM)
                ]
                if not published or published[0] != from_version + 1:
                    snapshot = self.replication_snapshot()
                    history = []
            self._commit_listeners.append(listener)
            return history, snapshot, self._version, self.epoch

    def unsubscribe_replication(self, listener) -> None:
        with self._lock:
            try:
                self._commit_listeners.remove(listener)
            except ValueError:
                pass

    def replication_snapshot(self) -> dict:
        """Bootstrap payload for a follower behind the WAL floor: the
        current program + EDB inline — exactly a checkpoint's content,
        shipped as one wire record.  Caller holds the write lock."""
        mm = self._materialized
        return {
            "version": self._version,
            "epoch": self.epoch,
            "mode": mm.program.mode,
            "program": encode_program(mm.program),
            "facts": sorted(
                (encode_atom(a) for a in mm.database.facts()), key=str
            ),
        }

    def checkpoint(self) -> Path:
        """Snapshot the current state, prune old checkpoints, truncate WAL.

        The newest ``keep_checkpoints`` snapshots are retained; the WAL is
        truncated only through the *oldest retained* checkpoint's version,
        so a later corrupt-latest-checkpoint fallback still finds every
        record it needs.
        """
        with self._lock:
            self._check_writable()
            path = write_checkpoint(
                self.data_dir,
                self._version,
                self._materialized.program,
                self._materialized.database,
                fsync=self._fsync == FSYNC_ALWAYS,
                epoch=self.epoch,
            )
            self._records_since_checkpoint = 0
            kept = list_checkpoints(self.data_dir)
            while len(kept) > self._keep_checkpoints:
                old = kept.pop(0)
                old.unlink()
                logger.info("checkpoint %s pruned", old.name)
            self._wal.truncate_through(checkpoint_version(kept[0]))
            return path

    # -- internals ---------------------------------------------------------------

    def _check_writable(self) -> None:
        if self._closed:
            raise StorageError("durable model is closed")

    def _notify_commit(self, kind: str, data: dict) -> None:
        for fn in self._commit_listeners:
            try:
                fn(kind, data)
            except Exception:  # pragma: no cover - listener bug
                logger.exception("commit listener failed for %s", kind)

    def _abort_logged(self, version: int) -> None:
        try:
            self._wal.append_abort(version)
        except Exception:  # pragma: no cover - disk gone mid-failure
            logger.exception(
                "could not tombstone WAL version %d after a failed apply",
                version,
            )

    def _note_record(self) -> None:
        self._records_since_checkpoint += 1
        if (
            self._checkpoint_every
            and self._records_since_checkpoint >= self._checkpoint_every
        ):
            self.checkpoint()

    def _replay(self, records: list[tuple[str, Any]]) -> None:
        """Apply the WAL suffix after the recovered checkpoint, strictly.

        Intermediate replayed versions are not retained in the snapshot
        registry (``keep`` is pinned to 1 for the duration): a restart
        deterministically retires every pre-crash version, so a session
        that pinned one gets ``retired_version`` rather than a registry
        whose contents depend on how much WAL happened to be replayed.
        """
        self._replaying = True
        keep, self._keep = self._keep, 1
        applied = 0
        try:
            i = 0
            while i < len(records):
                kind, data = records[i]
                if not isinstance(data, dict) or not isinstance(
                    data.get("version"), int
                ):
                    raise RecoveryError(
                        f"WAL record {i} carries no version number"
                    )
                version = data["version"]
                if kind == KIND_EPOCH:
                    # Fencing bumps are recorded *at* a version, publishing
                    # nothing; a regression in the stream is an old
                    # leader's lineage spliced after a promotion.
                    epoch = data.get("epoch")
                    if not isinstance(epoch, int):
                        raise RecoveryError(
                            f"epoch record at version {version} carries no "
                            "epoch number"
                        )
                    if epoch < self.epoch:
                        raise FencingError(
                            f"epoch regression in the WAL: record announces "
                            f"epoch {epoch} after {self.epoch} was already "
                            "established; refusing a fenced lineage"
                        )
                    self.epoch = epoch
                    i += 1
                    continue
                if kind == KIND_ABORT or version <= self._version:
                    # A stray tombstone, or a record the checkpoint already
                    # covers (retained for older-checkpoint fallback).
                    i += 1
                    continue
                nxt = records[i + 1] if i + 1 < len(records) else None
                if (
                    nxt is not None
                    and nxt[0] == KIND_ABORT
                    and isinstance(nxt[1], dict)
                    and nxt[1].get("version") == version
                ):
                    # Logged but never applied/acknowledged: skip the pair.
                    i += 2
                    continue
                if version != self._version + 1:
                    raise RecoveryError(
                        f"WAL gap: expected version {self._version + 1}, "
                        f"found {version}; refusing a partial recovery"
                    )
                rec_epoch = data.get("epoch", 0)
                if not isinstance(rec_epoch, int):
                    raise RecoveryError(
                        f"WAL record for version {version} carries a "
                        "malformed epoch"
                    )
                if rec_epoch < self.epoch:
                    raise FencingError(
                        f"stale-epoch append: record for version {version} "
                        f"carries epoch {rec_epoch} but the store has seen "
                        f"epoch {self.epoch}; rejecting a fenced leader's "
                        "write"
                    )
                if rec_epoch > self.epoch:
                    raise RecoveryError(
                        f"record for version {version} claims epoch "
                        f"{rec_epoch} which no epoch record announced "
                        f"(current {self.epoch}); the log is corrupt"
                    )
                try:
                    if kind == KIND_DELTA:
                        snap = self.apply_delta(
                            adds=decode_atoms(data.get("adds", ())),
                            dels=decode_atoms(data.get("dels", ())),
                        )
                    elif kind == KIND_PROGRAM:
                        snap = self.replace_program(
                            decode_program(data.get("source"))
                        )
                    else:
                        raise RecoveryError(
                            f"unknown WAL record kind {kind!r}"
                        )
                except CodecError as exc:
                    raise RecoveryError(
                        f"WAL record for version {version} is "
                        f"undecodable: {exc}"
                    ) from exc
                if snap.version != version:
                    raise RecoveryError(
                        f"replaying version {version} published "
                        f"{snap.version}; the log diverges from the state"
                    )
                applied += 1
                i += 1
        finally:
            self._replaying = False
            self._keep = keep
        self._records_since_checkpoint = applied
