"""Checkpointed snapshots: the EDB + program at a recorded version.

A checkpoint file ``ckpt-%016d.json`` (named by the version it captures)
is a JSON-lines document of :mod:`repro.storage.codec` records::

    checkpoint-header   {version, mode, program, facts: N}
    fact                {atom}          × N   (sorted, deterministic)
    checkpoint-footer   {facts: N}

Only the *extensional* state is stored — the program source and the
database facts.  Recovery rebuilds the derived model by evaluation, which
is exactly the engine's correctness anchor (``apply_delta ≡ recompute``):
a checkpoint can never disagree with what from-scratch evaluation of its
facts produces, because it stores nothing else.

**Atomicity.**  :func:`write_checkpoint` writes to a ``ckpt-*.tmp`` name,
fsyncs, then atomically renames into place and fsyncs the directory — a
crash mid-write leaves only a temp file, which recovery ignores (and
cleans up).  The footer record doubles as a completeness marker for
filesystems that fail the atomic-rename assumption: a truncated or
bit-flipped checkpoint fails its per-record CRCs or its fact count and is
rejected by :func:`load_checkpoint` — callers then quarantine it and fall
back to an older checkpoint (see ``DurableModel.recover``).
"""

from __future__ import annotations

import logging
import os
from pathlib import Path
from typing import Optional

from ..core.program import MODE_ELPS, MODE_LPS, Program
from ..engine.database import Database
from .codec import (
    KIND_CKPT_FACT,
    KIND_CKPT_FOOTER,
    KIND_CKPT_HEADER,
    CodecError,
    decode_atom,
    decode_program,
    decode_record,
    encode_atom,
    encode_program,
    encode_record,
)

logger = logging.getLogger("repro.storage")

CHECKPOINT_PREFIX = "ckpt-"
CHECKPOINT_SUFFIX = ".json"
TMP_SUFFIX = ".tmp"


def checkpoint_name(version: int) -> str:
    return f"{CHECKPOINT_PREFIX}{version:016d}{CHECKPOINT_SUFFIX}"


def checkpoint_version(path: Path) -> Optional[int]:
    name = path.name
    if not (
        name.startswith(CHECKPOINT_PREFIX)
        and name.endswith(CHECKPOINT_SUFFIX)
    ):
        return None
    digits = name[len(CHECKPOINT_PREFIX):-len(CHECKPOINT_SUFFIX)]
    return int(digits) if digits.isdigit() else None


def list_checkpoints(directory: Path) -> list[Path]:
    """Checkpoint files, oldest first (temp/quarantined files excluded)."""
    out = [
        p for p in Path(directory).iterdir()
        if checkpoint_version(p) is not None
    ]
    return sorted(out, key=lambda p: checkpoint_version(p))


def write_checkpoint(
    directory: Path,
    version: int,
    program: Program,
    database: Database,
    fsync: bool = True,
    epoch: int = 0,
) -> Path:
    """Serialize ``(program, EDB)`` at ``version``; atomic temp+rename.

    ``epoch`` is the replication fencing epoch the store held when the
    snapshot was taken; it survives WAL truncation through the header so
    a recovered store cannot forget it was promoted.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    facts = sorted(
        (encode_atom(a) for a in database.facts()), key=str
    )
    lines = [encode_record(KIND_CKPT_HEADER, {
        "version": version,
        "epoch": epoch,
        "mode": program.mode,
        "program": encode_program(program),
        "facts": len(facts),
    })]
    lines.extend(
        encode_record(KIND_CKPT_FACT, {"atom": f}) for f in facts
    )
    lines.append(encode_record(KIND_CKPT_FOOTER, {"facts": len(facts)}))
    final = directory / checkpoint_name(version)
    tmp = directory / (checkpoint_name(version) + TMP_SUFFIX)
    with open(tmp, "w", encoding="ascii", newline="\n") as f:
        f.write("\n".join(lines) + "\n")
        f.flush()
        if fsync:
            os.fsync(f.fileno())
    os.replace(tmp, final)
    if fsync:
        _fsync_dir(directory)
    logger.info("checkpoint %s written (%d facts at version %d)",
                final.name, len(facts), version)
    return final


def load_checkpoint(path: Path) -> tuple[int, int, Program, Database]:
    """Parse and verify one checkpoint; raises :class:`CodecError` when it
    is torn, bit-flipped, incomplete or otherwise untrustworthy.

    Returns ``(version, epoch, program, database)``; checkpoints written
    before the replication PR carry no epoch field and load as epoch 0.
    """
    path = Path(path)
    named_version = checkpoint_version(path)
    text = path.read_text(encoding="ascii", errors="surrogateescape")
    lines = [l for l in text.split("\n") if l]
    if not lines:
        raise CodecError(f"checkpoint {path.name} is empty")
    records = []
    for i, line in enumerate(lines):
        try:
            records.append(decode_record(line))
        except CodecError as exc:
            raise CodecError(
                f"checkpoint {path.name}:{i + 1}: {exc}"
            ) from exc
    kind, header = records[0]
    if kind != KIND_CKPT_HEADER or not isinstance(header, dict):
        raise CodecError(
            f"checkpoint {path.name} does not start with a header record"
        )
    version = header.get("version")
    epoch = header.get("epoch", 0)
    n_facts = header.get("facts")
    mode = header.get("mode")
    if (
        not isinstance(version, int)
        or not isinstance(n_facts, int)
        or not isinstance(epoch, int)
    ):
        raise CodecError(f"checkpoint {path.name} header is malformed")
    if named_version is not None and named_version != version:
        raise CodecError(
            f"checkpoint {path.name} claims version {version}; "
            "file name disagrees"
        )
    if mode not in (MODE_LPS, MODE_ELPS):
        raise CodecError(f"checkpoint {path.name} has unknown mode {mode!r}")
    kind, footer = records[-1]
    if kind != KIND_CKPT_FOOTER or footer.get("facts") != n_facts:
        raise CodecError(
            f"checkpoint {path.name} is incomplete (missing or "
            "inconsistent footer)"
        )
    body = records[1:-1]
    if len(body) != n_facts:
        raise CodecError(
            f"checkpoint {path.name} holds {len(body)} fact records, "
            f"header promises {n_facts}"
        )
    program = decode_program(header.get("program"))
    if program.mode != mode:
        raise CodecError(
            f"checkpoint {path.name}: stored program mode {program.mode!r} "
            f"disagrees with header mode {mode!r}"
        )
    db = Database()
    for kind, data in body:
        if kind != KIND_CKPT_FACT or not isinstance(data, dict):
            raise CodecError(
                f"checkpoint {path.name} has a stray {kind!r} record in "
                "its fact section"
            )
        db.add_atom(decode_atom(data.get("atom")))
    return version, epoch, program, db


def clean_temp_files(directory: Path) -> list[Path]:
    """Remove leftovers of checkpoints that crashed before their rename."""
    removed = []
    for p in Path(directory).glob(f"{CHECKPOINT_PREFIX}*{TMP_SUFFIX}"):
        p.unlink()
        removed.append(p)
        logger.info("removed unfinished checkpoint temp file %s", p.name)
    return removed


def _fsync_dir(directory: Path) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)
