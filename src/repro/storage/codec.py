"""Canonical, versioned, checksummed encoding of terms, atoms and programs.

The durable subsystem stores everything as **JSON-lines records**.  Each
record is one line::

    {"crc": 2847193640, "rec": [1, "delta", {...}]}

where ``rec`` is ``[format_version, kind, data]`` and ``crc`` is the CRC-32
of the *canonical* JSON serialization of ``rec`` (sorted keys, no spaces,
ASCII-only).  Canonical serialization makes the checksum reproducible from
the parsed value, so verification needs no byte-offset bookkeeping: decode
the line, re-serialize ``rec``, compare checksums.

Terms, atoms and programs ride inside records as **concrete LPS syntax**,
reusing the :mod:`repro.lang` pretty-printer and parser instead of a second
serialization format.  That round trip is *structural* — set terms
(canonical :class:`~repro.core.terms.SetValue`), nested ELPS sets, negative
integers, quoted payloads with embedded quotes and keywords all come back
bit-identical (property-tested in ``tests/test_pretty.py``) — and
:func:`encode_atom` / :func:`encode_program` additionally verify their own
round trip at encode time, so a value the concrete syntax cannot express is
a loud :class:`CodecError` at write time, never a silently different model
at recovery time.
"""

from __future__ import annotations

import json
import zlib
from typing import Any, Iterable

from ..core.atoms import Atom, atom_order_key
from ..core.errors import LPSError
from ..core.program import Program
from ..lang import parse_atom, parse_program, pretty_atom, pretty_program

#: Bump when the record layout changes; decoders reject other versions.
FORMAT_VERSION = 1

#: Record kinds used by the WAL and checkpoint layers.
KIND_DELTA = "delta"
KIND_PROGRAM = "program"
KIND_ABORT = "abort"
KIND_EPOCH = "epoch"
KIND_CKPT_HEADER = "checkpoint-header"
KIND_CKPT_FACT = "fact"
KIND_CKPT_FOOTER = "checkpoint-footer"

#: Record kinds used only on the replication wire (never in a WAL file):
#: the stream greeting and a full-state bootstrap snapshot.
KIND_REPL_HELLO = "repl-hello"
KIND_REPL_SNAPSHOT = "repl-snapshot"


class StorageError(LPSError):
    """Base class for durable-storage failures."""


class CodecError(StorageError):
    """A record or value cannot be (de)serialized faithfully.

    Raised at *encode* time when a value does not survive its own
    round trip, and at *decode* time on malformed JSON, an unsupported
    format version, or a checksum mismatch.
    """


class RecoveryError(StorageError):
    """Durable state on disk is unusable (see :mod:`repro.storage.durable`).

    Raised when recovery cannot reconstruct a trustworthy model: corruption
    in the middle of the WAL, no loadable checkpoint, or a replay that
    diverges from the logged version numbers.  Never raised for a torn
    *final* WAL record — that is the expected crash signature and is
    quarantined instead.
    """


def _canonical(obj: Any) -> str:
    """The one true JSON serialization (checksums depend on it)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True)


def encode_record(kind: str, data: Any) -> str:
    """One JSON-lines record (no trailing newline)."""
    rec = [FORMAT_VERSION, kind, data]
    crc = zlib.crc32(_canonical(rec).encode("ascii"))
    return _canonical({"crc": crc, "rec": rec})


def decode_record(line: str) -> tuple[str, Any]:
    """Parse and verify one record line; returns ``(kind, data)``.

    Raises :class:`CodecError` on malformed JSON, a record that is not the
    ``{"crc": ..., "rec": [fmt, kind, data]}`` shape, a checksum mismatch,
    or an unsupported format version.
    """
    try:
        obj = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CodecError(f"unparseable record: {exc}") from exc
    if (
        not isinstance(obj, dict)
        or not isinstance(obj.get("crc"), int)
        or not isinstance(obj.get("rec"), list)
        or len(obj["rec"]) != 3
    ):
        raise CodecError("record is not a {crc, rec:[fmt, kind, data]} object")
    rec = obj["rec"]
    crc = zlib.crc32(_canonical(rec).encode("ascii"))
    if crc != obj["crc"]:
        raise CodecError(
            f"checksum mismatch: stored {obj['crc']}, computed {crc}"
        )
    fmt, kind, data = rec
    if fmt != FORMAT_VERSION:
        raise CodecError(
            f"unsupported record format version {fmt!r} "
            f"(this build reads {FORMAT_VERSION})"
        )
    if not isinstance(kind, str):
        raise CodecError(f"record kind {kind!r} is not a string")
    return kind, data


# -- terms / atoms / programs as concrete syntax ------------------------------

def encode_atom(a: Atom) -> str:
    """A ground atom as verified concrete syntax."""
    if not a.is_ground():
        raise CodecError(f"cannot encode non-ground atom {a!r}")
    text = pretty_atom(a)
    try:
        back = parse_atom(text)
    except LPSError as exc:
        raise CodecError(
            f"atom {a!r} does not round-trip through {text!r}: {exc}"
        ) from exc
    if back != a:
        raise CodecError(
            f"atom {a!r} round-trips to a different atom {back!r} "
            f"(via {text!r})"
        )
    return text


def decode_atom(text: str) -> Atom:
    try:
        a = parse_atom(text)
    except LPSError as exc:
        raise CodecError(f"bad atom {text!r}: {exc}") from exc
    if not a.is_ground():
        raise CodecError(f"decoded atom {text!r} is not ground")
    return a


def encode_atoms(atoms: Iterable[Atom]) -> list[str]:
    """A deterministic (sorted) list of encoded ground atoms."""
    return [encode_atom(a) for a in sorted(atoms, key=atom_order_key)]


def decode_atoms(texts: Iterable[Any]) -> list[Atom]:
    out = []
    for t in texts:
        if not isinstance(t, str):
            raise CodecError(f"atom entry {t!r} is not a string")
        out.append(decode_atom(t))
    return out


def encode_program(p: Program) -> str:
    """A program as verified concrete syntax (multi-line text)."""
    text = pretty_program(p)
    try:
        back = parse_program(text)
    except LPSError as exc:
        raise CodecError(
            f"program does not round-trip through its pretty form: {exc}"
        ) from exc
    if back != p:
        raise CodecError(
            "program round-trips to a structurally different program; "
            "refusing to persist it"
        )
    return text


def decode_program(text: str) -> Program:
    if not isinstance(text, str):
        raise CodecError(f"program payload {text!r} is not a string")
    try:
        return parse_program(text)
    except LPSError as exc:
        raise CodecError(f"bad stored program: {exc}") from exc
