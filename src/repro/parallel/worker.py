"""Shard worker process: the plan-IR semi-naive fixpoint over one shard.

Each worker owns one hash-partition of the stratum being evaluated plus
a full replica of every relation the stratum reads from lower strata.
It runs the **existing** ``Evaluator._fixpoint`` (plan-IR, semi-naive,
columnar-capable) over that local interpretation; a :class:`ShardContext`
hook routes each derived head — owned heads stay local and drive further
local rounds, foreign heads accumulate in per-destination outboxes that
the coordinator ships between rounds as ``storage.codec`` atom text
(**never** raw ``TERM_DICT`` ids; the receiving worker re-interns on
decode).

A worker is stateless between strata: every ``eval`` message carries the
complete shard state for one stratum, so the coordinator's own
interpretation remains the single source of truth and a failed sharded
attempt can always fall back to the single-process path unchanged.
"""

from __future__ import annotations

import pickle
from typing import Mapping, Optional

from ..core.atoms import Atom
from ..engine.builtins import DEFAULT_BUILTINS
from ..engine.evaluation import (
    ActiveDomain,
    EvalOptions,
    EvalReport,
    Evaluator,
    SolverStats,
)
from ..engine.setops import with_set_builtins
from ..lang import parse_program
from ..semantics.interpretation import Interpretation
from ..storage.codec import decode_atoms, encode_atoms
from .partition import shard_of


def builtins_for_profile(name: str):
    if name == "setops":
        return with_set_builtins()
    return DEFAULT_BUILTINS


class ShardContext:
    """Head-routing hook threaded through ``Evaluator._fixpoint``.

    ``admit(head, exportable)`` decides, per derived head, whether the
    calling fixpoint should keep it: owned heads are admitted; foreign
    heads are dropped locally and — when the deriving rule reads a
    partitioned predicate, i.e. the derivation happened *only* on this
    shard — recorded once in the owner's outbox.  Heads of rules that
    read no partitioned predicate are derived identically by every
    worker, so the owner already has them and nothing is shipped.
    """

    __slots__ = ("index", "n_shards", "spec", "partitioned", "_outbox",
                 "_shipped")

    def __init__(self, index: int, n_shards: int,
                 spec: Mapping[str, int], partitioned: frozenset) -> None:
        self.index = index
        self.n_shards = n_shards
        self.spec = spec
        self.partitioned = partitioned
        self._outbox: dict[int, list[Atom]] = {}
        self._shipped: set[Atom] = set()

    def exportable(self, rule_deps: set) -> bool:
        return bool(self.partitioned & rule_deps)

    def admit(self, head: Atom, exportable: bool) -> bool:
        dest = shard_of(head, self.spec, self.n_shards)
        if dest == self.index:
            return True
        if exportable and head not in self._shipped:
            self._shipped.add(head)
            self._outbox.setdefault(dest, []).append(head)
        return False

    def drain(self) -> dict[int, list[Atom]]:
        out, self._outbox = self._outbox, {}
        return out


class _StratumRun:
    """One stratum's shard-local state, alive between exchange rounds."""

    def __init__(self, evaluator: Evaluator, index: int, n_shards: int,
                 msg: dict) -> None:
        self.evaluator = evaluator
        head_preds = frozenset(msg["head_preds"])
        for group in evaluator.stratification.rule_groups():
            if group.head_preds == head_preds:
                self.clauses = [c for c in group.clauses]
                break
        else:
            raise LookupError(
                f"no stratum with head predicates {sorted(head_preds)}; "
                "coordinator and worker stratifications disagree"
            )
        self.ctx = ShardContext(index, n_shards, msg["partition"], head_preds)
        self.interp = Interpretation()
        self.domain = ActiveDomain()
        for t in evaluator.program.all_terms():
            self.domain.note_term(t)
        for atoms in pickle.loads(msg["replicated_blob"]).values():
            for a in atoms:
                self.interp.add(a)
                self.domain.note_atom(a)
        for a in msg["owned"]:
            self.interp.add(a)
            self.domain.note_atom(a)
        self.report = EvalReport(stats=SolverStats())
        #: Owned atoms added by this worker's fixpoints (the gather set).
        self.added: dict[str, set[Atom]] = {}
        self._seed_texts = msg.get("seeds")

    def start(self) -> dict:
        seed_deltas = None
        if self._seed_texts is not None:
            # Maintenance seeding: the atoms are already part of the
            # shipped state (exactly as the coordinator's interpretation
            # already contains them); they only pin the delta.
            seed_deltas = {
                p: frozenset(decode_atoms(texts))
                for p, texts in self._seed_texts.items()
            }
        return self._run(seed_deltas)

    def resume(self, inbox: list) -> dict:
        seeds: dict[str, set[Atom]] = {}
        for a in decode_atoms(inbox):
            if self.interp.add(a):
                self.domain.note_atom(a)
                self.added.setdefault(a.pred, set()).add(a)
                seeds.setdefault(a.pred, set()).add(a)
        if not seeds:
            return {"ok": True, "exports": {}}
        return self._run({p: frozenset(s) for p, s in seeds.items()})

    def _run(self, seed_deltas) -> dict:
        fallbacks_before = self.report.stats.fallbacks
        added = self.evaluator._fixpoint(
            self.clauses, self.interp, self.domain, self.report,
            seed_deltas=seed_deltas, shard=self.ctx,
        )
        if self.report.stats.fallbacks > fallbacks_before:
            # Same soundness gate as incremental maintenance: a fallback
            # means the active domain was consulted, and worker domains
            # are not the coordinator's.
            raise RuntimeError("active-domain fallback inside shard worker")
        for p, s in added.items():
            self.added.setdefault(p, set()).update(s)
        return {
            "ok": True,
            "exports": {
                dest: encode_atoms(atoms)
                for dest, atoms in self.ctx.drain().items()
            },
        }

    def finish(self) -> dict:
        return {
            "ok": True,
            "added": [a for s in self.added.values() for a in s],
            "rounds": self.report.rounds,
            "rule_applications": self.report.rule_applications,
        }


def worker_main(conn, index: int, n_shards: int, program_text: str,
                options_kwargs: dict, builtins_profile: str) -> None:
    """Entry point of a shard worker process (fork- and spawn-safe)."""
    program = parse_program(program_text)
    options = EvalOptions(**options_kwargs)
    builtins = builtins_for_profile(builtins_profile)
    evaluator = Evaluator(program, None, builtins=builtins, options=options)
    run: Optional[_StratumRun] = None
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        cmd = msg.get("cmd")
        if cmd == "shutdown":
            conn.close()
            return
        try:
            if cmd == "eval":
                run = _StratumRun(evaluator, index, n_shards, msg)
                reply = run.start()
            elif cmd == "continue":
                reply = run.resume(msg["inbox"])
            elif cmd == "finish":
                reply = run.finish()
                run = None
            elif cmd == "reset":
                run = None
                reply = {"ok": True}
            else:
                reply = {"ok": False, "error": f"unknown command {cmd!r}"}
        except Exception as exc:  # surfaced to the coordinator's fallback
            run = None
            reply = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return
