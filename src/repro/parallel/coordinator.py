"""Shard coordinator: owns the program and the authoritative model.

The coordinator keeps the only authoritative interpretation.  For each
shardable stratum it ships every worker a full replica of the relations
the stratum reads plus that worker's hash-partition of the stratum's own
predicates, then drives synchronous exchange rounds: workers run their
local fixpoint to quiescence, return per-destination outboxes of
cross-shard delta tuples (codec atom text), and the coordinator forwards
each outbox to its owner until no worker has anything left to ship.  A
final gather merges each worker's owned additions back into the
coordinator's interpretation.

Every failure path — a worker dying, a transport error, a stratum the
worker cannot map, an active-domain fallback inside a worker — makes
``eval_stratum`` return ``None`` with the coordinator's interpretation
untouched, and the caller reruns the stratum single-process.
"""

from __future__ import annotations

import dataclasses
import logging
import multiprocessing
import pickle
from typing import Mapping, Optional

from ..core.atoms import Atom
from ..engine.builtins import DEFAULT_BUILTINS
from ..engine.setops import with_set_builtins
from ..engine.stratify import StratumRules
from ..lang.pretty import pretty_program
from .partition import choose_partition, preserved_positions, shard_of
from .worker import builtins_for_profile, worker_main

logger = logging.getLogger(__name__)

#: Generous per-reply ceiling: a worker that stays silent this long is
#: treated as dead and the stratum falls back to single-process.
REPLY_TIMEOUT_S = 600.0


class ShardEvalError(Exception):
    """A sharded stratum attempt failed; fall back to single-process."""


def builtin_profile(builtins) -> Optional[str]:
    """A name a worker process can rebuild the builtin registry from.

    Only the two registries the engine ships are recognized; custom
    builtin sets cannot be serialized to another process, so evaluators
    using them never shard (single-process fallback, like any other
    unshardable configuration).
    """
    keys = set(builtins)
    if keys == set(DEFAULT_BUILTINS):
        return "default"
    if keys == set(with_set_builtins()):
        return "setops"
    return None


class ShardCoordinator:
    def __init__(self, program, n_shards: int, options,
                 builtins_profile: str) -> None:
        if n_shards < 2:
            raise ValueError("n_shards must be >= 2")
        # Workers re-parse the program and re-intern every shipped term
        # in their own process; their options must not recurse into
        # sharding or provenance.
        opts = dataclasses.asdict(options)
        opts["shards"] = 1
        opts["track_provenance"] = False
        text = pretty_program(program)
        # Prefer fork where available (Linux): workers inherit warm
        # imports.  worker_main is spawn-safe for the other platforms.
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        self.n_shards = n_shards
        self.broken = False
        self._builtins = builtins_for_profile(builtins_profile)
        self._procs = []
        self._conns = []
        try:
            for i in range(n_shards):
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=worker_main,
                    args=(child, i, n_shards, text, opts, builtins_profile),
                    daemon=True,
                    name=f"repro-shard-{i}",
                )
                proc.start()
                child.close()
                self._procs.append(proc)
                self._conns.append(parent)
        except BaseException:
            self.close()
            raise

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send({"cmd": "shutdown"})
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        self._procs = []
        self._conns = []
        self.broken = True

    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- stratum evaluation ------------------------------------------------------

    def eval_stratum(
        self,
        group: StratumRules,
        interp,
        domain,
        report,
        seeds: Optional[Mapping[str, set[Atom]]] = None,
    ) -> Optional[dict[str, set[Atom]]]:
        """Evaluate one shardable stratum across the workers.

        Returns the per-predicate atoms added (already merged into
        ``interp``/``domain``), or ``None`` if anything failed — the
        interpretation is untouched in that case and the caller must
        rerun the stratum single-process.
        """
        if self.broken:
            return None
        try:
            return self._eval_stratum(group, interp, domain, report, seeds)
        except ShardEvalError as exc:
            logger.warning(
                "sharded evaluation of stratum %d failed (%s); "
                "falling back to single-process", group.index, exc,
            )
            self._reset_workers()
            return None
        except (OSError, EOFError, BrokenPipeError) as exc:
            logger.warning(
                "shard worker transport failed (%s); disabling sharding "
                "for this evaluator", exc,
            )
            self.close()
            return None

    def _reset_workers(self) -> None:
        """Drop any half-finished stratum state in every worker."""
        try:
            for conn in self._conns:
                conn.send({"cmd": "reset"})
            for conn in self._conns:
                self._recv(conn)
        except (OSError, EOFError, BrokenPipeError, ShardEvalError):
            self.close()

    def _recv(self, conn) -> dict:
        if not conn.poll(REPLY_TIMEOUT_S):
            raise ShardEvalError("worker reply timed out")
        return conn.recv()

    def _eval_stratum(self, group, interp, domain, report, seeds):
        n = self.n_shards
        spec = choose_partition(
            interp, group.head_preds,
            preferred=preserved_positions(group, self._builtins),
        )
        heads = sorted(group.head_preds)
        # One pickle for the shared replica, whatever the worker count:
        # the blob is byte-copied into each pipe and each worker unpickles
        # (and re-interns, via the terms' ``__reduce__``) in parallel.
        replicated_blob = pickle.dumps(
            {
                p: list(interp.facts_of(p))
                for p in sorted(group.body_preds - group.head_preds)
                if interp.facts_of(p)
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        owned: list[list[Atom]] = [[] for _ in range(n)]
        for p in heads:
            for a in interp.facts_of(p):
                owned[shard_of(a, spec, n)].append(a)
        seed_texts: Optional[list[dict[str, list[str]]]] = None
        if seeds is not None:
            from ..storage.codec import encode_atoms

            seed_texts = [{} for _ in range(n)]
            for p, atoms in seeds.items():
                if not atoms:
                    continue
                if p in group.head_preds:
                    # Stratum facts pin only at their owner.
                    per: list[list[Atom]] = [[] for _ in range(n)]
                    for a in atoms:
                        per[shard_of(a, spec, n)].append(a)
                    for i in range(n):
                        if per[i]:
                            seed_texts[i][p] = encode_atoms(per[i])
                else:
                    # Lower-stratum deltas join everywhere: broadcast.
                    texts = encode_atoms(atoms)
                    for i in range(n):
                        seed_texts[i][p] = texts
        for i, conn in enumerate(self._conns):
            conn.send({
                "cmd": "eval",
                "head_preds": heads,
                "partition": spec,
                "replicated_blob": replicated_blob,
                "owned": owned[i],
                "seeds": seed_texts[i] if seed_texts is not None else None,
            })
        replies = {i: self._check(self._recv(c))
                   for i, c in enumerate(self._conns)}

        # Exchange rounds: forward outboxes until global quiescence.
        while True:
            inboxes: dict[int, list[str]] = {}
            for r in replies.values():
                for dest, texts in r["exports"].items():
                    inboxes.setdefault(dest, []).extend(texts)
            if not inboxes:
                break
            for dest, texts in inboxes.items():
                self._conns[dest].send({"cmd": "continue", "inbox": texts})
            replies = {
                dest: self._check(self._recv(self._conns[dest]))
                for dest in inboxes
            }

        added: dict[str, set[Atom]] = {}
        rounds = 0
        for conn in self._conns:
            conn.send({"cmd": "finish"})
        for conn in self._conns:
            r = self._check(self._recv(conn))
            rounds = max(rounds, r["rounds"])
            report.rule_applications += r["rule_applications"]
            for a in r["added"]:
                if interp.add(a):
                    domain.note_atom(a)
                    report.derived += 1
                    added.setdefault(a.pred, set()).add(a)
        report.rounds += rounds
        return added

    @staticmethod
    def _check(reply: dict) -> dict:
        if not reply.get("ok"):
            raise ShardEvalError(reply.get("error", "worker error"))
        return reply
