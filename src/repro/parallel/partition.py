"""Hash partitioning and shardability analysis for parallel evaluation.

The partitioning scheme (the classic parallel-Datalog recipe):

* Only the predicates **defined by** a recursive conjunctive stratum
  (its ``head_preds``) are partitioned; every relation the stratum reads
  from below is replicated to all workers.  A worker's interpretation is
  therefore complete for every body conjunct except occurrences of the
  stratum's own predicates, of which it holds exactly its shard.
* A fact's owner is a stable content hash (CRC-32 of the canonical
  concrete syntax — never the process-local ``TERM_DICT`` id) of its
  argument at the predicate's **partition position**, chosen as the most
  selective position by the same per-position index statistics the join
  planner reads (:meth:`Interpretation.estimate_for_pattern`'s buckets).
* A rule with at most **one** body occurrence of a partitioned predicate
  is complete under this split: each derivation consumes exactly one
  partitioned fact, and the shard owning that fact performs it (rules
  reading only replicated relations are derived everywhere and filtered
  to owned heads).  Rules with two or more such occurrences — nonlinear
  recursion — are not partitionable, and the stratum falls back to the
  single-process fixpoint.
"""

from __future__ import annotations

import zlib
from typing import Mapping, Optional

from ..core.atoms import Atom
from ..core.clauses import LPSClause
from ..core.terms import Var
from ..engine.stratify import PLAN_DRED, StratumRules
from ..lang.pretty import pretty_term
from ..semantics.interpretation import Interpretation


def stable_hash(text: str) -> int:
    """A process-independent hash (CRC-32 of UTF-8): identical in every
    worker regardless of ``PYTHONHASHSEED`` or interning order."""
    return zlib.crc32(text.encode("utf-8"))


def shard_of(atom: Atom, spec: Mapping[str, int], n_shards: int) -> int:
    """The worker index owning a ground fact under a partition spec."""
    pos = spec.get(atom.pred, 0)
    if pos >= len(atom.args):
        # Propositional (or mis-specified) predicate: a single owner,
        # chosen by predicate name so routing stays deterministic.
        return stable_hash(atom.pred) % n_shards
    return stable_hash(pretty_term(atom.args[pos])) % n_shards


def preserved_positions(group: StratumRules, builtins) -> dict[str, set[int]]:
    """Positions at which every recursive rule's head copies the variable
    of its recursive body occurrence.

    Partitioning a predicate on such a position makes recursion
    *communication-free*: a derivation's head hashes to the very shard
    that owned the consumed fact, so nothing ever crosses shards (the
    classic parallel-TC trick — ``t(X, Z) :- e(X, Y), t(Y, Z)`` ships
    nothing when ``t`` is split on position 1, everything when split on
    position 0).  Only self-recursion is analysed; mutual recursion
    yields no preserved positions (correct either way — just chattier).
    """
    from ..engine.evaluation import _CompiledRule

    heads = group.head_preds
    out: dict[str, Optional[set[int]]] = {}
    for c in group.clauses:
        if not isinstance(c, LPSClause) or (c.is_fact and c.head.is_ground()):
            continue
        rule = _CompiledRule(c, builtins)
        occs = [a for a in rule.relational if a.pred in heads]
        if not occs:
            continue
        p = c.head.pred
        occ = occs[0]
        if occ.pred != p:
            out[p] = set()
            continue
        cand = {
            j
            for j in range(min(len(c.head.args), len(occ.args)))
            if isinstance(c.head.args[j], Var)
            and c.head.args[j] == occ.args[j]
        }
        prev = out.get(p)
        out[p] = cand if prev is None else prev & cand
    return {p: s for p, s in out.items() if s}


def choose_partition(
    interp: Interpretation,
    preds,
    preferred: Optional[Mapping[str, set[int]]] = None,
    min_facts: int = 2,
) -> dict[str, int]:
    """Pick each predicate's partition position from current stats.

    Within the allowed positions — the ``preferred`` communication-free
    set from :func:`preserved_positions` when one exists, else every
    position — the most selective one (most distinct values among the
    facts currently materialized) balances shards best; it is read off
    the same per-position hash indexes that back
    ``estimate_for_pattern``.  Predicates with too few facts to judge
    take the lowest allowed position.
    """
    spec: dict[str, int] = {}
    for pred in sorted(preds):
        allowed = sorted((preferred or {}).get(pred) or ())
        facts = interp.facts_of(pred)
        if len(facts) < min_facts:
            spec[pred] = allowed[0] if allowed else 0
            continue
        arity = len(next(iter(facts)).args)
        positions = [j for j in allowed if j < arity] or range(arity)
        best_pos, best_distinct = 0, -1
        for pos in positions:
            distinct = len(interp._index_for(pred, (pos,)))
            if distinct > best_distinct:
                best_pos, best_distinct = pos, distinct
        spec[pred] = best_pos
    return spec


def shardable_group(group: StratumRules, builtins) -> bool:
    """Whether a stratum's rules are safe to evaluate sharded.

    The fallback matrix (strata failing any row run on the coordinator):

    * negation / grouping / quantifier strata (``PLAN_RECOMPUTE``) — a
      worker cannot see the complete extension its strictness needs;
    * nonrecursive strata (``PLAN_COUNTING``) — every body relation is
      replicated, so sharding would only duplicate the work N times;
    * domain-sensitive rules — active domains diverge per worker;
    * rules with >1 body occurrence of a stratum predicate (nonlinear
      recursion) — a derivation could need facts from two shards.
    """
    from ..engine.evaluation import _CompiledRule

    if group.plan != PLAN_DRED:
        return False
    heads = group.head_preds
    for c in group.clauses:
        if not isinstance(c, LPSClause):
            return False
        if c.is_fact and c.head.is_ground():
            continue
        rule = _CompiledRule(c, builtins)
        if not rule.delta_capable or rule.domain_sensitive:
            return False
        if sum(1 for a in rule.relational if a.pred in heads) > 1:
            return False
    return True
