"""Sharded parallel evaluation (see DESIGN.md, "Sharded parallel evaluation").

A coordinator process hash-partitions a recursive stratum's facts across
N ``multiprocessing`` workers; each worker runs the existing plan-IR
semi-naive fixpoint over its shard and ships cross-shard delta tuples
through the ``storage.codec`` wire format between rounds.  Everything is
gated behind ``EvalOptions.shards`` with a single-process fallback for
strata the partitioner cannot prove safe.
"""

from .partition import (
    choose_partition,
    preserved_positions,
    shard_of,
    shardable_group,
)
from .coordinator import ShardCoordinator, builtin_profile

__all__ = [
    "ShardCoordinator",
    "builtin_profile",
    "choose_partition",
    "preserved_positions",
    "shard_of",
    "shardable_group",
]
