"""Body formulas: conjunction, disjunction, restricted quantifiers, negation.

Core LPS bodies are quantifier-prefixed conjunctions of atoms (Definition 5),
but Section 4.1 works with the richer class of **positive formulas**
(Definition 12): atoms closed under ``∧``, ``∨``, ``(∃x ∈ X)`` and
``(∀x ∈ X)``.  Theorem 6 compiles any positive-formula body back into pure
LPS; that compiler (``repro.transform.positive``) consumes the AST defined
here.

Negation (:class:`NotF`) is included for the stratified extension of
Sections 4.2 / 6.2 — a formula containing it is *not* positive.

The module also implements **model checking** of closed formulas against a
"holds" oracle (:func:`evaluate`).  Because LPS quantifiers are *restricted*
(they range over the elements of a ground set value), closed formulas are
decidable without reference to any domain: ``(∀x ∈ {a,b}) φ`` unfolds to
``φ[x/a] ∧ φ[x/b]`` and ``(∀x ∈ ∅) φ`` is *true* — the empty-set subtlety
that Definition 4 and Section 4.1 stress.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from .atoms import Atom
from .errors import ClauseError, SortError
from .sorts import EQUALS, MEMBER, SORT_A, SORT_S, SORT_U
from .substitution import Subst
from .terms import SetValue, Term, Var


class Formula:
    """Abstract base class of body formulas."""

    __slots__ = ()

    def free_vars(self) -> set[Var]:
        raise NotImplementedError

    def substitute(self, theta: Subst) -> "Formula":
        raise NotImplementedError

    def is_positive(self) -> bool:
        """Whether this is a positive formula in the sense of Definition 12."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class TrueF(Formula):
    """The trivially true body (used for facts)."""

    def free_vars(self) -> set[Var]:
        return set()

    def substitute(self, theta: Subst) -> "Formula":
        return self

    def is_positive(self) -> bool:
        return True

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True, slots=True)
class AtomF(Formula):
    """An atomic formula used as a body formula."""

    atom: Atom

    def free_vars(self) -> set[Var]:
        return self.atom.free_vars()

    def substitute(self, theta: Subst) -> "Formula":
        return AtomF(self.atom.substitute(theta))

    def is_positive(self) -> bool:
        return True

    def __str__(self) -> str:
        return str(self.atom)


@dataclass(frozen=True, slots=True)
class NotF(Formula):
    """Negation — only meaningful in the stratified extension."""

    sub: Formula

    def free_vars(self) -> set[Var]:
        return self.sub.free_vars()

    def substitute(self, theta: Subst) -> "Formula":
        return NotF(self.sub.substitute(theta))

    def is_positive(self) -> bool:
        return False

    def __str__(self) -> str:
        return f"not ({self.sub})"


@dataclass(frozen=True, slots=True)
class AndF(Formula):
    """Conjunction of zero or more formulas (empty conjunction is true)."""

    parts: tuple[Formula, ...]

    def free_vars(self) -> set[Var]:
        out: set[Var] = set()
        for p in self.parts:
            out |= p.free_vars()
        return out

    def substitute(self, theta: Subst) -> "Formula":
        return AndF(tuple(p.substitute(theta) for p in self.parts))

    def is_positive(self) -> bool:
        return all(p.is_positive() for p in self.parts)

    def __str__(self) -> str:
        return " and ".join(_paren(p) for p in self.parts) if self.parts else "true"


@dataclass(frozen=True, slots=True)
class OrF(Formula):
    """Disjunction of formulas."""

    parts: tuple[Formula, ...]

    def free_vars(self) -> set[Var]:
        out: set[Var] = set()
        for p in self.parts:
            out |= p.free_vars()
        return out

    def substitute(self, theta: Subst) -> "Formula":
        return OrF(tuple(p.substitute(theta) for p in self.parts))

    def is_positive(self) -> bool:
        return all(p.is_positive() for p in self.parts)

    def __str__(self) -> str:
        return " or ".join(_paren(p) for p in self.parts) if self.parts else "false"


def _check_quantifier(var: Var, source: Term) -> None:
    if var.sort == SORT_S:
        raise ClauseError(
            f"restricted quantifier binds {var} of sort 's'; Definition 4 "
            "requires the bound variable to be of sort 'a' (or untyped in ELPS)"
        )
    if source.sort == SORT_A:
        raise SortError(
            f"restricted quantifier ranges over {source} of sort 'a'; the "
            "range must be a set-sorted term"
        )


@dataclass(frozen=True, slots=True)
class ForallIn(Formula):
    """Restricted universal quantification ``(∀var ∈ source) body``.

    Abbreviates ``(∀var)(var ∈ source → body)`` (Definition 4); in
    particular it is **true when source is empty**.
    """

    var: Var
    source: Term
    body: Formula

    def __post_init__(self) -> None:
        _check_quantifier(self.var, self.source)

    def free_vars(self) -> set[Var]:
        out = set(self.body.free_vars())
        out.discard(self.var)
        from .terms import free_vars as tfv
        out |= tfv(self.source)
        return out

    def substitute(self, theta: Subst) -> "Formula":
        if self.var in theta:
            inner = Subst._make(
                {v: t for v, t in theta.items() if v != self.var}
            )
        else:
            inner = theta
        return ForallIn(self.var, theta.apply(self.source), self.body.substitute(inner))

    def is_positive(self) -> bool:
        return self.body.is_positive()

    def __str__(self) -> str:
        return f"forall {self.var} in {self.source} ({self.body})"


@dataclass(frozen=True, slots=True)
class ExistsIn(Formula):
    """Restricted existential quantification ``(∃var ∈ source) body``.

    Part of the positive-formula class of Definition 12; equivalent to the
    LPS body ``var ∈ source ∧ body`` with ``var`` fresh.
    """

    var: Var
    source: Term
    body: Formula

    def __post_init__(self) -> None:
        _check_quantifier(self.var, self.source)

    def free_vars(self) -> set[Var]:
        out = set(self.body.free_vars())
        out.discard(self.var)
        from .terms import free_vars as tfv
        out |= tfv(self.source)
        return out

    def substitute(self, theta: Subst) -> "Formula":
        if self.var in theta:
            inner = Subst._make(
                {v: t for v, t in theta.items() if v != self.var}
            )
        else:
            inner = theta
        return ExistsIn(self.var, theta.apply(self.source), self.body.substitute(inner))

    def is_positive(self) -> bool:
        return self.body.is_positive()

    def __str__(self) -> str:
        return f"exists {self.var} in {self.source} ({self.body})"


def _paren(f: Formula) -> str:
    if isinstance(f, (AtomF, TrueF, NotF)):
        return str(f)
    return f"({f})"


# ---------------------------------------------------------------------------
# Constructors
# ---------------------------------------------------------------------------

TRUE = TrueF()


def conj(*parts: Formula) -> Formula:
    """N-ary conjunction, flattening nested conjunctions."""
    flat: list[Formula] = []
    for p in parts:
        if isinstance(p, AndF):
            flat.extend(p.parts)
        elif isinstance(p, TrueF):
            continue
        else:
            flat.append(p)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return AndF(tuple(flat))


def disj(*parts: Formula) -> Formula:
    """N-ary disjunction, flattening nested disjunctions."""
    flat: list[Formula] = []
    for p in parts:
        if isinstance(p, OrF):
            flat.extend(p.parts)
        else:
            flat.append(p)
    if len(flat) == 1:
        return flat[0]
    return OrF(tuple(flat))


def atomf(a: Atom) -> AtomF:
    return AtomF(a)


# ---------------------------------------------------------------------------
# Model checking of closed formulas
# ---------------------------------------------------------------------------

HoldsOracle = Callable[[Atom], bool]


def evaluate(formula: Formula, holds: HoldsOracle) -> bool:
    """Truth value of a **closed** formula.

    ``holds`` decides ground non-special atoms (an interpretation).  The
    special predicates are interpreted structurally, per Definition 3:
    equality is identity of canonical ground terms, membership is membership
    in a :class:`SetValue`.  Restricted quantifiers unfold over the elements
    of their (necessarily ground) range set.

    Raises :class:`ClauseError` if the formula is not closed.
    """
    if isinstance(formula, TrueF):
        return True
    if isinstance(formula, AtomF):
        return evaluate_ground_atom(formula.atom, holds)
    if isinstance(formula, NotF):
        return not evaluate(formula.sub, holds)
    if isinstance(formula, AndF):
        return all(evaluate(p, holds) for p in formula.parts)
    if isinstance(formula, OrF):
        return any(evaluate(p, holds) for p in formula.parts)
    if isinstance(formula, (ForallIn, ExistsIn)):
        source = formula.source
        if not isinstance(source, SetValue):
            raise ClauseError(
                f"cannot evaluate quantifier over non-ground range {source}"
            )
        instances = (
            evaluate(
                formula.body.substitute(Subst._checked({formula.var: e})),
                holds,
            )
            for e in source.sorted_elems()
        )
        if isinstance(formula, ForallIn):
            return all(instances)
        return any(instances)
    raise TypeError(f"not a formula: {formula!r}")


def evaluate_ground_atom(a: Atom, holds: HoldsOracle) -> bool:
    """Truth of a ground atom: built-ins structurally, others via ``holds``."""
    if not a.is_ground():
        raise ClauseError(f"atom {a} is not ground")
    if a.pred == EQUALS:
        return a.args[0] == a.args[1]
    if a.pred == MEMBER:
        container = a.args[1]
        if not isinstance(container, SetValue):
            raise SortError(f"membership in non-set value {container}")
        return a.args[0] in container
    return holds(a)


def walk(formula: Formula) -> Iterator[Formula]:
    """Yield the formula and all subformulas, outermost first."""
    yield formula
    if isinstance(formula, (AndF, OrF)):
        for p in formula.parts:
            yield from walk(p)
    elif isinstance(formula, NotF):
        yield from walk(formula.sub)
    elif isinstance(formula, (ForallIn, ExistsIn)):
        yield from walk(formula.body)


def atoms_of(formula: Formula) -> Iterator[Atom]:
    """Yield every atom occurring in the formula."""
    for f in walk(formula):
        if isinstance(f, AtomF):
            yield f.atom


def predicates_of(formula: Formula) -> set[str]:
    """Names of non-special predicates occurring in the formula."""
    return {a.pred for a in atoms_of(formula) if not a.is_special()}
