"""Core logic of LPS/ELPS: terms, atoms, formulas, clauses, programs.

This package implements Section 2 of Kuper's *Logic Programming with Sets*:
the two-sorted language (Definitions 1–2), LPS clauses and programs
(Definitions 4–6), plus the generalized rule and LDL grouping-clause forms
used by Sections 4 and 6.
"""

from .errors import (
    ClauseError,
    EvaluationError,
    LPSError,
    ParseError,
    SafetyError,
    SortError,
    StratificationError,
    UnificationError,
)
from .sorts import (
    EQUALS,
    MEMBER,
    SORT_A,
    SORT_S,
    SORT_U,
    FunctionSignature,
    PredicateSignature,
    is_special_predicate,
)
from .terms import (
    EMPTY_SET,
    App,
    Const,
    SetExpr,
    SetValue,
    Term,
    Var,
    app,
    canonicalize,
    const,
    free_vars,
    mkset,
    nesting_depth,
    order_key,
    setvalue,
    subterms,
    var_a,
    var_s,
    var_u,
)
from .substitution import EMPTY_SUBST, Subst
from .atoms import Atom, Literal, atom, atom_order_key, equals, member, neg, pos
from .formulas import (
    AndF,
    AtomF,
    ExistsIn,
    ForallIn,
    Formula,
    NotF,
    OrF,
    TRUE,
    TrueF,
    atomf,
    atoms_of,
    conj,
    disj,
    evaluate,
    evaluate_ground_atom,
    predicates_of,
    walk,
)
from .clauses import (
    GroupingClause,
    HornGround,
    LPSClause,
    Rule,
    clause,
    fact,
    horn,
)
from .program import MODE_ELPS, MODE_LPS, Program, rename_predicates
from .unify import (
    MAX_SET_WIDTH,
    first_unifier,
    match,
    match_atom,
    unify,
    unify_atoms,
)

__all__ = [
    # errors
    "LPSError", "SortError", "ClauseError", "SafetyError",
    "StratificationError", "ParseError", "EvaluationError", "UnificationError",
    # sorts
    "SORT_A", "SORT_S", "SORT_U", "EQUALS", "MEMBER",
    "PredicateSignature", "FunctionSignature", "is_special_predicate",
    # terms
    "Term", "Var", "Const", "App", "SetExpr", "SetValue", "EMPTY_SET",
    "var_a", "var_s", "var_u", "const", "app", "mkset", "setvalue",
    "canonicalize", "free_vars", "subterms", "nesting_depth", "order_key",
    # substitution
    "Subst", "EMPTY_SUBST",
    # atoms
    "Atom", "Literal", "atom", "atom_order_key", "equals", "member",
    "pos", "neg",
    # formulas
    "Formula", "TrueF", "TRUE", "AtomF", "NotF", "AndF", "OrF",
    "ForallIn", "ExistsIn", "atomf", "conj", "disj", "walk", "atoms_of",
    "predicates_of", "evaluate", "evaluate_ground_atom",
    # clauses
    "LPSClause", "HornGround", "Rule", "GroupingClause",
    "fact", "horn", "clause",
    # program
    "Program", "MODE_LPS", "MODE_ELPS", "rename_predicates",
    # unify
    "unify", "unify_atoms", "first_unifier", "match", "match_atom",
    "MAX_SET_WIDTH",
]
