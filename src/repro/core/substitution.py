"""Substitutions over two-sorted terms.

A substitution maps variables to terms of a compatible sort.  Applying a
substitution canonicalizes on the fly, so ground set constructors collapse to
canonical :class:`~repro.core.terms.SetValue` objects — this is what makes a
"ground instance" of a clause (Definition in Section 3) live in the Herbrand
universe of Definition 7 rather than in a free term algebra.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional

from .errors import SortError
from .sorts import sorts_compatible
from .terms import App, Const, SetExpr, SetValue, Term, Var, canonicalize


class Subst(Mapping[Var, Term]):
    """An immutable substitution ``{x1/t1, ..., xn/tn}``.

    Bindings are sort-checked at construction: a sort-``a`` variable can only
    be bound to a sort-``a`` term, a sort-``s`` variable to a sort-``s``
    term, and an ELPS ``u`` variable to anything.
    """

    __slots__ = ("_map",)

    def __init__(self, bindings: Optional[Mapping[Var, Term]] = None) -> None:
        mapping: dict[Var, Term] = {}
        if bindings:
            for v, t in bindings.items():
                if not isinstance(v, Var):
                    raise SortError(f"substitution key {v!r} is not a variable")
                if not sorts_compatible(v.sort, t.sort):
                    raise SortError(
                        f"cannot bind {v} (sort {v.sort}) to {t} (sort {t.sort})"
                    )
                mapping[v] = canonicalize(t)
        self._map = mapping

    # -- Mapping interface ---------------------------------------------------
    def __getitem__(self, key: Var) -> Term:
        return self._map[key]

    def __iter__(self) -> Iterator[Var]:
        return iter(self._map)

    def __len__(self) -> int:
        return len(self._map)

    def __repr__(self) -> str:
        inner = ", ".join(f"{v}/{t}" for v, t in sorted(
            self._map.items(), key=lambda kv: kv[0].name))
        return "{" + inner + "}"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Subst):
            return self._map == other._map
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._map.items()))

    # -- Core operations -----------------------------------------------------
    def apply(self, term: Term) -> Term:
        """Apply the substitution to a term, canonicalizing ground sets."""
        return canonicalize(self._apply(term))

    def _apply(self, term: Term) -> Term:
        if isinstance(term, Var):
            # Follow variable chains (x → y → t) so that substitutions built
            # incrementally by unification resolve fully; the occurs check in
            # unification keeps the chains acyclic, and the seen-guard makes
            # misuse fail cleanly rather than loop.
            seen = None
            while isinstance(term, Var) and term in self._map:
                if seen is None:
                    seen = {term}
                elif term in seen:
                    return term  # defensive: cyclic binding
                else:
                    seen.add(term)
                term = self._map[term]
            if isinstance(term, Var):
                return term
            return self._apply(term)
        if isinstance(term, (Const, SetValue)):
            return term
        if isinstance(term, App):
            return App(term.fname, tuple(self._apply(a) for a in term.args))
        if isinstance(term, SetExpr):
            return SetExpr(tuple(self._apply(e) for e in term.elems))
        raise TypeError(f"not a term: {term!r}")

    def bind(self, var: Var, term: Term) -> "Subst":
        """Return a new substitution with one extra binding."""
        new = dict(self._map)
        new[var] = term
        return Subst(new)

    def extend(self, bindings: Mapping[Var, Term]) -> "Subst":
        """Return a new substitution with the extra ``bindings`` added."""
        new = dict(self._map)
        new.update(bindings)
        return Subst(new)

    def compose(self, other: "Subst") -> "Subst":
        """Composition ``self ; other``: apply ``self`` first, then ``other``.

        ``(self.compose(other)).apply(t) == other.apply(self.apply(t))``.
        """
        new: dict[Var, Term] = {v: other.apply(t) for v, t in self._map.items()}
        for v, t in other._map.items():
            if v not in new:
                new[v] = t
        return Subst(new)

    def restrict(self, variables: Iterable[Var]) -> "Subst":
        """Restrict the domain to the given variables."""
        keep = set(variables)
        return Subst({v: t for v, t in self._map.items() if v in keep})

    def is_ground_for(self, variables: Iterable[Var]) -> bool:
        """Whether every listed variable is bound to a ground term."""
        return all(v in self._map and self._map[v].is_ground() for v in variables)


#: The empty substitution.
EMPTY_SUBST = Subst()
