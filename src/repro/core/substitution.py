"""Substitutions over two-sorted terms.

A substitution maps variables to terms of a compatible sort.  Applying a
substitution canonicalizes on the fly, so ground set constructors collapse to
canonical :class:`~repro.core.terms.SetValue` objects — this is what makes a
"ground instance" of a clause (Definition in Section 3) live in the Herbrand
universe of Definition 7 rather than in a free term algebra.

Performance architecture (see DESIGN.md).  ``Subst`` objects are created at
an enormous rate by unification, matching and the solver, and the public
constructor's full validation (variable check, sort check, canonicalize) is
wasted work when the bindings provably satisfy the invariants already.  The
engine therefore uses two internal constructors:

* :meth:`Subst._make` — adopt a dict of already-validated, already-canonical
  bindings without any checking (the caller owns the dict);
* :meth:`Subst._checked` — like ``_make`` but re-checks sort compatibility
  (used when binding quantified variables to set elements, where ELPS
  nesting could smuggle a set into a sort-``a`` variable).

``bind`` validates only the *new* binding, and ``apply`` short-circuits
ground terms, whose canonical form is cached on the term nodes themselves.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional

from .errors import SortError
from .sorts import sorts_compatible
from .terms import App, Const, SetExpr, SetValue, Term, Var, canonicalize


class Subst(Mapping[Var, Term]):
    """An immutable substitution ``{x1/t1, ..., xn/tn}``.

    Bindings are sort-checked at construction: a sort-``a`` variable can only
    be bound to a sort-``a`` term, a sort-``s`` variable to a sort-``s``
    term, and an ELPS ``u`` variable to anything.
    """

    __slots__ = ("_map", "_hash")

    def __init__(self, bindings: Optional[Mapping[Var, Term]] = None) -> None:
        mapping: dict[Var, Term] = {}
        if bindings:
            for v, t in bindings.items():
                if not isinstance(v, Var):
                    raise SortError(f"substitution key {v!r} is not a variable")
                if not sorts_compatible(v.sort, t.sort):
                    raise SortError(
                        f"cannot bind {v} (sort {v.sort}) to {t} (sort {t.sort})"
                    )
                mapping[v] = canonicalize(t)
        self._map = mapping
        self._hash = -1

    # -- internal fast constructors ------------------------------------------
    @classmethod
    def _make(cls, mapping: dict[Var, Term]) -> "Subst":
        """Adopt ``mapping`` without validation.

        The caller guarantees keys are :class:`Var`, values are canonical
        terms of compatible sort, and the dict is not aliased elsewhere.
        """
        self = object.__new__(cls)
        self._map = mapping
        self._hash = -1
        return self

    @classmethod
    def _checked(cls, mapping: dict[Var, Term]) -> "Subst":
        """Adopt canonical values but still verify sort compatibility."""
        for v, t in mapping.items():
            if not sorts_compatible(v.var_sort, t.sort):
                raise SortError(
                    f"cannot bind {v} (sort {v.sort}) to {t} (sort {t.sort})"
                )
        return cls._make(mapping)

    # -- Mapping interface ---------------------------------------------------
    def __getitem__(self, key: Var) -> Term:
        return self._map[key]

    def __iter__(self) -> Iterator[Var]:
        return iter(self._map)

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, key: object) -> bool:
        return key in self._map

    def __repr__(self) -> str:
        inner = ", ".join(f"{v}/{t}" for v, t in sorted(
            self._map.items(), key=lambda kv: kv[0].name))
        return "{" + inner + "}"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Subst):
            return self._map == other._map
        return NotImplemented

    def __hash__(self) -> int:
        h = self._hash
        if h == -1:
            h = hash(frozenset(self._map.items()))
            if h == -1:  # pragma: no cover - hash() never returns -1
                h = -2
            self._hash = h
        return h

    # -- Core operations -----------------------------------------------------
    def apply(self, term: Term) -> Term:
        """Apply the substitution to a term, canonicalizing ground sets."""
        # Fast paths: canonical ground nodes pass through untouched, and
        # ground subtrees skip the rebuild entirely (their canonical form is
        # memoized on the node).
        cls = term.__class__
        if cls is Const or cls is SetValue:
            return term
        if cls is Var:
            return self._resolve(term)
        if not self._map or term.is_ground():
            return canonicalize(term)
        return canonicalize(self._apply(term))

    def _resolve(self, term: Term) -> Term:
        # Follow variable chains (x → y → t) so that substitutions built
        # incrementally by unification resolve fully; the occurs check in
        # unification keeps the chains acyclic, and the seen-guard makes
        # misuse fail cleanly rather than loop.  The single-hop case — by
        # far the most common — allocates nothing.
        m = self._map
        nxt = m.get(term)
        if nxt is None:
            return term
        cls = nxt.__class__
        if cls is Const or cls is SetValue:
            return nxt
        if cls is not Var:
            return self.apply(nxt)
        seen = {term}
        term = nxt
        while isinstance(term, Var):
            nxt = m.get(term)
            if nxt is None:
                return term
            if term in seen:
                return term  # defensive: cyclic binding
            seen.add(term)
            term = nxt
        return self.apply(term)

    def _apply(self, term: Term) -> Term:
        cls = term.__class__
        if cls is Var:
            return self._resolve(term)
        if cls is Const or cls is SetValue:
            return term
        if term.is_ground():
            return term
        if cls is App:
            return App(term.fname, tuple(self._apply(a) for a in term.args))
        if cls is SetExpr:
            return SetExpr(tuple(self._apply(e) for e in term.elems))
        raise TypeError(f"not a term: {term!r}")

    def bind(self, var: Var, term: Term) -> "Subst":
        """Return a new substitution with one extra binding."""
        if not sorts_compatible(var.var_sort, term.sort):
            raise SortError(
                f"cannot bind {var} (sort {var.sort}) to {term} "
                f"(sort {term.sort})"
            )
        new = dict(self._map)
        new[var] = canonicalize(term)
        return Subst._make(new)

    def extend(self, bindings: Mapping[Var, Term]) -> "Subst":
        """Return a new substitution with the extra ``bindings`` added."""
        new = dict(self._map)
        for v, t in bindings.items():
            if not sorts_compatible(v.var_sort, t.sort):
                raise SortError(
                    f"cannot bind {v} (sort {v.sort}) to {t} (sort {t.sort})"
                )
            new[v] = canonicalize(t)
        return Subst._make(new)

    def compose(self, other: "Subst") -> "Subst":
        """Composition ``self ; other``: apply ``self`` first, then ``other``.

        ``(self.compose(other)).apply(t) == other.apply(self.apply(t))``.
        """
        new: dict[Var, Term] = {v: other.apply(t) for v, t in self._map.items()}
        for v, t in other._map.items():
            if v not in new:
                new[v] = t
        # Not a hot path — keep the validating constructor: applying `other`
        # can change a binding's sort through u-sorted variable chains, and
        # that must keep raising SortError at the violation point.
        return Subst(new)

    def restrict(self, variables: Iterable[Var]) -> "Subst":
        """Restrict the domain to the given variables."""
        keep = variables if isinstance(variables, (set, frozenset)) else set(variables)
        return Subst._make({v: t for v, t in self._map.items() if v in keep})

    def is_ground_for(self, variables: Iterable[Var]) -> bool:
        """Whether every listed variable is bound to a ground term."""
        m = self._map
        return all(v in m and m[v].is_ground() for v in variables)


#: The empty substitution.
EMPTY_SUBST = Subst()
