"""Terms of the LPS/ELPS languages (Definitions 1, 2 and 7 of the paper).

The term language has:

* **constants** ``c`` of sort ``a`` (we allow Python ``str`` and ``int``
  payloads; integers make the paper's arithmetic examples runnable),
* **variables** of sort ``a`` (written ``x, y, z`` in the paper), sort ``s``
  (written ``X, Y, Z``) or the ELPS pseudo-sort ``u``,
* **function applications** ``f(t1, ..., tn)`` of uninterpreted function
  symbols — always of sort ``a`` (Definition 1(2); see Example 8 for why), and
* **set constructors** ``{t1, ..., tn}`` — the paper's special symbols
  ``{_n`` — of sort ``s``.

A crucial point of the paper's Herbrand semantics (Definition 7) is that a
*ground* set constructor is interpreted as the **finite set of its element
terms**, not as a syntactic tree: ``{a, b}``, ``{b, a}`` and ``{a, b, a}``
all denote the same object.  We mirror this with two node types:

* :class:`SetExpr` — the syntactic constructor, possibly containing
  variables, with element order and duplicates preserved;
* :class:`SetValue` — the canonical ground value wrapping a ``frozenset``.

:func:`canonicalize` maps every ground term to its value form; substitution
canonicalizes automatically, so fully instantiated terms always compare by
set identity, as Lemma 1 requires.

In ELPS (Section 5) elements of a :class:`SetValue` may themselves be
:class:`SetValue` objects, giving arbitrarily nested finite sets;
:func:`nesting_depth` measures the nesting and LPS mode rejects depth > 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Union

from .errors import SortError
from .sorts import SORT_A, SORT_S, SORT_U, check_sort


class Term:
    """Abstract base class for all term nodes."""

    __slots__ = ()

    @property
    def sort(self) -> str:
        raise NotImplementedError

    def is_ground(self) -> bool:
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class Var(Term):
    """A variable, tagged with its sort.

    Following the paper's convention, lower-case names are customary for sort
    ``a`` and upper-case for sort ``s``, but the sort tag — not the spelling —
    is authoritative.
    """

    name: str
    var_sort: str = SORT_A

    def __post_init__(self) -> None:
        check_sort(self.var_sort)

    @property
    def sort(self) -> str:
        return self.var_sort

    def is_ground(self) -> bool:
        return False

    def __repr__(self) -> str:
        return f"Var({self.name!r}, {self.var_sort!r})"

    def __str__(self) -> str:
        return self.name


ConstPayload = Union[str, int]


@dataclass(frozen=True, slots=True)
class Const(Term):
    """A constant of sort ``a``.

    The payload may be a string (symbolic constant) or an int (numeric
    constant, used by the arithmetic built-ins of Examples 5 and 6).
    """

    value: ConstPayload

    @property
    def sort(self) -> str:
        return SORT_A

    def is_ground(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"Const({self.value!r})"

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, slots=True)
class App(Term):
    """Application ``f(t1, ..., tn)`` of an uninterpreted function symbol.

    Every argument must be of sort ``a`` and the result is of sort ``a``
    (Definition 2(3)).  Ground ``App`` terms are Herbrand-universe elements:
    the interpretation of ``f`` is concatenation of the symbol to its
    arguments (Definition 9(3)).
    """

    fname: str
    args: tuple[Term, ...]

    def __post_init__(self) -> None:
        for arg in self.args:
            if arg.sort == SORT_S:
                raise SortError(
                    f"function {self.fname!r} applied to a set-sorted argument "
                    f"{arg}; function symbols take sort-'a' arguments only"
                )

    @property
    def sort(self) -> str:
        return SORT_A

    def is_ground(self) -> bool:
        return all(arg.is_ground() for arg in self.args)

    def __repr__(self) -> str:
        return f"App({self.fname!r}, {self.args!r})"

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.fname}({inner})"


@dataclass(frozen=True, slots=True)
class SetExpr(Term):
    """The syntactic set constructor ``{t1, ..., tn}`` (the paper's ``{_n``).

    Elements may contain variables; order and multiplicity are preserved at
    the syntactic level and erased on canonicalization.  In LPS the elements
    must be of sort ``a``; ELPS relaxes this (nested constructors), which is
    why the constructor only rejects elements that are *provably* set-sorted
    when ``strict_lps`` terms are checked by the clause layer, not here.
    """

    elems: tuple[Term, ...]

    @property
    def sort(self) -> str:
        return SORT_S

    def is_ground(self) -> bool:
        return all(e.is_ground() for e in self.elems)

    def __repr__(self) -> str:
        return f"SetExpr({self.elems!r})"

    def __str__(self) -> str:
        inner = ", ".join(str(e) for e in self.elems)
        return "{" + inner + "}"


@dataclass(frozen=True, slots=True)
class SetValue(Term):
    """A canonical ground finite set — an element of ``U_s`` (Definition 7).

    Wraps a ``frozenset`` of ground values.  Two set values are equal exactly
    when they contain the same elements, which is what makes Lemma 1 hold in
    the implementation.
    """

    elems: frozenset = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        for e in self.elems:
            if not isinstance(e, Term) or not e.is_ground():
                raise SortError(f"SetValue element {e!r} is not a ground term")
            if isinstance(e, SetExpr):
                raise SortError(
                    "SetValue elements must be canonical; got a SetExpr "
                    f"{e!r} (canonicalize first)"
                )

    @property
    def sort(self) -> str:
        return SORT_S

    def is_ground(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self.elems)

    def __contains__(self, item: Term) -> bool:
        return item in self.elems

    def __iter__(self) -> Iterator[Term]:
        return iter(self.elems)

    def sorted_elems(self) -> list[Term]:
        """Elements in a deterministic order (for printing and iteration)."""
        return sorted(self.elems, key=order_key)

    def __repr__(self) -> str:
        return f"SetValue({{{', '.join(map(repr, self.sorted_elems()))}}})"

    def __str__(self) -> str:
        inner = ", ".join(str(e) for e in self.sorted_elems())
        return "{" + inner + "}"


#: The empty set value, the paper's ``∅`` / ``{_0``.
EMPTY_SET = SetValue(frozenset())


def mkset(*elems: Term) -> Term:
    """Build a set term from element terms, canonicalizing when ground."""
    return canonicalize(SetExpr(tuple(elems)))


def setvalue(elems: Iterable[Term]) -> SetValue:
    """Build a :class:`SetValue` from ground element terms."""
    return SetValue(frozenset(canonicalize(e) for e in elems))


def canonicalize(term: Term) -> Term:
    """Rewrite every *ground* :class:`SetExpr` inside ``term`` to a :class:`SetValue`.

    Non-ground subterms are left alone.  Idempotent.
    """
    if isinstance(term, (Var, Const, SetValue)):
        return term
    if isinstance(term, App):
        new_args = tuple(canonicalize(a) for a in term.args)
        return term if new_args == term.args else App(term.fname, new_args)
    if isinstance(term, SetExpr):
        new_elems = tuple(canonicalize(e) for e in term.elems)
        if all(e.is_ground() for e in new_elems):
            return SetValue(frozenset(new_elems))
        return SetExpr(new_elems)
    raise TypeError(f"not a term: {term!r}")


def free_vars(term: Term) -> set[Var]:
    """The set of variables occurring in ``term``."""
    out: set[Var] = set()
    _collect_vars(term, out)
    return out


def _collect_vars(term: Term, out: set[Var]) -> None:
    if isinstance(term, Var):
        out.add(term)
    elif isinstance(term, App):
        for a in term.args:
            _collect_vars(a, out)
    elif isinstance(term, SetExpr):
        for e in term.elems:
            _collect_vars(e, out)
    # Const and SetValue are ground.


def subterms(term: Term) -> Iterator[Term]:
    """Yield ``term`` and all of its subterms (set values yield elements)."""
    yield term
    if isinstance(term, App):
        for a in term.args:
            yield from subterms(a)
    elif isinstance(term, SetExpr):
        for e in term.elems:
            yield from subterms(e)
    elif isinstance(term, SetValue):
        for e in term.elems:
            yield from subterms(e)


def nesting_depth(term: Term) -> int:
    """Set-nesting depth of a term: atoms have depth 0, ``{a}`` depth 1, ``{{a}}`` 2.

    LPS permits depth ≤ 1; ELPS (Section 5) permits arbitrary finite depth.
    """
    if isinstance(term, (Const, Var)):
        return 1 if isinstance(term, Var) and term.sort == SORT_S else 0
    if isinstance(term, App):
        return max((nesting_depth(a) for a in term.args), default=0)
    if isinstance(term, (SetExpr, SetValue)):
        elems = term.elems
        return 1 + max((nesting_depth(e) for e in elems), default=0)
    raise TypeError(f"not a term: {term!r}")


def order_key(term: Term):
    """A total-order key over ground terms, used for deterministic printing.

    Orders by shape class first, then structurally.  Integer constants order
    numerically before string constants.
    """
    if isinstance(term, Const):
        if isinstance(term.value, int):
            return (0, 0, term.value)
        return (0, 1, term.value)
    if isinstance(term, App):
        return (1, term.fname, tuple(order_key(a) for a in term.args))
    if isinstance(term, SetValue):
        return (2, len(term.elems), tuple(sorted(order_key(e) for e in term.elems)))
    if isinstance(term, Var):
        return (3, term.var_sort, term.name)
    if isinstance(term, SetExpr):
        return (4, len(term.elems), tuple(order_key(e) for e in term.elems))
    raise TypeError(f"not a term: {term!r}")


# ---------------------------------------------------------------------------
# Convenience constructors used pervasively in tests and examples.
# ---------------------------------------------------------------------------

def var_a(name: str) -> Var:
    """An individual (sort ``a``) variable."""
    return Var(name, SORT_A)


def var_s(name: str) -> Var:
    """A set (sort ``s``) variable."""
    return Var(name, SORT_S)


def var_u(name: str) -> Var:
    """An untyped ELPS variable."""
    return Var(name, SORT_U)


def const(value: ConstPayload) -> Const:
    """A constant of sort ``a``."""
    return Const(value)


def app(fname: str, *args: Term) -> App:
    """A function application term."""
    return App(fname, tuple(args))
