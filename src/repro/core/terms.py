"""Terms of the LPS/ELPS languages (Definitions 1, 2 and 7 of the paper).

The term language has:

* **constants** ``c`` of sort ``a`` (we allow Python ``str`` and ``int``
  payloads; integers make the paper's arithmetic examples runnable),
* **variables** of sort ``a`` (written ``x, y, z`` in the paper), sort ``s``
  (written ``X, Y, Z``) or the ELPS pseudo-sort ``u``,
* **function applications** ``f(t1, ..., tn)`` of uninterpreted function
  symbols — always of sort ``a`` (Definition 1(2); see Example 8 for why), and
* **set constructors** ``{t1, ..., tn}`` — the paper's special symbols
  ``{_n`` — of sort ``s``.

A crucial point of the paper's Herbrand semantics (Definition 7) is that a
*ground* set constructor is interpreted as the **finite set of its element
terms**, not as a syntactic tree: ``{a, b}``, ``{b, a}`` and ``{a, b, a}``
all denote the same object.  We mirror this with two node types:

* :class:`SetExpr` — the syntactic constructor, possibly containing
  variables, with element order and duplicates preserved;
* :class:`SetValue` — the canonical ground value wrapping a ``frozenset``.

:func:`canonicalize` maps every ground term to its value form; substitution
canonicalizes automatically, so fully instantiated terms always compare by
set identity, as Lemma 1 requires.

In ELPS (Section 5) elements of a :class:`SetValue` may themselves be
:class:`SetValue` objects, giving arbitrarily nested finite sets;
:func:`nesting_depth` measures the nesting and LPS mode rejects depth > 1.

Performance architecture (see DESIGN.md).  Term nodes sit on every hot path
of the engine — set membership against interpretations, substitution
application, unification — so this module trades the convenience of frozen
dataclasses for hand-written classes with three properties:

* **Interning.**  :class:`Const`, :class:`Var` and :class:`SetValue` are
  hash-consed through weak-valued intern tables: constructing an equal term
  returns the *same* object, so ``==`` is usually pointer comparison and the
  per-object validation (sort checks, groundness of set elements) runs once
  per distinct term rather than once per construction.
* **Cached hashes.**  Every node computes its hash once (eagerly for the
  interned classes, lazily for :class:`App`/:class:`SetExpr`) and stores it
  in a slot; repeated set/dict lookups no longer re-hash whole subtrees.
* **Memoized derived facts.**  ``is_ground`` and :func:`canonicalize`
  results are cached per node, and :meth:`SetValue.sorted_elems` keeps its
  deterministic ordering, so quantifier unfolding does not re-sort the same
  range set on every solver step.
* **Dense term IDs.**  :data:`TERM_DICT` assigns every term that reaches a
  columnar batch a dense integer ID (see DESIGN.md, "Columnar execution").
  The dictionary is append-only and holds strong references, so an ID never
  changes or disappears for the lifetime of the process — which is what
  makes IDs stable across model snapshots, WAL-replay recovery and
  replication re-seeds, all of which re-intern the same terms in-process.
  IDs are *never* persisted: the WAL and checkpoints store terms
  textually, and every recovery re-encodes from scratch.

Terms remain immutable by contract: no code in the repository mutates a
constructed node, and the caches above depend on that.  (The ``_tid``
slot is a cache of the node's :data:`TERM_DICT` ID, not term state.)
"""

from __future__ import annotations

import weakref
from typing import Iterable, Iterator, Union

from .errors import SortError
from .sorts import SORT_A, SORT_S, SORT_U, check_sort


class Term:
    """Abstract base class for all term nodes."""

    __slots__ = ()

    @property
    def sort(self) -> str:
        raise NotImplementedError

    def is_ground(self) -> bool:
        raise NotImplementedError


#: Intern tables (weak-valued so long-running sessions do not leak renamed
#: variables or transient derived sets).
_VAR_INTERN: "weakref.WeakValueDictionary[tuple[str, str], Var]" = (
    weakref.WeakValueDictionary()
)
_CONST_INTERN: "weakref.WeakValueDictionary[tuple, Const]" = (
    weakref.WeakValueDictionary()
)
_SET_INTERN: "weakref.WeakValueDictionary[frozenset, SetValue]" = (
    weakref.WeakValueDictionary()
)


class Var(Term):
    """A variable, tagged with its sort.

    Following the paper's convention, lower-case names are customary for sort
    ``a`` and upper-case for sort ``s``, but the sort tag — not the spelling —
    is authoritative.
    """

    __slots__ = ("name", "var_sort", "_hash", "_tid", "__weakref__")

    def __new__(cls, name: str, var_sort: str = SORT_A) -> "Var":
        key = (name, var_sort)
        if cls is Var:
            self = _VAR_INTERN.get(key)
            if self is not None:
                return self
        check_sort(var_sort)
        self = super().__new__(cls)
        self.name = name
        self.var_sort = var_sort
        self._tid = -1
        self._hash = hash((Var, name, var_sort))
        if cls is Var:
            _VAR_INTERN[key] = self
        return self

    def __reduce__(self):
        # Rebuild through the interning constructor so no cached slot —
        # in particular the process-local ``_tid`` dense-ID slot — ever
        # crosses a pickle boundary: unpickling re-interns and the local
        # ``TERM_DICT`` re-derives its own id lazily.
        return (type(self), (self.name, self.var_sort))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not Var:
            return NotImplemented
        return self.name == other.name and self.var_sort == other.var_sort

    def __hash__(self) -> int:
        return self._hash

    @property
    def sort(self) -> str:
        return self.var_sort

    def is_ground(self) -> bool:
        return False

    def __repr__(self) -> str:
        return f"Var({self.name!r}, {self.var_sort!r})"

    def __str__(self) -> str:
        return self.name


ConstPayload = Union[str, int]


class Const(Term):
    """A constant of sort ``a``.

    The payload may be a string (symbolic constant) or an int (numeric
    constant, used by the arithmetic built-ins of Examples 5 and 6).
    """

    __slots__ = ("value", "_hash", "_tid", "__weakref__")

    def __new__(cls, value: ConstPayload) -> "Const":
        # Key by (type, value) so 1 and True stay distinct objects even
        # though they compare equal (mirroring the dataclass semantics).
        key = (value.__class__, value)
        if cls is Const:
            self = _CONST_INTERN.get(key)
            if self is not None:
                return self
        self = super().__new__(cls)
        self.value = value
        self._tid = -1
        self._hash = hash((Const, value))
        if cls is Const:
            _CONST_INTERN[key] = self
        return self

    def __reduce__(self):
        # See Var.__reduce__: re-intern on unpickle, never ship ``_tid``.
        return (type(self), (self.value,))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not Const:
            return NotImplemented
        return self.value == other.value

    def __hash__(self) -> int:
        return self._hash

    @property
    def sort(self) -> str:
        return SORT_A

    def is_ground(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"Const({self.value!r})"

    def __str__(self) -> str:
        return str(self.value)


class App(Term):
    """Application ``f(t1, ..., tn)`` of an uninterpreted function symbol.

    Every argument must be of sort ``a`` and the result is of sort ``a``
    (Definition 2(3)).  Ground ``App`` terms are Herbrand-universe elements:
    the interpretation of ``f`` is concatenation of the symbol to its
    arguments (Definition 9(3)).
    """

    __slots__ = ("fname", "args", "_hash", "_ground", "_canon", "_tid")

    def __init__(self, fname: str, args: tuple[Term, ...]) -> None:
        for arg in args:
            if arg.sort == SORT_S:
                raise SortError(
                    f"function {fname!r} applied to a set-sorted argument "
                    f"{arg}; function symbols take sort-'a' arguments only"
                )
        self.fname = fname
        self.args = args
        self._hash = -1
        self._ground = None
        self._canon = None
        self._tid = -1

    def __reduce__(self):
        # Rebuild through __init__: slot state (``_tid``, ``_hash``,
        # ``_canon``) is process-local and must be recomputed on unpickle.
        return (type(self), (self.fname, self.args))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not App:
            return NotImplemented
        if (
            self._hash != -1
            and other._hash != -1
            and self._hash != other._hash
        ):
            return False
        return self.fname == other.fname and self.args == other.args

    def __hash__(self) -> int:
        h = self._hash
        if h == -1:
            h = hash((App, self.fname, self.args))
            self._hash = h
        return h

    @property
    def sort(self) -> str:
        return SORT_A

    def is_ground(self) -> bool:
        g = self._ground
        if g is None:
            g = all(arg.is_ground() for arg in self.args)
            self._ground = g
        return g

    def __repr__(self) -> str:
        return f"App({self.fname!r}, {self.args!r})"

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.fname}({inner})"


class SetExpr(Term):
    """The syntactic set constructor ``{t1, ..., tn}`` (the paper's ``{_n``).

    Elements may contain variables; order and multiplicity are preserved at
    the syntactic level and erased on canonicalization.  In LPS the elements
    must be of sort ``a``; ELPS relaxes this (nested constructors), which is
    why the constructor only rejects elements that are *provably* set-sorted
    when ``strict_lps`` terms are checked by the clause layer, not here.
    """

    __slots__ = ("elems", "_hash", "_ground", "_canon", "_tid")

    def __init__(self, elems: tuple[Term, ...]) -> None:
        self.elems = elems
        self._hash = -1
        self._ground = None
        self._canon = None
        self._tid = -1

    def __reduce__(self):
        # See App.__reduce__: recompute caches on unpickle.
        return (type(self), (self.elems,))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not SetExpr:
            return NotImplemented
        return self.elems == other.elems

    def __hash__(self) -> int:
        h = self._hash
        if h == -1:
            h = hash((SetExpr, self.elems))
            self._hash = h
        return h

    @property
    def sort(self) -> str:
        return SORT_S

    def is_ground(self) -> bool:
        g = self._ground
        if g is None:
            g = all(e.is_ground() for e in self.elems)
            self._ground = g
        return g

    def __repr__(self) -> str:
        return f"SetExpr({self.elems!r})"

    def __str__(self) -> str:
        inner = ", ".join(str(e) for e in self.elems)
        return "{" + inner + "}"


class SetValue(Term):
    """A canonical ground finite set — an element of ``U_s`` (Definition 7).

    Wraps a ``frozenset`` of ground values.  Two set values are equal exactly
    when they contain the same elements, which is what makes Lemma 1 hold in
    the implementation.  Interned: equal sets are the same object.
    """

    __slots__ = ("elems", "_hash", "_sorted", "_tid", "__weakref__")

    def __new__(cls, elems: frozenset = frozenset()) -> "SetValue":
        if elems.__class__ is not frozenset:
            elems = frozenset(elems)
        if cls is SetValue:
            self = _SET_INTERN.get(elems)
            if self is not None:
                return self
        for e in elems:
            if not isinstance(e, Term) or not e.is_ground():
                raise SortError(f"SetValue element {e!r} is not a ground term")
            if isinstance(e, SetExpr):
                raise SortError(
                    "SetValue elements must be canonical; got a SetExpr "
                    f"{e!r} (canonicalize first)"
                )
        self = super().__new__(cls)
        self.elems = elems
        self._hash = hash((SetValue, elems))
        self._sorted = None
        self._tid = -1
        if cls is SetValue:
            _SET_INTERN[elems] = self
        return self

    def __reduce__(self):
        # See Var.__reduce__: re-intern on unpickle, never ship ``_tid``.
        return (type(self), (self.elems,))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not SetValue:
            return NotImplemented
        return self.elems == other.elems

    def __hash__(self) -> int:
        return self._hash

    @property
    def sort(self) -> str:
        return SORT_S

    def is_ground(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self.elems)

    def __contains__(self, item: Term) -> bool:
        return item in self.elems

    def __iter__(self) -> Iterator[Term]:
        return iter(self.elems)

    def sorted_elems(self) -> list[Term]:
        """Elements in a deterministic order (for printing and iteration).

        The list is computed once and cached; callers must not mutate it.
        """
        s = self._sorted
        if s is None:
            s = sorted(self.elems, key=order_key)
            self._sorted = s
        return s

    def __repr__(self) -> str:
        return f"SetValue({{{', '.join(map(repr, self.sorted_elems()))}}})"

    def __str__(self) -> str:
        inner = ", ".join(str(e) for e in self.sorted_elems())
        return "{" + inner + "}"


#: The empty set value, the paper's ``∅`` / ``{_0``.
EMPTY_SET = SetValue(frozenset())


def mkset(*elems: Term) -> Term:
    """Build a set term from element terms, canonicalizing when ground."""
    return canonicalize(SetExpr(tuple(elems)))


def setvalue(elems: Iterable[Term]) -> SetValue:
    """Build a :class:`SetValue` from ground element terms."""
    return SetValue(frozenset(canonicalize(e) for e in elems))


def canonicalize(term: Term) -> Term:
    """Rewrite every *ground* :class:`SetExpr` inside ``term`` to a :class:`SetValue`.

    Non-ground subterms are left alone.  Idempotent, and memoized per node.
    """
    if isinstance(term, (Var, Const, SetValue)):
        return term
    if isinstance(term, App):
        out = term._canon
        if out is None:
            new_args = tuple(canonicalize(a) for a in term.args)
            out = term if new_args == term.args else App(term.fname, new_args)
            term._canon = out
            out._canon = out
        return out
    if isinstance(term, SetExpr):
        out = term._canon
        if out is None:
            new_elems = tuple(canonicalize(e) for e in term.elems)
            if all(e.is_ground() for e in new_elems):
                out = SetValue(frozenset(new_elems))
            elif new_elems == term.elems:
                out = term
            else:
                out = SetExpr(new_elems)
            term._canon = out
            if out.__class__ is SetExpr:
                out._canon = out
        return out
    raise TypeError(f"not a term: {term!r}")


def free_vars(term: Term) -> set[Var]:
    """The set of variables occurring in ``term``."""
    out: set[Var] = set()
    _collect_vars(term, out)
    return out


def _collect_vars(term: Term, out: set[Var]) -> None:
    if isinstance(term, Var):
        out.add(term)
    elif isinstance(term, App):
        for a in term.args:
            _collect_vars(a, out)
    elif isinstance(term, SetExpr):
        for e in term.elems:
            _collect_vars(e, out)
    # Const and SetValue are ground.


def subterms(term: Term) -> Iterator[Term]:
    """Yield ``term`` and all of its subterms (set values yield elements)."""
    yield term
    if isinstance(term, App):
        for a in term.args:
            yield from subterms(a)
    elif isinstance(term, SetExpr):
        for e in term.elems:
            yield from subterms(e)
    elif isinstance(term, SetValue):
        for e in term.elems:
            yield from subterms(e)


def nesting_depth(term: Term) -> int:
    """Set-nesting depth of a term: atoms have depth 0, ``{a}`` depth 1, ``{{a}}`` 2.

    LPS permits depth ≤ 1; ELPS (Section 5) permits arbitrary finite depth.
    """
    if isinstance(term, (Const, Var)):
        return 1 if isinstance(term, Var) and term.sort == SORT_S else 0
    if isinstance(term, App):
        return max((nesting_depth(a) for a in term.args), default=0)
    if isinstance(term, (SetExpr, SetValue)):
        elems = term.elems
        return 1 + max((nesting_depth(e) for e in elems), default=0)
    raise TypeError(f"not a term: {term!r}")


def order_key(term: Term):
    """A total-order key over ground terms, used for deterministic printing.

    Orders by shape class first, then structurally.  Integer constants order
    numerically before string constants.
    """
    if isinstance(term, Const):
        if isinstance(term.value, int):
            return (0, 0, term.value)
        return (0, 1, term.value)
    if isinstance(term, App):
        return (1, term.fname, tuple(order_key(a) for a in term.args))
    if isinstance(term, SetValue):
        return (2, len(term.elems), tuple(sorted(order_key(e) for e in term.elems)))
    if isinstance(term, Var):
        return (3, term.var_sort, term.name)
    if isinstance(term, SetExpr):
        return (4, len(term.elems), tuple(order_key(e) for e in term.elems))
    raise TypeError(f"not a term: {term!r}")


# ---------------------------------------------------------------------------
# The term dictionary: dense integer IDs for columnar execution.
# ---------------------------------------------------------------------------

class TermDict:
    """Append-only dictionary assigning dense integer IDs to terms.

    The columnar executor (``repro.engine.columnar``) represents batches
    as ``array('q')`` columns of these IDs; two cells join/deduplicate
    equal exactly when their IDs are equal, because :meth:`id_of` keys on
    term equality.  Three properties the executor relies on:

    * **Dense and append-only** — the first distinct term seen gets ID 0,
      the next ID 1, and so on; an assigned ID is never reused or
      remapped, so IDs taken at different times (e.g. across model
      snapshots, or before and after a WAL replay) remain comparable.
    * **Strong references** — ``terms[i]`` pins the term, so the
      weak-valued intern tables above can never drop a term that has an
      ID; re-interning always returns the object whose ``_tid`` slot
      already caches its ID.
    * **Process-local** — IDs are never written to the WAL, checkpoints
      or the replication stream; recovery and re-seeding re-encode.

    One process-wide instance (:data:`TERM_DICT`) exists; hot loops bind
    ``ids``/``terms`` directly.
    """

    __slots__ = ("ids", "terms")

    def __init__(self) -> None:
        #: term -> ID (structural equality, so non-interned but equal
        #: ``App`` nodes share one ID).
        self.ids: dict[Term, int] = {}
        #: ID -> term, densely indexed (the decode side).
        self.terms: list[Term] = []

    def id_of(self, term: Term) -> int:
        """The term's dense ID, assigned on first sight."""
        i = term._tid
        if i >= 0:
            return i
        i = self.ids.get(term)
        if i is None:
            i = len(self.terms)
            self.ids[term] = i
            self.terms.append(term)
        term._tid = i
        return i

    def term_of(self, tid: int) -> Term:
        """The term behind a dense ID (inverse of :meth:`id_of`)."""
        return self.terms[tid]

    def __len__(self) -> int:
        return len(self.terms)


#: The process-wide term dictionary (see :class:`TermDict`).
TERM_DICT = TermDict()


def term_id(term: Term) -> int:
    """Module-level convenience for :meth:`TermDict.id_of`."""
    return TERM_DICT.id_of(term)


def term_of(tid: int) -> Term:
    """Module-level convenience for :meth:`TermDict.term_of`."""
    return TERM_DICT.terms[tid]


# ---------------------------------------------------------------------------
# Convenience constructors used pervasively in tests and examples.
# ---------------------------------------------------------------------------

def var_a(name: str) -> Var:
    """An individual (sort ``a``) variable."""
    return Var(name, SORT_A)


def var_s(name: str) -> Var:
    """A set (sort ``s``) variable."""
    return Var(name, SORT_S)


def var_u(name: str) -> Var:
    """An untyped ELPS variable."""
    return Var(name, SORT_U)


def const(value: ConstPayload) -> Const:
    """A constant of sort ``a``."""
    return Const(value)


def app(fname: str, *args: Term) -> App:
    """A function application term."""
    return App(fname, tuple(args))
