"""Atomic formulas and literals.

An :class:`Atom` is ``p(t1, ..., tn)`` for a predicate symbol ``p``; the
built-in predicates are equality (``=``) and membership (``in``), which
Definition 5 forbids in clause heads.  A :class:`Literal` is an atom with a
polarity; negative literals belong to the stratified-negation extension of
Sections 4.2 and 6.2, not to core LPS.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import SortError
from .sorts import EQUALS, MEMBER, SORT_A, SORT_S, is_special_predicate, sorts_compatible
from .substitution import Subst
from .terms import Term, Var, _collect_vars, order_key


class Atom:
    """An atomic formula ``p(t1, ..., tn)``.

    Atoms are the unit of storage in interpretations and the unit of work in
    matching, so (like the term nodes — see DESIGN.md) they cache their hash,
    groundness and free variables in slots.  Immutable by contract.
    """

    __slots__ = ("pred", "args", "_hash", "_ground", "_fv")

    def __init__(self, pred: str, args: tuple[Term, ...]) -> None:
        self.pred = pred
        self.args = args
        self._hash = -1
        self._ground = None
        self._fv = None

    def __reduce__(self):
        # Rebuild through __init__ so cached slots (``_hash``, ``_ground``,
        # ``_fv``) — and the args' process-local ``_tid`` id slots — are
        # recomputed on unpickle instead of restored from foreign state.
        return (type(self), (self.pred, self.args))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not Atom:
            return NotImplemented
        if (
            self._hash != -1
            and other._hash != -1
            and self._hash != other._hash
        ):
            return False
        return self.pred == other.pred and self.args == other.args

    def __hash__(self) -> int:
        h = self._hash
        if h == -1:
            h = hash((Atom, self.pred, self.args))
            self._hash = h
        return h

    def __repr__(self) -> str:
        return f"Atom(pred={self.pred!r}, args={self.args!r})"

    @property
    def arity(self) -> int:
        return len(self.args)

    def is_special(self) -> bool:
        """Whether the predicate is built-in (``=`` or ``in``)."""
        return is_special_predicate(self.pred)

    def is_ground(self) -> bool:
        g = self._ground
        if g is None:
            g = all(a.is_ground() for a in self.args)
            self._ground = g
        return g

    def free_vars(self) -> frozenset[Var]:
        fv = self._fv
        if fv is None:
            out: set[Var] = set()
            for a in self.args:
                _collect_vars(a, out)
            fv = frozenset(out)
            self._fv = fv
        return fv

    def substitute(self, theta: Subst) -> "Atom":
        apply = theta.apply
        out = []
        changed = False
        for a in self.args:
            b = apply(a)
            if b is not a:
                changed = True
            out.append(b)
        if not changed:
            # Unchanged atoms keep their identity — and with it their cached
            # hash, groundness and free variables.
            return self
        return Atom(self.pred, tuple(out))

    def __str__(self) -> str:
        if self.pred == EQUALS and len(self.args) == 2:
            return f"{self.args[0]} = {self.args[1]}"
        if self.pred == MEMBER and len(self.args) == 2:
            return f"{self.args[0]} in {self.args[1]}"
        if not self.args:
            return self.pred
        return f"{self.pred}({', '.join(str(a) for a in self.args)})"


def atom(pred: str, *args: Term) -> Atom:
    """Convenience constructor for an atom."""
    return Atom(pred, tuple(args))


def atom_order_key(a: Atom):
    """A total-order key over ground atoms (predicate, then argument order).

    Deterministic without stringifying, unlike ``key=str`` — use this for
    stable fact orderings in query results and pretty-printing.
    """
    return (a.pred, len(a.args), tuple(order_key(t) for t in a.args))


def equals(left: Term, right: Term) -> Atom:
    """The built-in equality atom; the ``=a`` / ``=s`` distinction of the
    paper is recovered from the argument sorts."""
    if not sorts_compatible(left.sort, right.sort):
        raise SortError(
            f"ill-sorted equality {left} = {right} "
            f"({left.sort} vs {right.sort})"
        )
    return Atom(EQUALS, (left, right))


def member(elem: Term, container: Term) -> Atom:
    """The built-in membership atom ``elem in container``."""
    if elem.sort == SORT_S:
        raise SortError(f"membership left operand {elem} has sort 's'; LPS "
                        "membership relates atoms to sets")
    if container.sort == SORT_A:
        raise SortError(f"membership right operand {container} has sort 'a'")
    return Atom(MEMBER, (elem, container))


@dataclass(frozen=True, slots=True)
class Literal:
    """An atom with a polarity.  ``Literal(a, False)`` is ``not a``."""

    atom: Atom
    positive: bool = True

    def is_ground(self) -> bool:
        return self.atom.is_ground()

    def free_vars(self) -> set[Var]:
        return self.atom.free_vars()

    def substitute(self, theta: Subst) -> "Literal":
        return Literal(self.atom.substitute(theta), self.positive)

    def negate(self) -> "Literal":
        return Literal(self.atom, not self.positive)

    def __str__(self) -> str:
        return str(self.atom) if self.positive else f"not {self.atom}"


def pos(a: Atom) -> Literal:
    """A positive literal."""
    return Literal(a, True)


def neg(a: Atom) -> Literal:
    """A negative literal (stratified-negation extension)."""
    return Literal(a, False)
