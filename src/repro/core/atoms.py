"""Atomic formulas and literals.

An :class:`Atom` is ``p(t1, ..., tn)`` for a predicate symbol ``p``; the
built-in predicates are equality (``=``) and membership (``in``), which
Definition 5 forbids in clause heads.  A :class:`Literal` is an atom with a
polarity; negative literals belong to the stratified-negation extension of
Sections 4.2 and 6.2, not to core LPS.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import SortError
from .sorts import EQUALS, MEMBER, SORT_A, SORT_S, is_special_predicate, sorts_compatible
from .substitution import Subst
from .terms import Term, Var, free_vars as term_free_vars


@dataclass(frozen=True, slots=True)
class Atom:
    """An atomic formula ``p(t1, ..., tn)``."""

    pred: str
    args: tuple[Term, ...]

    @property
    def arity(self) -> int:
        return len(self.args)

    def is_special(self) -> bool:
        """Whether the predicate is built-in (``=`` or ``in``)."""
        return is_special_predicate(self.pred)

    def is_ground(self) -> bool:
        return all(a.is_ground() for a in self.args)

    def free_vars(self) -> set[Var]:
        out: set[Var] = set()
        for a in self.args:
            out |= term_free_vars(a)
        return out

    def substitute(self, theta: Subst) -> "Atom":
        return Atom(self.pred, tuple(theta.apply(a) for a in self.args))

    def __str__(self) -> str:
        if self.pred == EQUALS and len(self.args) == 2:
            return f"{self.args[0]} = {self.args[1]}"
        if self.pred == MEMBER and len(self.args) == 2:
            return f"{self.args[0]} in {self.args[1]}"
        if not self.args:
            return self.pred
        return f"{self.pred}({', '.join(str(a) for a in self.args)})"


def atom(pred: str, *args: Term) -> Atom:
    """Convenience constructor for an atom."""
    return Atom(pred, tuple(args))


def equals(left: Term, right: Term) -> Atom:
    """The built-in equality atom; the ``=a`` / ``=s`` distinction of the
    paper is recovered from the argument sorts."""
    if not sorts_compatible(left.sort, right.sort):
        raise SortError(
            f"ill-sorted equality {left} = {right} "
            f"({left.sort} vs {right.sort})"
        )
    return Atom(EQUALS, (left, right))


def member(elem: Term, container: Term) -> Atom:
    """The built-in membership atom ``elem in container``."""
    if elem.sort == SORT_S:
        raise SortError(f"membership left operand {elem} has sort 's'; LPS "
                        "membership relates atoms to sets")
    if container.sort == SORT_A:
        raise SortError(f"membership right operand {container} has sort 'a'")
    return Atom(MEMBER, (elem, container))


@dataclass(frozen=True, slots=True)
class Literal:
    """An atom with a polarity.  ``Literal(a, False)`` is ``not a``."""

    atom: Atom
    positive: bool = True

    def is_ground(self) -> bool:
        return self.atom.is_ground()

    def free_vars(self) -> set[Var]:
        return self.atom.free_vars()

    def substitute(self, theta: Subst) -> "Literal":
        return Literal(self.atom.substitute(theta), self.positive)

    def negate(self) -> "Literal":
        return Literal(self.atom, not self.positive)

    def __str__(self) -> str:
        return str(self.atom) if self.positive else f"not {self.atom}"


def pos(a: Atom) -> Literal:
    """A positive literal."""
    return Literal(a, True)


def neg(a: Atom) -> Literal:
    """A negative literal (stratified-negation extension)."""
    return Literal(a, False)
