"""Exception hierarchy for the LPS reproduction.

Every error raised by the library derives from :class:`LPSError`, so callers
can catch one type.  Subclasses mark the subsystem at fault: sort discipline
(:class:`SortError`), malformed clauses (:class:`ClauseError`), unsafe rules
the bottom-up engine refuses to run (:class:`SafetyError`), stratification
failures (:class:`StratificationError`), surface-syntax problems
(:class:`ParseError`) and engine resource limits (:class:`EvaluationError`).
"""

from __future__ import annotations


class LPSError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SortError(LPSError):
    """A term or declaration violates the two-sorted discipline.

    Raised, for instance, when a user function symbol is declared with range
    sort ``s`` — the situation Example 8 of the paper shows would break the
    Herbrand-model property.
    """


class ClauseError(LPSError):
    """A clause is syntactically malformed as an LPS/ELPS/LDL clause.

    Examples: a special predicate (``=`` or ``in``) in the head
    (Definition 5 requires the head to be non-special), a restricted
    quantifier whose bound variable is not of sort ``a``, or a grouping
    clause with more than one grouped variable.
    """


class SafetyError(LPSError):
    """A rule cannot be evaluated finitely under the configured policy."""


class StratificationError(LPSError):
    """The program has no stratification (negation/grouping in a cycle)."""


class ParseError(LPSError):
    """Surface-syntax error, with position information.

    Attributes
    ----------
    line, column:
        1-based position of the offending token in the source text.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)
        self.line = line
        self.column = column


class EvaluationError(LPSError):
    """The engine hit a resource bound (domain blow-up, depth limit, ...)."""


class UnificationError(LPSError):
    """Internal signal: two terms do not unify.

    The public unification API returns ``None``/empty iterators instead of
    raising; this class is used by helpers that prefer exceptions.
    """
