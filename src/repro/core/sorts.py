"""The two-sorted type discipline of LPS (Definition 1).

LPS is based on a logic with two sorts:

* ``a`` — atomic (individual) objects,
* ``s`` — finite sets of atomic objects.

ELPS (Section 5 of the paper) drops the stratified typing and works in an
untyped universe of atoms and arbitrarily nested finite sets; we model that
with a third pseudo-sort ``u`` ("untyped") used for ELPS variables, plus a
nesting-depth notion on ground values.

This module centralises sort names, predicate/function signatures and the
checks that keep models Herbrand-friendly:

* non-special function symbols must have range sort ``a`` (the paper's
  Example 8 shows the semantics breaks otherwise), and
* the special predicates ``=a``, ``=s`` and ``∈`` have fixed signatures.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import SortError

#: Sort of atomic (individual) objects.
SORT_A = "a"
#: Sort of sets of atomic objects (one nesting level in LPS).
SORT_S = "s"
#: Pseudo-sort for ELPS's untyped variables (atoms or arbitrarily nested sets).
SORT_U = "u"

ALL_SORTS = (SORT_A, SORT_S, SORT_U)

#: Name of the built-in membership predicate.
MEMBER = "in"
#: Name used for both equality predicates; the sort decoration (``=a`` vs
#: ``=s`` in the paper) is recovered from the argument sorts.
EQUALS = "="

SPECIAL_PREDICATES = frozenset({MEMBER, EQUALS})


def is_special_predicate(name: str) -> bool:
    """Return ``True`` for the built-in ``=`` and ``in`` predicates."""
    return name in SPECIAL_PREDICATES


def check_sort(sort: str) -> str:
    """Validate a sort name, returning it; raise :class:`SortError` if bad."""
    if sort not in ALL_SORTS:
        raise SortError(f"unknown sort {sort!r}; expected one of {ALL_SORTS}")
    return sort


def sorts_compatible(expected: str, actual: str) -> bool:
    """Whether a value of sort ``actual`` may appear where ``expected`` is required.

    The untyped pseudo-sort ``u`` is compatible with everything (ELPS mode);
    otherwise sorts must match exactly.
    """
    return expected == SORT_U or actual == SORT_U or expected == actual


@dataclass(frozen=True)
class PredicateSignature:
    """Signature ``p^{alpha}`` of a predicate (Definition 1, item 1).

    ``arg_sorts`` is the string of sorts the paper writes as a superscript,
    e.g. ``("a", "s")`` for the unnest example's ``R(x, Y)``.
    """

    name: str
    arg_sorts: tuple[str, ...]

    def __post_init__(self) -> None:
        for sort in self.arg_sorts:
            check_sort(sort)

    @property
    def arity(self) -> int:
        return len(self.arg_sorts)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}^{''.join(self.arg_sorts)}"


@dataclass(frozen=True)
class FunctionSignature:
    """Signature of a non-special function symbol ``f : a^n -> a``.

    Definition 1 (item 2) restricts every user function symbol to map atoms
    to atoms; the set constructors ``{n : a^n -> s`` are built in and are the
    only symbols producing sets.  Attempting to declare any other range sort
    raises :class:`SortError` — this is the Example 8 guard.
    """

    name: str
    arity: int
    range_sort: str = SORT_A

    def __post_init__(self) -> None:
        check_sort(self.range_sort)
        if self.range_sort != SORT_A:
            raise SortError(
                f"function symbol {self.name!r} declared with range sort "
                f"{self.range_sort!r}: non-special function symbols must map "
                "into sort 'a' (paper, Definition 1 / Example 8)"
            )
        if self.arity < 0:
            raise SortError(f"function {self.name!r} has negative arity")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}/{self.arity}"


def equality_signature(sort: str) -> PredicateSignature:
    """Signature of ``=a`` or ``=s`` depending on ``sort``."""
    check_sort(sort)
    return PredicateSignature(EQUALS, (sort, sort))


def membership_signature() -> PredicateSignature:
    """Signature of the built-in membership predicate ``∈ : a × s``."""
    return PredicateSignature(MEMBER, (SORT_A, SORT_S))
