"""LPS programs (Definition 6) and program-level analyses.

A :class:`Program` is a finite set of clauses — LPS clauses plus, in the LDL
comparison of Section 6, grouping clauses.  The class provides:

* validation of the sort discipline per language *mode* (``"lps"`` enforces
  one level of set nesting, ``"elps"`` allows arbitrary nesting — Section 5),
* predicate inventory, EDB/IDB split,
* the predicate dependency graph with polarity (negative edges from negated
  literals and from grouping, used by stratification), and
* structural helpers (renaming, union) used by the Section 4/6 program
  transformations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Optional, Union

from .atoms import Atom, Literal
from .clauses import GroupingClause, LPSClause
from .errors import ClauseError, SortError
from .sorts import SORT_S, SORT_U, is_special_predicate
from .terms import (
    App,
    Const,
    SetExpr,
    SetValue,
    Term,
    Var,
    nesting_depth,
    subterms,
)

AnyClause = Union[LPSClause, GroupingClause]

#: Language modes.
MODE_LPS = "lps"
MODE_ELPS = "elps"


@dataclass(frozen=True)
class Program:
    """A finite set of clauses with a language mode.

    ``clauses`` preserves source order (useful for printing); semantics does
    not depend on the order.
    """

    clauses: tuple[AnyClause, ...] = ()
    mode: str = MODE_LPS

    def __post_init__(self) -> None:
        if self.mode not in (MODE_LPS, MODE_ELPS):
            raise ClauseError(f"unknown language mode {self.mode!r}")

    # -- construction ----------------------------------------------------------

    @staticmethod
    def of(*clauses: AnyClause, mode: str = MODE_LPS) -> "Program":
        return Program(tuple(clauses), mode=mode)

    def __add__(self, other: "Program") -> "Program":
        mode = MODE_ELPS if MODE_ELPS in (self.mode, other.mode) else MODE_LPS
        return Program(self.clauses + other.clauses, mode=mode)

    def with_clauses(self, extra: Iterable[AnyClause]) -> "Program":
        return Program(self.clauses + tuple(extra), mode=self.mode)

    def __len__(self) -> int:
        return len(self.clauses)

    def __iter__(self) -> Iterator[AnyClause]:
        return iter(self.clauses)

    # -- inventory ---------------------------------------------------------------

    def lps_clauses(self) -> Iterator[LPSClause]:
        for c in self.clauses:
            if isinstance(c, LPSClause):
                yield c

    def grouping_clauses(self) -> Iterator[GroupingClause]:
        for c in self.clauses:
            if isinstance(c, GroupingClause):
                yield c

    def head_pred(self, c: AnyClause) -> str:
        return c.head.pred if isinstance(c, LPSClause) else c.pred

    def predicates(self) -> dict[str, int]:
        """All non-special predicates with their arities."""
        out: dict[str, int] = {}

        def note(pred: str, arity: int) -> None:
            if is_special_predicate(pred):
                return
            prev = out.setdefault(pred, arity)
            if prev != arity:
                raise ClauseError(
                    f"predicate {pred!r} used with arities {prev} and {arity}"
                )

        for c in self.clauses:
            if isinstance(c, LPSClause):
                note(c.head.pred, c.head.arity)
                for a in c.body_atoms():
                    note(a.pred, a.arity)
            else:
                note(c.pred, len(c.head_args) + 1)
                for lit in c.body:
                    note(lit.atom.pred, lit.atom.arity)
        return out

    def idb_predicates(self) -> set[str]:
        """Predicates defined by at least one non-fact clause head."""
        out: set[str] = set()
        for c in self.clauses:
            if isinstance(c, GroupingClause) or not c.is_fact:
                out.add(self.head_pred(c))
        return out

    def head_predicates(self) -> set[str]:
        return {self.head_pred(c) for c in self.clauses}

    def facts(self) -> Iterator[Atom]:
        for c in self.lps_clauses():
            if c.is_fact:
                yield c.head

    def rules(self) -> Iterator[AnyClause]:
        for c in self.clauses:
            if isinstance(c, GroupingClause) or not c.is_fact:
                yield c

    def constants(self) -> set[Term]:
        """All ground sort-a terms (constants, ground function terms) occurring
        anywhere in the program, plus elements of ground sets."""
        out: set[Term] = set()
        for t in self.all_terms():
            for s in subterms(t):
                if isinstance(s, (Const, App)) and s.is_ground():
                    out.add(s)
        return out

    def set_values(self) -> set[SetValue]:
        """All ground set values occurring in the program."""
        out: set[SetValue] = set()
        for t in self.all_terms():
            for s in subterms(t):
                if isinstance(s, SetValue):
                    out.add(s)
        return out

    def function_symbols(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for t in self.all_terms():
            for s in subterms(t):
                if isinstance(s, App):
                    prev = out.setdefault(s.fname, len(s.args))
                    if prev != len(s.args):
                        raise ClauseError(
                            f"function {s.fname!r} used with arities "
                            f"{prev} and {len(s.args)}"
                        )
        return out

    def all_terms(self) -> Iterator[Term]:
        for c in self.clauses:
            if isinstance(c, LPSClause):
                yield from c.head.args
                for _, source in c.quantifiers:
                    yield source
                for lit in c.body:
                    yield from lit.atom.args
            else:
                yield from c.head_args
                for lit in c.body:
                    yield from lit.atom.args

    # -- validation ---------------------------------------------------------------

    def validate(self) -> None:
        """Check the sort discipline for the program's mode.

        In LPS mode every term must have nesting depth ≤ 1 and untyped
        variables are rejected; ELPS mode only enforces the function-range
        restriction (which :class:`~repro.core.terms.App` enforces by
        construction).
        """
        self.predicates()  # consistent arities
        if self.mode == MODE_ELPS:
            return
        for t in self.all_terms():
            if nesting_depth(t) > 1:
                raise SortError(
                    f"term {t} has nesting depth {nesting_depth(t)} > 1; "
                    "LPS allows one level of set nesting (use ELPS mode)"
                )
            for s in subterms(t):
                if isinstance(s, Var) and s.sort == SORT_U:
                    raise SortError(
                        f"untyped variable {s} in LPS mode; untyped variables "
                        "belong to ELPS (Section 5)"
                    )
                if isinstance(s, (SetExpr, SetValue)):
                    elems = s.elems
                    for e in elems:
                        if e.sort == SORT_S:
                            raise SortError(
                                f"set term {s} contains a set-sorted element "
                                f"{e}; LPS sets contain atoms only"
                            )

    def has_negation(self) -> bool:
        return any(
            isinstance(c, LPSClause) and c.has_negation() for c in self.clauses
        )

    def has_grouping(self) -> bool:
        return any(isinstance(c, GroupingClause) for c in self.clauses)

    # -- dependency graph ------------------------------------------------------

    def dependency_edges(self) -> Iterator[tuple[str, str, bool]]:
        """Yield edges ``(head_pred, body_pred, positive)``.

        Grouping clauses contribute *negative* edges (grouping needs the full
        extension of its body predicates, like negation — Section 6 /
        [BNR*87]).  Special predicates never appear as nodes.
        """
        for c in self.clauses:
            if isinstance(c, LPSClause):
                for lit in c.body:
                    if not lit.atom.is_special():
                        yield (c.head.pred, lit.atom.pred, lit.positive)
            else:
                for lit in c.body:
                    if not lit.atom.is_special():
                        yield (c.pred, lit.atom.pred, False)

    def pretty(self) -> str:
        """Multi-line source-order rendering of the program."""
        return "\n".join(str(c) for c in self.clauses)

    def __str__(self) -> str:
        return self.pretty()


def rename_predicates(program: Program, mapping: Mapping[str, str]) -> Program:
    """Rename non-special predicates throughout a program.

    Used by the Section 6 translations, which replace ``union``/``scons`` by
    fresh predicate names before axiomatising them.
    """

    def ren_atom(a: Atom) -> Atom:
        if a.pred in mapping:
            if is_special_predicate(mapping[a.pred]):
                raise ClauseError(
                    f"cannot rename {a.pred!r} to special predicate"
                )
            return Atom(mapping[a.pred], a.args)
        return a

    def ren_clause(c: AnyClause) -> AnyClause:
        if isinstance(c, LPSClause):
            return LPSClause(
                head=ren_atom(c.head),
                quantifiers=c.quantifiers,
                body=tuple(
                    Literal(ren_atom(l.atom), l.positive) for l in c.body
                ),
            )
        return GroupingClause(
            pred=mapping.get(c.pred, c.pred),
            head_args=c.head_args,
            group_pos=c.group_pos,
            group_var=c.group_var,
            body=tuple(Literal(ren_atom(l.atom), l.positive) for l in c.body),
        )

    return Program(tuple(ren_clause(c) for c in program.clauses), mode=program.mode)
