"""Unification and matching over two-sorted terms with set constructors.

The paper notes (end of Section 3.2) that extending SLD resolution to LPS
requires **arbitrary unifiers rather than a most general one** — set terms do
not have unitary unification.  For example ``{x, y}`` unifies with the ground
set ``{a, b}`` in two incomparable ways (``x/a, y/b`` and ``x/b, y/a``) and
with ``{a}`` in one (``x/a, y/a``).

This module therefore exposes unification as an *enumeration* of a complete,
finite set of unifiers:

* :func:`unify` — general two-sided unification.  For a set constructor
  against a ground set value it enumerates element assignments and keeps
  those whose result collapses to the right canonical set; for two
  constructors it enumerates doubly-covering element pairings (each element
  of either side must be matched by the other side), which is the classical
  complete set for flat set-term unification without rest variables.
* :func:`match` — one-way matching of a pattern against a ground term
  (pattern variables bindable, target frozen).  This is what the bottom-up
  engine and the top-down prover use on ground data.
* :func:`unify_atoms` / :func:`match_atom` — pointwise lifts to atoms.

Enumeration sizes are factorial in set-term width; :data:`MAX_SET_WIDTH`
guards against pathological inputs.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Optional

from .atoms import Atom
from .errors import EvaluationError
from .sorts import sorts_compatible
from .substitution import EMPTY_SUBST, Subst
from .terms import App, Const, SetExpr, SetValue, Term, Var, free_vars

#: Largest set-constructor width for which we enumerate unifiers.
MAX_SET_WIDTH = 8


def unify(t1: Term, t2: Term, theta: Subst = EMPTY_SUBST) -> Iterator[Subst]:
    """Enumerate substitutions ``σ ⊇ theta`` with ``σ(t1) == σ(t2)``.

    The enumeration is complete for the fragment used by the engine (set
    constructors of width ≤ :data:`MAX_SET_WIDTH`, no set-valued rest
    variables inside constructors).  Duplicate substitutions are suppressed.
    """
    seen: set[Subst] = set()
    for sigma in _unify(t1, t2, theta):
        if sigma not in seen:
            seen.add(sigma)
            yield sigma


def _unify(t1: Term, t2: Term, theta: Subst) -> Iterator[Subst]:
    t1 = theta.apply(t1)
    t2 = theta.apply(t2)
    if t1 == t2:
        yield theta
        return
    if isinstance(t1, Var):
        yield from _bind(t1, t2, theta)
        return
    if isinstance(t2, Var):
        yield from _bind(t2, t1, theta)
        return
    if isinstance(t1, Const) or isinstance(t2, Const):
        return  # unequal constants (equality case handled above)
    if isinstance(t1, App) and isinstance(t2, App):
        if t1.fname != t2.fname or len(t1.args) != len(t2.args):
            return
        yield from _unify_seq(t1.args, t2.args, theta)
        return
    if isinstance(t1, SetValue) and isinstance(t2, SetValue):
        return  # ground unequal sets
    if isinstance(t1, SetExpr) and isinstance(t2, SetValue):
        yield from _unify_expr_value(t1, t2, theta)
        return
    if isinstance(t2, SetExpr) and isinstance(t1, SetValue):
        yield from _unify_expr_value(t2, t1, theta)
        return
    if isinstance(t1, SetExpr) and isinstance(t2, SetExpr):
        yield from _unify_expr_expr(t1, t2, theta)
        return
    # sort clash (e.g. App vs SetValue): no unifier
    return


def _bind(v: Var, t: Term, theta: Subst) -> Iterator[Subst]:
    if not sorts_compatible(v.sort, t.sort):
        return
    if v in free_vars(t):
        return  # occurs check
    yield theta.bind(v, t)


def _unify_seq(
    args1: tuple[Term, ...], args2: tuple[Term, ...], theta: Subst
) -> Iterator[Subst]:
    if not args1:
        yield theta
        return
    for sigma in _unify(args1[0], args2[0], theta):
        yield from _unify_seq(args1[1:], args2[1:], sigma)


def _check_width(n: int) -> None:
    if n > MAX_SET_WIDTH:
        raise EvaluationError(
            f"set-term unification over width {n} exceeds MAX_SET_WIDTH="
            f"{MAX_SET_WIDTH}"
        )


def _unify_expr_value(expr: SetExpr, value: SetValue, theta: Subst) -> Iterator[Subst]:
    """Unify a constructor ``{e1,…,em}`` with a ground set value.

    Enumerate maps from constructor elements to value elements; a candidate
    succeeds when, after elementwise unification, the instantiated
    constructor canonicalizes to exactly ``value`` (this enforces the
    covering condition: every member of ``value`` must be produced).
    """
    _check_width(max(len(expr.elems), len(value.elems)))
    targets = value.sorted_elems()
    if not expr.elems:
        if not targets:
            yield theta
        return
    if not targets:
        return  # non-empty constructor cannot denote the empty set
    for assignment in itertools.product(targets, repeat=len(expr.elems)):
        for sigma in _unify_seq(expr.elems, tuple(assignment), theta):
            if sigma.apply(expr) == value:
                yield sigma


def _unify_expr_expr(e1: SetExpr, e2: SetExpr, theta: Subst) -> Iterator[Subst]:
    """Unify two set constructors via doubly-covering element pairings."""
    _check_width(max(len(e1.elems), len(e2.elems)))
    if not e1.elems and not e2.elems:
        yield theta
        return
    if not e1.elems or not e2.elems:
        return
    n1, n2 = len(e1.elems), len(e2.elems)
    for fwd in itertools.product(range(n2), repeat=n1):
        for bwd in itertools.product(range(n1), repeat=n2):
            # every element of e2 must be covered: either hit by fwd or
            # matched back by bwd; the pairing equations enforce both maps.
            pairs = [(e1.elems[i], e2.elems[j]) for i, j in enumerate(fwd)]
            pairs += [(e1.elems[i], e2.elems[j]) for j, i in enumerate(bwd)]
            yield from _unify_pairs(pairs, theta)


def _unify_pairs(pairs: list[tuple[Term, Term]], theta: Subst) -> Iterator[Subst]:
    if not pairs:
        yield theta
        return
    (a, b), rest = pairs[0], pairs[1:]
    for sigma in _unify(a, b, theta):
        yield from _unify_pairs(rest, sigma)


def unify_atoms(a1: Atom, a2: Atom, theta: Subst = EMPTY_SUBST) -> Iterator[Subst]:
    """Enumerate unifiers of two atoms."""
    if a1.pred != a2.pred or a1.arity != a2.arity:
        return
    seen: set[Subst] = set()
    for sigma in _unify_seq(a1.args, a2.args, theta):
        if sigma not in seen:
            seen.add(sigma)
            yield sigma


def first_unifier(t1: Term, t2: Term, theta: Subst = EMPTY_SUBST) -> Optional[Subst]:
    """The first unifier, or ``None``.  NB: set terms have no *most general*
    unifier — callers needing completeness must use :func:`unify`."""
    for sigma in unify(t1, t2, theta):
        return sigma
    return None


# ---------------------------------------------------------------------------
# One-way matching (pattern against ground data)
# ---------------------------------------------------------------------------

def match(pattern: Term, target: Term, theta: Subst = EMPTY_SUBST) -> Iterator[Subst]:
    """Enumerate substitutions binding only pattern variables with
    ``σ(pattern) == target``.  ``target`` must be ground."""
    if not target.is_ground():
        raise EvaluationError(f"match target {target} is not ground")
    seen: set[Subst] = set()
    for sigma in _match(pattern, target, theta):
        if sigma not in seen:
            seen.add(sigma)
            yield sigma


def _match(pattern: Term, target: Term, theta: Subst) -> Iterator[Subst]:
    pattern = theta.apply(pattern)
    if pattern == target:
        yield theta
        return
    if isinstance(pattern, Var):
        if sorts_compatible(pattern.sort, target.sort):
            yield theta.bind(pattern, target)
        return
    if isinstance(pattern, App) and isinstance(target, App):
        if pattern.fname != target.fname or len(pattern.args) != len(target.args):
            return
        yield from _match_seq(pattern.args, target.args, theta)
        return
    if isinstance(pattern, SetExpr) and isinstance(target, SetValue):
        _check_width(max(len(pattern.elems), len(target.elems)))
        targets = target.sorted_elems()
        if not pattern.elems:
            if not targets:
                yield theta
            return
        if not targets:
            return
        for assignment in itertools.product(targets, repeat=len(pattern.elems)):
            for sigma in _match_seq(pattern.elems, tuple(assignment), theta):
                if sigma.apply(pattern) == target:
                    yield sigma
        return
    return


def _match_seq(
    pats: tuple[Term, ...], targets: tuple[Term, ...], theta: Subst
) -> Iterator[Subst]:
    if not pats:
        yield theta
        return
    for sigma in _match(pats[0], targets[0], theta):
        yield from _match_seq(pats[1:], targets[1:], sigma)


#: Sentinels for :func:`match_atom_fast`: "no match" vs "use the generic
#: enumerator".  Part of the supported single-fact matching API — the
#: evaluator's inner loop calls the fast path directly to avoid a generator
#: per candidate fact.
MATCH_FAILED = object()
MATCH_REFUSED = object()


def match_atom_fast(pattern: Atom, target: Atom, theta: Subst):
    """One-shot match for patterns whose args are variables or ground terms.

    In that shape matching is deterministic — every pattern variable is
    forced to the fact's value at its position — so the generic enumerator
    (with its per-step substitution copies and duplicate suppression) is
    pure overhead.  Returns the extended substitution, ``MATCH_FAILED`` on a
    mismatch, or ``MATCH_REFUSED`` when the pattern needs the generic path
    (structured non-ground args, or variables already bound in ``theta``).
    The caller must have checked predicate and arity already.
    """
    tmap = theta._map
    binds: Optional[dict] = None
    for p, t in zip(pattern.args, target.args):
        if p.__class__ is Var:
            if p in tmap:
                return MATCH_REFUSED  # un-presubstituted pattern
            if t.__class__ is SetExpr:
                # A ground-but-uncanonical target arg must go through the
                # generic path so the binding is canonicalized.
                return MATCH_REFUSED
            cur = None if binds is None else binds.get(p)
            if cur is not None:
                if cur is not t and cur != t:
                    return MATCH_FAILED
            else:
                if not sorts_compatible(p.var_sort, t.sort):
                    return MATCH_FAILED
                if binds is None:
                    binds = {}
                binds[p] = t
        elif p.__class__ is SetExpr:
            # Even a ground SetExpr needs canonicalization before comparing.
            return MATCH_REFUSED
        elif p.is_ground():
            if p is not t and p != t:
                return MATCH_FAILED
        else:
            return MATCH_REFUSED  # e.g. App containing variables
    if binds:
        new = dict(tmap)
        new.update(binds)
        return Subst._make(new)
    return theta


def match_atom(pattern: Atom, target: Atom, theta: Subst = EMPTY_SUBST) -> Iterator[Subst]:
    """Enumerate matches of an atom pattern against a ground atom."""
    if pattern.pred != target.pred or pattern.arity != target.arity:
        return
    fast = match_atom_fast(pattern, target, theta)
    if fast is MATCH_FAILED:
        return
    if fast is not MATCH_REFUSED:
        yield fast
        return
    seen: set[Subst] = set()
    for sigma in _match_seq(pattern.args, target.args, theta):
        if sigma not in seen:
            seen.add(sigma)
            yield sigma
