"""Clauses: LPS clauses, generalized rules, and LDL grouping clauses.

**LPS clause** (Definition 5)::

    A :- (forall x1 in X1) ... (forall xn in Xn) (B1 and ... and Bm)

where ``A`` is a non-special atom, each ``Bi`` an atom, each ``xi`` a sort-a
variable and each ``Xi`` a sort-s variable.  ``n = 0`` gives an ordinary Horn
clause, ``m = 0`` a fact.  We additionally allow negative literals among the
``Bi`` for the stratified extension of Sections 4.2/6.2 — core-LPS
validation (:meth:`LPSClause.check_core`) rejects them.

**Lemma 4** — every *ground instance* of an LPS clause is equivalent to a
ground Horn clause: each quantifier ``(∀x ∈ {u1,…,uk})`` unfolds into the
conjunction over the elements.  :meth:`LPSClause.ground_instances` implements
exactly that unfolding and is the bridge between the declarative semantics
(``T_P`` in ``repro.semantics.fixpoint``) and the theory tests.

**Rule** is the generalized form ``A :- φ`` with ``φ`` an arbitrary body
formula; Theorem 6's compiler turns positive-formula rules into LPS clauses.

**GroupingClause** is LDL's ``A(x̄, ⟨x⟩) :- B1 ∧ … ∧ Bm`` (Definition 14):
the grouped position collects *all* values of ``x`` satisfying the body.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from .atoms import Atom, Literal, pos
from .errors import ClauseError, SortError
from .sorts import SORT_A, SORT_S, SORT_U
from .substitution import Subst
from .terms import SetValue, Term, Var, free_vars as term_free_vars
from .formulas import (
    AndF,
    AtomF,
    Formula,
    ForallIn,
    NotF,
    TRUE,
    conj,
)


@dataclass(frozen=True, slots=True)
class LPSClause:
    """An LPS clause ``head :- (∀x1∈X1)…(∀xn∈Xn)(L1 ∧ … ∧ Lm)``.

    ``quantifiers`` is the prefix as (bound-variable, range-term) pairs; the
    paper requires the range to be a set *variable*, but we also accept a
    ground set term (useful for the ``sum`` base case ``X = {n}`` style of
    rules after parsing).  ``body`` is the matrix as a tuple of literals.
    """

    head: Atom
    quantifiers: tuple[tuple[Var, Term], ...] = ()
    body: tuple[Literal, ...] = ()

    def __post_init__(self) -> None:
        if self.head.is_special():
            raise ClauseError(
                f"clause head {self.head} uses special predicate "
                f"{self.head.pred!r}; Definition 5 forbids redefining "
                "equality or membership"
            )
        head_vars = self.head.free_vars()
        for bound, source in self.quantifiers:
            if bound.sort == SORT_S:
                raise ClauseError(
                    f"quantified variable {bound} has sort 's'; restricted "
                    "quantifiers bind sort-'a' variables (Definition 5)"
                )
            if source.sort == SORT_A:
                raise SortError(
                    f"quantifier range {source} has sort 'a'; must be set-sorted"
                )
            if bound in head_vars:
                raise ClauseError(
                    f"quantified variable {bound} occurs in the head "
                    f"{self.head}; heads must use only free variables"
                )

    # -- basic structure ------------------------------------------------------

    @property
    def is_fact(self) -> bool:
        return not self.body and not self.quantifiers

    @property
    def is_horn(self) -> bool:
        """Whether the clause is an ordinary Horn clause (no quantifiers)."""
        return not self.quantifiers

    def quantified_vars(self) -> set[Var]:
        return {v for v, _ in self.quantifiers}

    def free_vars(self) -> set[Var]:
        """Free variables of the clause (head + body + ranges − bound vars)."""
        out = self.head.free_vars()
        for _, source in self.quantifiers:
            out |= term_free_vars(source)
        for lit in self.body:
            out |= lit.free_vars()
        return out - self.quantified_vars()

    def body_atoms(self) -> Iterator[Atom]:
        for lit in self.body:
            yield lit.atom

    def has_negation(self) -> bool:
        return any(not lit.positive for lit in self.body)

    def check_core(self) -> None:
        """Raise unless this is a *core* LPS clause (no negative literals)."""
        if self.has_negation():
            raise ClauseError(
                f"clause {self} uses negation; core LPS bodies are "
                "conjunctions of atoms (Definition 5)"
            )

    # -- conversions -----------------------------------------------------------

    def body_formula(self) -> Formula:
        """The body as a formula: quantifier prefix over the conjunction."""
        matrix: Formula = conj(*(
            AtomF(l.atom) if l.positive else NotF(AtomF(l.atom))
            for l in self.body
        ))
        for bound, source in reversed(self.quantifiers):
            matrix = ForallIn(bound, source, matrix)
        return matrix

    def substitute(self, theta: Subst) -> "LPSClause":
        """Apply a substitution, avoiding capture of the quantified variables."""
        quantified = self.quantified_vars()
        if quantified and any(v in theta for v in quantified):
            outer = Subst._make({v: t for v, t in theta.items()
                                 if v not in quantified})
        else:
            outer = theta
        return LPSClause(
            head=self.head.substitute(outer),
            quantifiers=tuple(
                (bound, outer.apply(source)) for bound, source in self.quantifiers
            ),
            body=tuple(lit.substitute(outer) for lit in self.body),
        )

    def ground_instances(self, theta: Subst) -> Optional["HornGround"]:
        """Lemma 4: the ground Horn clause equivalent to this instance.

        ``theta`` must ground every free variable of the clause.  Each
        quantifier range becomes a :class:`SetValue`; the matrix is expanded
        over the product of the ranges.  Returns ``None`` is never produced —
        a non-ground instantiation raises :class:`ClauseError` instead.
        """
        inst = self.substitute(theta)
        if inst.head.free_vars() - inst.quantified_vars():
            raise ClauseError(f"substitution does not ground the head of {self}")
        ranges: list[list[Term]] = []
        for bound, source in inst.quantifiers:
            if not isinstance(source, SetValue):
                raise ClauseError(
                    f"substitution does not ground quantifier range {source}"
                )
            ranges.append(source.sorted_elems())
        bound_vars = [v for v, _ in inst.quantifiers]
        literals: list[Literal] = []
        for combo in itertools.product(*ranges):
            rho = Subst._checked(dict(zip(bound_vars, combo)))
            for lit in inst.body:
                glit = lit.substitute(rho)
                if not glit.is_ground():
                    raise ClauseError(
                        f"substitution does not ground body literal {lit}"
                    )
                literals.append(glit)
        return HornGround(head=inst.head, body=tuple(literals))

    def __str__(self) -> str:
        prefix = "".join(
            f"forall {v} in {s} " for v, s in self.quantifiers
        )
        if not self.body and not self.quantifiers:
            return f"{self.head}."
        body = ", ".join(str(l) for l in self.body)
        if self.quantifiers:
            return f"{self.head} :- {prefix}({body})."
        return f"{self.head} :- {body}."


@dataclass(frozen=True, slots=True)
class HornGround:
    """A ground Horn clause (possibly with negative literals) — Lemma 4 output."""

    head: Atom
    body: tuple[Literal, ...]

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        return f"{self.head} :- {', '.join(str(l) for l in self.body)}."


def fact(head: Atom) -> LPSClause:
    """A unit clause."""
    if not head.is_ground():
        raise ClauseError(f"fact {head} is not ground")
    return LPSClause(head=head)


def horn(head: Atom, *body: Literal | Atom) -> LPSClause:
    """An ordinary Horn clause (no quantifier prefix)."""
    lits = tuple(l if isinstance(l, Literal) else pos(l) for l in body)
    return LPSClause(head=head, body=lits)


def clause(
    head: Atom,
    quantifiers: Iterable[tuple[Var, Term]] = (),
    body: Iterable[Literal | Atom] = (),
) -> LPSClause:
    """General LPS clause constructor accepting bare atoms in the body."""
    lits = tuple(l if isinstance(l, Literal) else pos(l) for l in body)
    return LPSClause(head=head, quantifiers=tuple(quantifiers), body=lits)


@dataclass(frozen=True, slots=True)
class Rule:
    """A generalized rule ``head :- formula`` (Theorem 6 input form)."""

    head: Atom
    body: Formula = TRUE

    def __post_init__(self) -> None:
        if self.head.is_special():
            raise ClauseError(
                f"rule head {self.head} uses a special predicate"
            )

    def is_positive(self) -> bool:
        return self.body.is_positive()

    def free_vars(self) -> set[Var]:
        return self.head.free_vars() | self.body.free_vars()

    def __str__(self) -> str:
        if isinstance(self.body, type(TRUE)):
            return f"{self.head}."
        return f"{self.head} :- {self.body}."


@dataclass(frozen=True, slots=True)
class GroupingClause:
    """An LDL grouping clause ``p(t1,…,⟨x⟩,…,tn) :- L1 ∧ … ∧ Lm``.

    ``group_pos`` is the index of the grouped argument in the head and
    ``group_var`` the grouped variable ``x``.  Semantics (Definition 14): for
    each binding of the *other* head variables, the grouped position holds
    the set of all values of ``x`` for which the body is derivable.  Note the
    grouped set may be empty only if we chose to derive heads for non-matched
    bindings — following LDL we only derive heads when at least one body
    instance holds, and we treat grouping as negation for stratification.
    """

    pred: str
    head_args: tuple[Term, ...]
    group_pos: int
    group_var: Var
    body: tuple[Literal, ...]

    def __post_init__(self) -> None:
        if not (0 <= self.group_pos < len(self.head_args) + 1):
            raise ClauseError("grouping position out of range")
        if self.group_var.sort == SORT_S:
            raise ClauseError(
                f"grouped variable {self.group_var} has sort 's'; LDL groups "
                "individual values (Definition 14)"
            )
        for t in self.head_args:
            for v in term_free_vars(t):
                if v == self.group_var:
                    raise ClauseError(
                        f"grouped variable {self.group_var} also appears as a "
                        "plain head argument"
                    )

    def free_vars(self) -> set[Var]:
        out: set[Var] = set()
        for t in self.head_args:
            out |= term_free_vars(t)
        for lit in self.body:
            out |= lit.free_vars()
        return out

    def __str__(self) -> str:
        args = [str(t) for t in self.head_args]
        args.insert(self.group_pos, f"<{self.group_var}>")
        body = ", ".join(str(l) for l in self.body)
        return f"{self.pred}({', '.join(args)}) :- {body}."
