"""Theorem 11/12: LDL grouping versus ELPS with (stratified) negation.

Definition 14 gives LDL's grouping clause ``A(x1,…,xn,⟨x⟩) :- B1 ∧ … ∧ Bm``:
the grouped position holds the set of all ``x`` values satisfying the body.
Theorem 11 shows LDL programs and ELPS programs with negation are
inter-translatable; Theorem 12 notes the stratified case (one direction of
which the paper leaves open).

**Grouping → ELPS with negation** (:func:`grouping_to_elps`) is the paper's
construction (it is "essentially the same technique used to construct sets
at the end of Section 4.2")::

    q(y, Z)          :- (∀z∈y)(z∈Z) ∧ w∈Z ∧ ¬(w∈y)          -- y ⊊ Z
    p(x1,…,xn, y)    :- q(y, Z) ∧ (∀x∈Z)(B1 ∧ … ∧ Bm)       -- some proper
                                                               superset works
    A(x1,…,xn, y)    :- (∀x∈y)(B1 ∧ … ∧ Bm) ∧ ¬p(x1,…,xn, y)

``A`` then holds exactly for the *maximal* set of witnesses.  Caveats,
machine-checked in the tests:

* the construction finds the grouped set only if that set **exists in the
  active domain** (the paper works over the full Herbrand universe, where
  every finite set exists; a finite evaluator must materialise candidates —
  :func:`candidate_rules` emits an LDL-free generator based on the
  ``subset_enum`` builtin, or callers may seed the domain);
* for a binding of ``x1,…,xn`` with *no* witnesses the translation derives
  ``A(x̄, ∅)`` (the empty set vacuously qualifies), whereas an LDL engine
  derives nothing; pass ``nonempty=True`` to add an ``(∃x∈y)`` guard and
  match engine behaviour exactly.

**Horn+union → LDL** (:func:`union_to_grouping`) is the paper's other
direction: replace the ``union`` predicate by a grouped predicate ``q``
defined from the element relation::

    p(x, y, z) :- z ∈ x        p(x, y, z) :- z ∈ y
    q(x, y, ⟨z⟩) :- p(x, y, z)

so that ``q(x, y, S)`` holds iff ``S = x ∪ y`` (for x ∪ y ≠ ∅; the paper's
construction shares the empty-group caveat above).
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..core.atoms import Atom, Literal, atom, member, neg, pos
from ..core.clauses import GroupingClause, LPSClause, Rule
from ..core.formulas import AndF, AtomF, ExistsIn, ForallIn, NotF, conj
from ..core.program import AnyClause, MODE_ELPS, Program, rename_predicates
from ..core.sorts import SORT_A, SORT_S
from ..core.terms import Term, Var
from .fresh import FreshNames
from .positive import compile_program
from .union_scons import UNION


def proper_subset_rule(pred: str, fresh: FreshNames) -> Rule:
    """``pred(Y1, Y2)`` ⇔ Y1 ⊊ Y2, as a positive-formula-plus-negation rule."""
    y1, y2 = fresh.set_var("Psub1"), fresh.set_var("Psub2")
    z = fresh.var(SORT_A, "psz")
    w = fresh.var(SORT_A, "psw")
    body = conj(
        ForallIn(z, y1, AtomF(member(z, y2))),
        AtomF(member(w, y2)),
        NotF(AtomF(member(w, y1))),
    )
    return Rule(head=atom(pred, y1, y2), body=body)


def grouping_to_elps(
    program: Program,
    nonempty: bool = True,
    faithful: bool = False,
) -> Program:
    """Translate every LDL grouping clause into ELPS clauses with stratified
    negation (Theorem 11's final construction)."""
    fresh = FreshNames(program, prefix="ldl")
    out: list[Rule | AnyClause] = []
    for c in program.clauses:
        if not isinstance(c, GroupingClause):
            out.append(c)
            continue
        out.extend(_translate_grouping(c, fresh, nonempty))
    return compile_program(out, mode=MODE_ELPS, faithful=faithful, fresh=fresh)


def _translate_grouping(
    g: GroupingClause, fresh: FreshNames, nonempty: bool
) -> list[Rule]:
    body_conj = conj(*(
        AtomF(l.atom) if l.positive else NotF(AtomF(l.atom)) for l in g.body
    ))
    q_pred = fresh.predicate("psub")
    rules: list[Rule] = [proper_subset_rule(q_pred, fresh)]

    y = fresh.set_var("Grp")
    z_set = fresh.set_var("Sup")
    group_x = g.group_var
    other_args = tuple(g.head_args)

    # p(x̄, y): some proper superset of y consists of witnesses only.
    p_pred = fresh.predicate("bigger")
    head_vars = tuple(
        sorted(
            {v for t in other_args for v in _vars_of(t)},
            key=lambda v: (v.sort, v.name),
        )
    )
    p_head = Atom(p_pred, head_vars + (y,))
    p_body = conj(
        AtomF(atom(q_pred, y, z_set)),
        ForallIn(group_x, z_set, body_conj),
    )
    rules.append(Rule(head=p_head, body=p_body))

    # A(x̄, y): every element of y is a witness, and no larger set qualifies.
    final_args = list(other_args)
    final_args.insert(g.group_pos, y)
    a_head = Atom(g.pred, tuple(final_args))
    parts = [ForallIn(group_x, y, body_conj)]
    if nonempty:
        parts.append(ExistsIn(group_x, y, body_conj))
    parts.append(NotF(AtomF(p_head)))
    rules.append(Rule(head=a_head, body=conj(*parts)))
    return rules


def _vars_of(t: Term) -> set[Var]:
    from ..core.terms import free_vars

    return free_vars(t)


def candidate_rules(
    universe_source_pred: str,
    candidate_pred: str,
    fresh: Optional[FreshNames] = None,
) -> list[AnyClause]:
    """Materialise candidate grouped sets for the translation above.

    Emits::

        <univ>(⟨x⟩)     :- <universe_source_pred>(x).       (grouping)
        <candidate>(S)  :- <univ>(U), subset_enum(S, U).

    so every subset of the witness universe exists in the active domain,
    which is what :func:`grouping_to_elps`'s output needs to find maximal
    sets.  Exponential by design — the tests keep universes small, and the
    benchmarks measure the cost honestly.
    """
    fresh = fresh or FreshNames(prefix="cand")
    univ_pred = fresh.predicate("univ")
    x = fresh.var(SORT_A, "cx")
    u = fresh.set_var("CU")
    s = fresh.set_var("CS")
    g = GroupingClause(
        pred=univ_pred,
        head_args=(),
        group_pos=0,
        group_var=x,
        body=(pos(atom(universe_source_pred, x)),),
    )
    c = LPSClause(
        head=Atom(candidate_pred, (s,)),
        body=(
            pos(Atom(univ_pred, (u,))),
            pos(atom("subset_enum", s, u)),
        ),
    )
    return [g, c]


def union_to_grouping(program: Program) -> Program:
    """Replace the ``union`` predicate by an LDL grouped definition
    (Theorem 11's Horn+union → LDL direction)."""
    fresh = FreshNames(program, reserved={UNION}, prefix="t11")
    q_pred = fresh.predicate("union")
    renamed = rename_predicates(program, {UNION: q_pred})
    p_pred = fresh.predicate("elem")
    x, y = fresh.set_var("Ux"), fresh.set_var("Uy")
    z = fresh.var(SORT_A, "uz")
    defs: list[AnyClause] = [
        LPSClause(
            head=Atom(p_pred, (x, y, z)),
            body=(pos(member(z, x)),),
        ),
        LPSClause(
            head=Atom(p_pred, (x, y, z)),
            body=(pos(member(z, y)),),
        ),
        GroupingClause(
            pred=q_pred,
            head_args=(x, y),
            group_pos=2,
            group_var=z,
            body=(pos(Atom(p_pred, (x, y, z))),),
        ),
    ]
    return Program(renamed.clauses + tuple(defs), mode=MODE_ELPS)
