"""Demand transformation: goal-directed bottom-up evaluation of set recursions.

The paper's Example 5/6 recursions (``sum``, ``sum-costs``) decompose a
*given* set into smaller ones.  Evaluated naively bottom-up, such rules
never fire: the smaller sets are not in the active domain until something
puts them there.  The examples hand-write a demand predicate::

    need(S) :- parts(P, S).
    need(Y) :- need(Z), choose_min(X, Y, Z).

This module mechanises that pattern — a single-argument restriction of the
magic-sets technique ([BMSU86], which the paper cites for exactly this
purpose): :func:`add_demand` rewrites a program so that one argument of a
recursive predicate is computed *on demand*:

* every clause defining ``pred`` gets an extra body literal
  ``need_pred(t)`` guarding its ``arg_pos`` argument;
* every body occurrence of ``pred`` in any clause contributes a demand rule
  ``need_pred(t) :- <the literals to its left>`` (left-to-right sideways
  information passing, the classical SIP);
* seed demands come from ``seeds`` (ground terms or unary seed predicates).

The result is semantically equivalent on the demanded atoms (tested against
the undemanded program over materialised domains) and turns the Example 5/6
exponential-or-stuck recursions into linear ones.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

from ..core.atoms import Atom, Literal, pos
from ..core.clauses import GroupingClause, LPSClause
from ..core.errors import ClauseError
from ..core.program import AnyClause, Program
from ..core.terms import Term
from .fresh import FreshNames


def demand_predicate_name(pred: str, arg_pos: int, fresh: FreshNames) -> str:
    return fresh.predicate(f"need_{pred}_{arg_pos}")


def add_demand(
    program: Program,
    pred: str,
    arg_pos: int,
    seeds: Iterable[Union[Term, str]] = (),
    fresh: Optional[FreshNames] = None,
) -> tuple[Program, str]:
    """Rewrite ``program`` so argument ``arg_pos`` of ``pred`` is demand-driven.

    ``seeds`` may contain ground terms (each becomes a demand fact) and/or
    names of unary predicates whose extension seeds the demand (a rule
    ``need(t) :- seed(t)`` is added per name).  Returns the rewritten
    program and the generated demand predicate's name.
    """
    arities = program.predicates()
    if pred not in arities:
        raise ClauseError(f"predicate {pred!r} does not occur in the program")
    if not (0 <= arg_pos < arities[pred]):
        raise ClauseError(
            f"argument position {arg_pos} out of range for {pred!r}/"
            f"{arities[pred]}"
        )
    fresh = fresh or FreshNames(program, prefix="mg")
    need = demand_predicate_name(pred, arg_pos, fresh)

    out: list[AnyClause] = []
    for c in program.clauses:
        if isinstance(c, GroupingClause):
            out.append(c)
            out.extend(_demand_rules_for_body(c.body, pred, arg_pos, need, ()))
            continue
        body = c.body
        # Guard clauses that define the demanded predicate.
        if c.head.pred == pred:
            guard = pos(Atom(need, (c.head.args[arg_pos],)))
            body = (guard,) + body
            out.append(LPSClause(c.head, c.quantifiers, body))
        else:
            out.append(c)
        # Demand rules from body occurrences, with the guard (for clauses
        # defining pred, demand propagates only under the clause's own
        # demand — that's what makes the recursion terminate).
        quantified = c.quantified_vars()
        for lit in c.body:
            if lit.positive and lit.atom.pred == pred:
                from ..core.terms import free_vars as tfv

                if tfv(lit.atom.args[arg_pos]) & quantified:
                    raise ClauseError(
                        f"cannot demand-transform {pred!r}: occurrence "
                        f"{lit.atom} has a quantified variable in the "
                        "demanded position"
                    )
        prefix: tuple[Literal, ...] = ()
        if c.head.pred == pred:
            prefix = (pos(Atom(need, (c.head.args[arg_pos],))),)
        out.extend(_demand_rules_for_body(c.body, pred, arg_pos, need, prefix))

    arg_sort = _demanded_arg_sort(program, pred, arg_pos)
    for seed in seeds:
        if isinstance(seed, str):
            seed_var = fresh.var(arg_sort, "Sd" if arg_sort == "s" else "sd")
            out.append(
                LPSClause(
                    head=Atom(need, (seed_var,)),
                    body=(pos(Atom(seed, (seed_var,))),),
                )
            )
        else:
            if not seed.is_ground():
                raise ClauseError(f"demand seed {seed} is not ground")
            out.append(LPSClause(head=Atom(need, (seed,))))
    return Program(tuple(out), mode=program.mode), need


def _demanded_arg_sort(program: Program, pred: str, arg_pos: int) -> str:
    """Sort of the demanded argument, read off any occurrence (LPS mode
    needs typed seed variables; ELPS occurrences may stay untyped)."""
    from ..core.sorts import SORT_U

    for c in program.clauses:
        atoms = []
        if isinstance(c, LPSClause):
            atoms.append(c.head)
            atoms.extend(l.atom for l in c.body)
        else:
            atoms.extend(l.atom for l in c.body)
        for a in atoms:
            if a.pred == pred and len(a.args) > arg_pos:
                sort = a.args[arg_pos].sort
                if sort != SORT_U:
                    return sort
    return SORT_U if program.mode == "elps" else "s"


def _demand_rules_for_body(
    body: Sequence[Literal],
    pred: str,
    arg_pos: int,
    need: str,
    prefix: tuple[Literal, ...],
) -> list[LPSClause]:
    """One demand rule per positive body occurrence of ``pred``.

    The rule's body is ``prefix`` plus every literal strictly to the left
    of the occurrence — the left-to-right SIP."""
    rules: list[LPSClause] = []
    for i, lit in enumerate(body):
        if not lit.positive or lit.atom.pred != pred:
            continue
        target = lit.atom.args[arg_pos]
        sip_body = prefix + tuple(body[:i])
        rules.append(
            LPSClause(head=Atom(need, (target,)), body=sip_body)
        )
    return rules


def demanded_sum_program(
    target_pred: str = "target",
    sum_pred: str = "sum",
) -> Program:
    """The paper's Example 5, pre-packaged with the demand transformation.

    ``target_pred(S)`` supplies the sets to sum; ``sum_pred(S, K)`` holds
    for the demanded sets.  Run with the set builtins registry."""
    from ..lang import parse_program

    base = parse_program(f"""
        {sum_pred}({{}}, 0).
        {sum_pred}(Z, K) :- choose_min(X, Y, Z), {sum_pred}(Y, M), M + X = K.
        total(K) :- {target_pred}(Z), {sum_pred}(Z, K).
    """)
    program, _need = add_demand(base, sum_pred, 0, seeds=[target_pred])
    return program
