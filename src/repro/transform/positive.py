"""Theorem 6: compiling positive-formula rules into pure LPS.

Definition 12 defines **positive formulas**: atoms closed under ``∧``,
``∨``, ``(∃x ∈ X)`` and ``(∀x ∈ X)``.  Theorem 6 proves that a program of
rules ``A :- B`` with positive bodies is equivalent — over the original
language ``L`` — to an LPS program ``P*`` over an extension ``L*`` with
auxiliary predicates, constructed by induction on ``B``:

1. ``B`` atomic                 →  the clause itself;
2. ``B = C1 ∧ C2``              →  ``A :- N1(x̄) ∧ N2(ȳ)`` plus the
   recursive translations of ``N1 :- C1`` and ``N2 :- C2``;
3. ``B = C1 ∨ C2``              →  ``A :- N1(x̄)``, ``A :- N2(ȳ)`` plus
   recursive translations;
4. ``B = (∃x ∈ X) C``           →  ``A :- N(x̄, x) ∧ x ∈ X`` plus the
   translation of ``N(x̄, x) :- C``;
5. ``B = (∀x ∈ X) C``           →  ``A :- (∀x ∈ X) N(x̄, x)`` plus the
   translation of ``N(x̄, x) :- C``.

Two modes are provided:

* ``faithful=True`` follows the proof *literally* — every non-atomic
  subformula gets an auxiliary predicate (Example 9 shows this yields an
  11-clause program for ``union``);
* ``faithful=False`` (default) applies the obvious simplifications the
  paper itself uses for its hand-written ``union`` program: conjunctions
  of literals stay inline, and auxiliaries are introduced only where the
  LPS clause shape demands them (a disjunction, or a quantifier that is
  not already an outermost prefix).

As an extension beyond the paper, negative literals ``¬p(t̄)`` are treated
as atomic leaves (and a negated *compound* formula gets an auxiliary which
is then negated), so the stratified programs of Sections 4.2 / 6.2 can be
compiled with the same machinery.  The resulting program is equivalent
under stratified semantics; for positive inputs the construction is exactly
Theorem 6's.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..core.atoms import Atom, Literal, neg, pos
from ..core.clauses import GroupingClause, LPSClause, Rule
from ..core.errors import ClauseError
from ..core.formulas import (
    AndF,
    AtomF,
    ExistsIn,
    ForallIn,
    Formula,
    NotF,
    OrF,
    TrueF,
)
from ..core.program import AnyClause, Program
from ..core.substitution import Subst
from ..core.terms import Term, Var
from .fresh import FreshNames


def compile_program(
    rules: Iterable[Rule | AnyClause],
    mode: str = "lps",
    faithful: bool = False,
    fresh: Optional[FreshNames] = None,
) -> Program:
    """Compile a mixed list of rules/clauses into an LPS program.

    ``Rule`` items are translated per Theorem 6; ``LPSClause`` and
    ``GroupingClause`` items pass through unchanged.
    """
    items = list(rules)
    if fresh is None:
        base = Program(
            tuple(c for c in items if isinstance(c, (LPSClause, GroupingClause))),
            mode=mode,
        )
        fresh = FreshNames(base, prefix="n")
        for r in items:
            if isinstance(r, Rule):
                fresh.reserve(r.head.pred)
                from ..core.formulas import atoms_of

                for a in atoms_of(r.body):
                    fresh.reserve(a.pred)
    out: list[AnyClause] = []
    for r in items:
        if isinstance(r, Rule):
            out.extend(compile_rule(r, fresh, faithful=faithful))
        else:
            out.append(r)
    return Program(tuple(out), mode=mode)


def compile_rule(
    rule: Rule, fresh: Optional[FreshNames] = None, faithful: bool = False
) -> list[LPSClause]:
    """Translate one rule ``A :- B`` into LPS clauses (Theorem 6's ``f``)."""
    if fresh is None:
        fresh = FreshNames(reserved={rule.head.pred}, prefix="n")
    if faithful:
        return _compile_faithful(rule.head, rule.body, fresh)
    return _compile_simplified(rule.head, rule.body, fresh)


# ---------------------------------------------------------------------------
# The literal proof construction
# ---------------------------------------------------------------------------

def _sorted_free(f: Formula) -> tuple[Var, ...]:
    return tuple(sorted(f.free_vars(), key=lambda v: (v.sort, v.name)))


def _compile_faithful(
    head: Atom, body: Formula, fresh: FreshNames
) -> list[LPSClause]:
    if isinstance(body, TrueF):
        return [LPSClause(head=head)]
    if isinstance(body, AtomF):
        return [LPSClause(head=head, body=(pos(body.atom),))]
    if isinstance(body, NotF):
        return _compile_negation(head, body, fresh, faithful=True)
    if isinstance(body, AndF):
        return _compile_binary(
            head, body.parts, fresh, disjunctive=False, faithful=True
        )
    if isinstance(body, OrF):
        return _compile_binary(
            head, body.parts, fresh, disjunctive=True, faithful=True
        )
    if isinstance(body, ExistsIn):
        return _compile_exists(head, body, fresh, faithful=True)
    if isinstance(body, ForallIn):
        return _compile_forall(head, body, fresh, faithful=True)
    raise ClauseError(f"cannot compile body formula {body!r}")


def _compile_binary(
    head: Atom,
    parts: tuple[Formula, ...],
    fresh: FreshNames,
    disjunctive: bool,
    faithful: bool,
) -> list[LPSClause]:
    """Cases 2 and 3 of the proof, n-ary via left-nesting."""
    if len(parts) == 0:
        return [LPSClause(head=head)]
    if len(parts) == 1:
        return _dispatch(head, parts[0], fresh, faithful)
    out: list[LPSClause] = []
    subs: list[Atom] = []
    for part in parts:
        free = _sorted_free(part)
        n_pred = fresh.predicate("or" if disjunctive else "and")
        n_atom = Atom(n_pred, tuple(free))
        subs.append(n_atom)
        out.extend(_dispatch(n_atom, part, fresh, faithful))
    if disjunctive:
        for s in subs:
            out.append(LPSClause(head=head, body=(pos(s),)))
    else:
        out.append(LPSClause(head=head, body=tuple(pos(s) for s in subs)))
    return out


def _rename_binder(body, fresh: FreshNames):
    """α-rename a quantifier whose bound variable shadows a free variable
    of the context (the paper implicitly assumes distinct names)."""
    renamed = fresh.var(body.var.var_sort, hint=body.var.name)
    new_inner = body.body.substitute(Subst({body.var: renamed}))
    return type(body)(renamed, body.source, new_inner)


def _compile_exists(
    head: Atom, body: ExistsIn, fresh: FreshNames, faithful: bool
) -> list[LPSClause]:
    """Case 4: ``A :- N(x̄, x) ∧ x ∈ X``."""
    from ..core.atoms import member

    if body.var in head.free_vars():
        body = _rename_binder(body, fresh)
    inner_free = _sorted_free(body.body)
    if body.var not in inner_free:
        inner_free = inner_free + (body.var,)
    n_pred = fresh.predicate("ex")
    n_atom = Atom(n_pred, tuple(inner_free))
    out = _dispatch(n_atom, body.body, fresh, faithful)
    out.append(
        LPSClause(
            head=head,
            body=(pos(n_atom), pos(member(body.var, body.source))),
        )
    )
    return out


def _compile_forall(
    head: Atom, body: ForallIn, fresh: FreshNames, faithful: bool
) -> list[LPSClause]:
    """Case 5: ``A :- (∀x ∈ X) N(x̄, x)``."""
    if body.var in head.free_vars():
        body = _rename_binder(body, fresh)
    inner_free = _sorted_free(body.body)
    if body.var not in inner_free:
        inner_free = inner_free + (body.var,)
    n_pred = fresh.predicate("all")
    n_atom = Atom(n_pred, tuple(inner_free))
    out = _dispatch(n_atom, body.body, fresh, faithful)
    out.append(
        LPSClause(
            head=head,
            quantifiers=((body.var, body.source),),
            body=(pos(n_atom),),
        )
    )
    return out


def _compile_negation(
    head: Atom, body: NotF, fresh: FreshNames, faithful: bool
) -> list[LPSClause]:
    """Extension: ``¬`` of an atom is a literal; of a compound, an auxiliary."""
    if isinstance(body.sub, AtomF):
        return [LPSClause(head=head, body=(neg(body.sub.atom),))]
    free = _sorted_free(body.sub)
    n_pred = fresh.predicate("not")
    n_atom = Atom(n_pred, tuple(free))
    out = _dispatch(n_atom, body.sub, fresh, faithful)
    out.append(LPSClause(head=head, body=(neg(n_atom),)))
    return out


def _dispatch(
    head: Atom, body: Formula, fresh: FreshNames, faithful: bool
) -> list[LPSClause]:
    if faithful:
        return _compile_faithful(head, body, fresh)
    return _compile_simplified(head, body, fresh)


# ---------------------------------------------------------------------------
# The simplified construction (what the paper's hand-written union uses)
# ---------------------------------------------------------------------------

def _compile_simplified(
    head: Atom, body: Formula, fresh: FreshNames
) -> list[LPSClause]:
    """Theorem 6 with the obvious economies.

    Strategy: flatten the body into prefix-form candidates.  A body compiles
    directly to one LPS clause when it is a (possibly empty) chain of
    outermost universal quantifiers over a conjunction of literals.
    Subformulas that break the shape (disjunctions, inner quantifiers,
    compound negations) get auxiliary predicates, recursively.
    """
    out: list[LPSClause] = []
    quantifiers: list[tuple[Var, Term]] = []
    matrix = body
    bound: set[Var] = set()
    head_vars = head.free_vars()
    while isinstance(matrix, ForallIn):
        var, inner = matrix.var, matrix.body
        if var in bound or var in head_vars:
            # α-rename a shadowing binder so Definition 5's "head uses only
            # free variables" holds for the generated clause.
            renamed = fresh.var(var.var_sort, hint=var.name)
            inner = inner.substitute(Subst({var: renamed}))
            var = renamed
        quantifiers.append((var, matrix.source))
        bound.add(var)
        matrix = inner

    parts = list(matrix.parts) if isinstance(matrix, AndF) else [matrix]
    literals: list[Literal] = []
    for part in parts:
        lit, extra = _to_literal(part, fresh, out)
        literals.append(lit)
        out.extend(extra)
    out.append(
        LPSClause(head=head, quantifiers=tuple(quantifiers), body=tuple(literals))
    )
    return out


def _to_literal(
    part: Formula, fresh: FreshNames, sink: list[LPSClause]
) -> tuple[Literal, list[LPSClause]]:
    """Reduce one conjunct to a literal, producing auxiliary clauses."""
    if isinstance(part, AtomF):
        return pos(part.atom), []
    if isinstance(part, NotF) and isinstance(part.sub, AtomF):
        return neg(part.sub.atom), []
    if isinstance(part, TrueF):
        # A trivially true conjunct: use a 0-ary auxiliary fact.
        n_pred = fresh.predicate("true")
        n_atom = Atom(n_pred, ())
        return pos(n_atom), [LPSClause(head=n_atom)]
    if isinstance(part, ExistsIn):
        # (∃x∈X)C as a conjunct: x ∈ X ∧ C with x fresh-renamed, inline
        # when C reduces to literals, else via auxiliary.
        from ..core.atoms import member

        free = _sorted_free(part)
        n_pred = fresh.predicate("ex")
        n_atom = Atom(n_pred, tuple(free))
        inner_free = _sorted_free(part.body)
        if part.var not in inner_free:
            inner_free = inner_free + (part.var,)
        c_pred = fresh.predicate("exbody")
        c_atom = Atom(c_pred, tuple(inner_free))
        sink.extend(_compile_simplified(c_atom, part.body, fresh))
        sink.append(
            LPSClause(
                head=n_atom,
                body=(pos(c_atom), pos(member(part.var, part.source))),
            )
        )
        return pos(n_atom), []
    if isinstance(part, NotF):
        free = _sorted_free(part.sub)
        n_pred = fresh.predicate("not")
        n_atom = Atom(n_pred, tuple(free))
        sink.extend(_compile_simplified(n_atom, part.sub, fresh))
        return neg(n_atom), []
    # OrF, ForallIn (inner), AndF (nested under e.g. Or) — auxiliary.
    free = _sorted_free(part)
    hint = "or" if isinstance(part, OrF) else "sub"
    n_pred = fresh.predicate(hint)
    n_atom = Atom(n_pred, tuple(free))
    if isinstance(part, OrF):
        for d in part.parts:
            sink.extend(_compile_simplified(n_atom, d, fresh))
    else:
        sink.extend(_compile_simplified(n_atom, part, fresh))
    return pos(n_atom), []
