"""Section 4.2: set construction.

Theorem 8 proves no LPS program can define ``B(X) ⇔ X = {x | A(x)}`` — the
argument works in *any* language with minimal-model semantics, because
enlarging the program (``P1 ⊆ P2``) can only enlarge the least model, while
the target predicate ``B`` would have to give up ``B({c1})`` when ``A(c2)``
is added.  The paper then shows the predicate *is* definable once stratified
negation is available::

    C(X) :- X ⊊ Y ∧ (∀y∈Y) A(y)          -- some strictly larger set of
                                            A-witnesses exists
    B(X) :- (∀x∈X) A(x) ∧ ¬C(X)          -- X is a maximal witness set

with ``X ⊊ Y`` itself defined by ``(∀x∈X)(x∈Y) ∧ z∈Y ∧ ¬(z∈X)``.

:func:`setof_rules` emits that construction verbatim (as positive-formula
rules compiled through Theorem 6).  Because a finite evaluator only sees
sets in the active domain, :func:`setof_program` additionally emits
candidate-set generators (an LDL grouping over ``A`` plus ``subset_enum``),
mirroring the closed-world discussion at the end of Section 4.2: to
construct ``{x | A(x)}`` one needs to know, for each ``x``, whether ``A(x)``
fails — which is exactly what the stratified negation supplies.
"""

from __future__ import annotations

from typing import Optional

from ..core.atoms import Atom, atom, member, pos
from ..core.clauses import LPSClause, Rule
from ..core.formulas import AtomF, ForallIn, NotF, conj
from ..core.program import AnyClause, Program
from ..core.sorts import SORT_A
from .fresh import FreshNames
from .ldl import candidate_rules, proper_subset_rule
from .positive import compile_program


def setof_rules(
    a_pred: str,
    b_pred: str,
    fresh: Optional[FreshNames] = None,
) -> list[Rule]:
    """The paper's C/B construction for ``B(X) ⇔ X = {x | A(x)}``."""
    fresh = fresh or FreshNames(reserved={a_pred, b_pred}, prefix="setof")
    psub = fresh.predicate("psub")
    c_pred = fresh.predicate("c")

    x_set = fresh.set_var("SX")
    y_set = fresh.set_var("SY")
    xa = fresh.var(SORT_A, "sx")
    ya = fresh.var(SORT_A, "sy")

    rules = [proper_subset_rule(psub, fresh)]
    rules.append(
        Rule(
            head=Atom(c_pred, (x_set,)),
            body=conj(
                AtomF(atom(psub, x_set, y_set)),
                ForallIn(ya, y_set, AtomF(atom(a_pred, ya))),
            ),
        )
    )
    rules.append(
        Rule(
            head=Atom(b_pred, (x_set,)),
            body=conj(
                ForallIn(xa, x_set, AtomF(atom(a_pred, xa))),
                NotF(AtomF(Atom(c_pred, (x_set,)))),
            ),
        )
    )
    return rules


def setof_program(
    a_pred: str,
    b_pred: str,
    base: Optional[Program] = None,
    materialise_candidates: bool = True,
    faithful: bool = False,
) -> Program:
    """A complete runnable program defining ``B(X) ⇔ X = {x | A(x)}``.

    ``base`` supplies the clauses defining ``a_pred``.  When
    ``materialise_candidates`` is set (default), grouping + ``subset_enum``
    rules put every subset of the witness universe into the active domain so
    the maximality test can quantify over them; run the result with the
    ``with_set_builtins()`` registry.
    """
    fresh = FreshNames(base, reserved={a_pred, b_pred}, prefix="setof")
    items: list[Rule | AnyClause] = list(base.clauses) if base is not None else []
    items.extend(setof_rules(a_pred, b_pred, fresh))
    if materialise_candidates:
        items.extend(candidate_rules(a_pred, fresh.predicate("cand"), fresh))
    mode = base.mode if base is not None else "lps"
    return compile_program(items, mode=mode, faithful=faithful, fresh=fresh)
