"""Theorem 10: ELPS ≡ Horn + union ≡ Horn + scons.

Definition 15 extends a logic ``L`` with a fixed-interpretation predicate
``union(x, y, z)`` (``z = x ∪ y``) or ``scons(x, y, z)`` (``z = {x} ∪ y``).
Theorem 10 proves the three program classes equivalent; this module
implements all the translations constructively:

**Direction 1** (:func:`from_horn_union`): a Horn program over ``L+union``
becomes an ELPS program over ``L`` by renaming ``union`` to a fresh
predicate ``p`` and axiomatising it::

    p(x, y, z) :- (∀w∈z)(w∈x ∨ w∈y) ∧ (∀w∈x)(w∈z) ∧ (∀w∈y)(w∈z)

The disjunction is removed with Theorem 6 (the paper notes "we have to use
Theorem 6 to eliminate the disjunction, and this construction introduces
additional auxiliary predicates").

**Direction 2** (:func:`from_horn_scons`): likewise for ``scons`` via::

    r(x, y, z) :- (∀w∈y)(w∈z) ∧ x ∈ z ∧ (∀w∈z)(w∈y ∨ w = x)

**Direction 3** (:func:`to_horn_union` / :func:`to_horn_scons`): an ELPS
clause ``A :- (∀x1∈Y1)…(∀xn∈Yn)(B1 ∧ … ∧ Bm)`` becomes recursive Horn
clauses that *iterate* over the quantified sets by element decomposition —
the paper's ``A :- scons(y1, X1, Y1) ∧ …`` recursion with its singleton
base case.  We eliminate quantifiers innermost-first; each elimination
introduces one recursive auxiliary predicate ``q`` with

    q(v̄, ∅)                                        (empty-set base)
    q(v̄, Y) :- union({x}, X, Y) ∧ M[x] ∧ q(v̄, X)   (peel one element)

(or ``scons(x, X, Y)`` in the scons variant) and replaces the quantified
subformula by ``q(v̄, Y)``.  Note: the paper's sketch uses a singleton base
case ``X1 = {y1}``; we use the empty set as base instead, which also covers
the vacuous-quantification case ``Y = ∅`` that the singleton base misses —
see EXPERIMENTS.md (E14) for the machine-checked equivalence.
"""

from __future__ import annotations

from typing import Optional

from ..core.atoms import Atom, Literal, atom, equals, member, pos
from ..core.clauses import GroupingClause, LPSClause, Rule
from ..core.errors import ClauseError
from ..core.formulas import AtomF, ForallIn, OrF, conj, disj
from ..core.program import AnyClause, MODE_ELPS, Program, rename_predicates
from ..core.sorts import SORT_A, SORT_S
from ..core.terms import EMPTY_SET, SetExpr, Term, Var
from .fresh import FreshNames
from .positive import compile_program

#: The reserved names of the Definition 15 predicates.
UNION, SCONS = "union", "scons"


# ---------------------------------------------------------------------------
# Horn + union / Horn + scons  →  ELPS  (Theorem 10, parts 1 and 2)
# ---------------------------------------------------------------------------

def union_axiom(pred: str) -> Rule:
    """The defining positive-formula rule for a union predicate."""
    x, y, z = Var("ax_x", SORT_S), Var("ax_y", SORT_S), Var("ax_z", SORT_S)
    w = Var("ax_w", SORT_A)
    body = conj(
        ForallIn(w, z, disj(AtomF(member(w, x)), AtomF(member(w, y)))),
        ForallIn(w, x, AtomF(member(w, z))),
        ForallIn(w, y, AtomF(member(w, z))),
    )
    return Rule(head=atom(pred, x, y, z), body=body)


def scons_axiom(pred: str) -> Rule:
    """The defining positive-formula rule for a scons predicate."""
    x = Var("ax_e", SORT_A)
    y, z = Var("ax_y", SORT_S), Var("ax_z", SORT_S)
    w = Var("ax_w", SORT_A)
    body = conj(
        ForallIn(w, y, AtomF(member(w, z))),
        AtomF(member(x, z)),
        ForallIn(w, z, disj(AtomF(member(w, y)), AtomF(equals(w, x)))),
    )
    return Rule(head=atom(pred, x, y, z), body=body)


def from_horn_union(program: Program, faithful: bool = False) -> Program:
    """Translate a Horn-over-``L+union`` program to pure ELPS (Theorem 10(1)).

    Every occurrence of the ``union`` predicate is renamed to a fresh
    predicate, which is then axiomatised; the axiom's disjunction is
    compiled away via Theorem 6.
    """
    return _from_horn(program, UNION, union_axiom, faithful)


def from_horn_scons(program: Program, faithful: bool = False) -> Program:
    """Translate a Horn-over-``L+scons`` program to pure ELPS (Theorem 10(2))."""
    return _from_horn(program, SCONS, scons_axiom, faithful)


def _from_horn(
    program: Program, special: str, axiom, faithful: bool
) -> Program:
    for c in program.lps_clauses():
        if c.head.pred == special:
            raise ClauseError(
                f"{special!r} may not appear in a clause head (Definition 15)"
            )
    fresh = FreshNames(program, reserved={special}, prefix="t10")
    new_pred = fresh.predicate(special)
    renamed = rename_predicates(program, {special: new_pred})
    rules: list[Rule | AnyClause] = list(renamed.clauses)
    rules.append(axiom(new_pred))
    return compile_program(rules, mode=MODE_ELPS, faithful=faithful, fresh=fresh)


# ---------------------------------------------------------------------------
# ELPS  →  Horn + union / Horn + scons  (Theorem 10, parts 3 and 4)
# ---------------------------------------------------------------------------

def to_horn_union(program: Program) -> Program:
    """Eliminate restricted quantifiers in favour of ``union`` recursion."""
    return _to_horn(program, use_scons=False)


def to_horn_scons(program: Program) -> Program:
    """Eliminate restricted quantifiers in favour of ``scons`` recursion."""
    return _to_horn(program, use_scons=True)


def _to_horn(program: Program, use_scons: bool) -> Program:
    fresh = FreshNames(program, reserved={UNION, SCONS}, prefix="it")
    out: list[AnyClause] = []
    for c in program.clauses:
        if isinstance(c, GroupingClause):
            out.append(c)
            continue
        out.extend(_eliminate_clause(c, fresh, use_scons))
    return Program(tuple(out), mode=program.mode)


def _eliminate_clause(
    c: LPSClause, fresh: FreshNames, use_scons: bool
) -> list[LPSClause]:
    if not c.quantifiers:
        return [c]
    out: list[LPSClause] = []
    # Innermost-first: the matrix starts as the literal conjunction and each
    # elimination wraps it in a recursive-iteration predicate call.
    matrix: tuple[Literal, ...] = c.body
    for bound_var, source in reversed(c.quantifiers):
        matrix = _eliminate_one(
            bound_var, source, matrix, fresh, use_scons, out
        )
    out.append(LPSClause(head=c.head, body=matrix))
    return out


def _eliminate_one(
    bound_var: Var,
    source: Term,
    matrix: tuple[Literal, ...],
    fresh: FreshNames,
    use_scons: bool,
    sink: list[LPSClause],
) -> tuple[Literal, ...]:
    """Replace ``(∀ bound_var ∈ source) matrix`` by a recursion literal.

    Returns the literal tuple that stands for the quantified subformula in
    the enclosing context.
    """
    free: set[Var] = set()
    for lit in matrix:
        free |= lit.free_vars()
    free.discard(bound_var)
    # Parameters are the variables the matrix needs besides the iteration
    # element; the quantifier's source only enters as the (last) iteration
    # argument of the call literal.  If the matrix itself mentions the
    # source variable, it stays a parameter as well and is passed through
    # the recursion unchanged.
    params = tuple(sorted(free, key=lambda v: (v.sort, v.name)))
    q_pred = fresh.predicate("iter")

    iter_set = fresh.set_var("It")
    rest_set = fresh.set_var("Rest")
    elem = Var(bound_var.name, bound_var.var_sort)

    # Base case: q(v̄, ∅).
    sink.append(
        LPSClause(head=Atom(q_pred, params + (EMPTY_SET,)))
    )
    # Recursive case: q(v̄, Y) :- decomp(x, X, Y) ∧ M[x] ∧ q(v̄, X).
    if use_scons:
        decomp = pos(atom(SCONS, elem, rest_set, iter_set))
    else:
        decomp = pos(atom(UNION, SetExpr((elem,)), rest_set, iter_set))
    rec_body = (decomp,) + matrix + (
        pos(Atom(q_pred, params + (rest_set,))),
    )
    sink.append(
        LPSClause(head=Atom(q_pred, params + (iter_set,)), body=rec_body)
    )
    return (pos(Atom(q_pred, params + (source,))),)
