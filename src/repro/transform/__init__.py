"""Program transformations: the paper's constructive theorems.

* :mod:`repro.transform.positive` — Theorem 6 (positive formulas → LPS);
* :mod:`repro.transform.union_scons` — Theorem 10 (ELPS ↔ Horn+union ↔
  Horn+scons);
* :mod:`repro.transform.ldl` — Theorem 11/12 (LDL grouping ↔ ELPS with
  stratified negation);
* :mod:`repro.transform.setof` — Section 4.2 (set construction with
  stratified negation, complementing Theorem 8's impossibility);
* :mod:`repro.transform.fresh` — auxiliary-name bookkeeping shared by all.
"""

from .fresh import FreshNames
from .positive import compile_program, compile_rule
from .union_scons import (
    SCONS,
    UNION,
    from_horn_scons,
    from_horn_union,
    scons_axiom,
    to_horn_scons,
    to_horn_union,
    union_axiom,
)
from .ldl import (
    candidate_rules,
    grouping_to_elps,
    proper_subset_rule,
    union_to_grouping,
)
from .setof import setof_program, setof_rules
from .demand import add_demand, demanded_sum_program

__all__ = [
    "FreshNames",
    "compile_rule",
    "compile_program",
    "UNION",
    "SCONS",
    "union_axiom",
    "scons_axiom",
    "from_horn_union",
    "from_horn_scons",
    "to_horn_union",
    "to_horn_scons",
    "grouping_to_elps",
    "union_to_grouping",
    "proper_subset_rule",
    "candidate_rules",
    "setof_program",
    "setof_rules",
    "add_demand",
    "demanded_sum_program",
]
