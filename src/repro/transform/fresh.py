"""Fresh-name generation for program transformations.

Every construction in Sections 4 and 6 of the paper introduces auxiliary
predicates ("Let N1 and N2 be new predicates...") and fresh variables; this
module centralises that bookkeeping so generated names never collide with
the source program's.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional

from ..core.program import Program
from ..core.sorts import SORT_A, SORT_S
from ..core.terms import Var


class FreshNames:
    """A generator of predicate and variable names disjoint from a program's."""

    def __init__(
        self,
        program: Optional[Program] = None,
        reserved: Iterable[str] = (),
        prefix: str = "aux",
    ) -> None:
        self._taken: set[str] = set(reserved)
        if program is not None:
            self._taken |= set(program.predicates())
            self._taken |= set(program.function_symbols())
            for t in program.all_terms():
                from ..core.terms import free_vars

                self._taken |= {v.name for v in free_vars(t)}
        self._prefix = prefix
        self._pred_counter = itertools.count(1)
        self._var_counter = itertools.count(1)

    def predicate(self, hint: str = "") -> str:
        """A fresh predicate name, optionally embedding a readable hint."""
        while True:
            n = next(self._pred_counter)
            name = f"{self._prefix}_{hint}_{n}" if hint else f"{self._prefix}_{n}"
            if name not in self._taken:
                self._taken.add(name)
                return name

    def var(self, sort: str = SORT_A, hint: str = "v") -> Var:
        """A fresh variable of the given sort."""
        while True:
            n = next(self._var_counter)
            name = f"{hint}_{n}"
            if name not in self._taken:
                self._taken.add(name)
                return Var(name, sort)

    def set_var(self, hint: str = "S") -> Var:
        return self.var(SORT_S, hint)

    def reserve(self, name: str) -> None:
        self._taken.add(name)
