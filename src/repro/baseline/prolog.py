"""A from-scratch mini-Prolog: SLD resolution over first-order terms.

The introduction of the paper motivates LPS by contrast with how "a
programmer would normally deal with a set of objects in Prolog": encode the
set as a **list** and define predicates by recursion on list structure
(``member``, the clumsy ``disj``).  To benchmark that contrast honestly we
need an actual Prolog; this module implements the classical machinery from
scratch:

* terms: variables, atoms (constants), integers and compound terms, with
  lists as the usual ``'.'/2`` + ``[]`` encoding;
* sound unification with occurs check (configurable off, Prolog-style);
* SLD resolution with leftmost selection and clause order, implemented
  iteratively with an explicit trail so deep recursions don't hit Python's
  stack limit;
* a tiny builtin set (``=``, ``\\=``, comparison, integer arithmetic via
  ``is/2``) sufficient for the paper's list programs.

It is deliberately minimal — no cut, no negation — because the baseline
programs need none of that.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Optional, Sequence, Union

from ..core.errors import EvaluationError


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class PVar:
    """A Prolog variable (identity by name within a clause)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class PAtom:
    """A Prolog atom or integer constant."""

    value: Union[str, int]

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, slots=True)
class PStruct:
    """A compound term ``f(t1, ..., tn)``."""

    functor: str
    args: tuple

    def __str__(self) -> str:
        if self.functor == "." and len(self.args) == 2:
            return _list_str(self)
        return f"{self.functor}({', '.join(str(a) for a in self.args)})"


PTerm = Union[PVar, PAtom, PStruct]

NIL = PAtom("[]")


def _list_str(t: PTerm) -> str:
    items = []
    while isinstance(t, PStruct) and t.functor == "." and len(t.args) == 2:
        items.append(str(t.args[0]))
        t = t.args[1]
    tail = "" if t == NIL else f"|{t}"
    return "[" + ", ".join(items) + tail + "]"


def plist(items: Iterable[Any], tail: PTerm = NIL) -> PTerm:
    """Build a Prolog list term from Python values."""
    out = tail
    for item in reversed(list(items)):
        out = PStruct(".", (to_pterm(item), out))
    return out


def to_pterm(value: Any) -> PTerm:
    """Convert Python values: str/int → atom, list/tuple → list term."""
    if isinstance(value, (PVar, PAtom, PStruct)):
        return value
    if isinstance(value, (str, int)):
        return PAtom(value)
    if isinstance(value, (list, tuple)):
        return plist(value)
    raise EvaluationError(f"cannot convert {value!r} to a Prolog term")


def from_pterm(t: PTerm) -> Any:
    """Convert ground terms back to Python (lists become Python lists)."""
    if isinstance(t, PAtom):
        if t == NIL:
            return []
        return t.value
    if isinstance(t, PStruct) and t.functor == "." and len(t.args) == 2:
        out = [from_pterm(t.args[0])]
        rest = from_pterm(t.args[1])
        if isinstance(rest, list):
            return out + rest
        return out + [rest]
    if isinstance(t, PStruct):
        return (t.functor, *[from_pterm(a) for a in t.args])
    raise EvaluationError(f"non-ground term {t}")


# ---------------------------------------------------------------------------
# Bindings
# ---------------------------------------------------------------------------

class Bindings:
    """A mutable binding store with a trail for backtracking."""

    __slots__ = ("_map", "_trail")

    def __init__(self) -> None:
        self._map: dict[PVar, PTerm] = {}
        self._trail: list[PVar] = []

    def mark(self) -> int:
        return len(self._trail)

    def undo(self, mark: int) -> None:
        while len(self._trail) > mark:
            del self._map[self._trail.pop()]

    def bind(self, v: PVar, t: PTerm) -> None:
        self._map[v] = t
        self._trail.append(v)

    def walk(self, t: PTerm) -> PTerm:
        while isinstance(t, PVar) and t in self._map:
            t = self._map[t]
        return t

    def resolve(self, t: PTerm) -> PTerm:
        """Fully substitute (for answer extraction)."""
        t = self.walk(t)
        if isinstance(t, PStruct):
            return PStruct(t.functor, tuple(self.resolve(a) for a in t.args))
        return t


def unify(t1: PTerm, t2: PTerm, b: Bindings, occurs_check: bool = False) -> bool:
    """Destructive unification; caller must undo via the trail on failure."""
    stack = [(t1, t2)]
    while stack:
        a, c = stack.pop()
        a, c = b.walk(a), b.walk(c)
        if a == c:
            continue
        if isinstance(a, PVar):
            if occurs_check and _occurs(a, c, b):
                return False
            b.bind(a, c)
            continue
        if isinstance(c, PVar):
            if occurs_check and _occurs(c, a, b):
                return False
            b.bind(c, a)
            continue
        if isinstance(a, PAtom) or isinstance(c, PAtom):
            return False
        if a.functor != c.functor or len(a.args) != len(c.args):
            return False
        stack.extend(zip(a.args, c.args))
    return True


def _occurs(v: PVar, t: PTerm, b: Bindings) -> bool:
    t = b.walk(t)
    if t == v:
        return True
    if isinstance(t, PStruct):
        return any(_occurs(v, a, b) for a in t.args)
    return False


# ---------------------------------------------------------------------------
# Clauses and the interpreter
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PClause:
    """``head :- body``, body a tuple of goals."""

    head: PStruct
    body: tuple = ()


def struct(functor: str, *args: Any) -> PStruct:
    return PStruct(functor, tuple(to_pterm(a) for a in args))


class PrologEngine:
    """Leftmost-selection SLD resolution with iterative deepening disabled
    (plain depth bound) — the classical Prolog search strategy."""

    def __init__(self, clauses: Sequence[PClause], max_depth: int = 1_000_000):
        self._by_functor: dict[tuple[str, int], list[PClause]] = {}
        for c in clauses:
            key = (c.head.functor, len(c.head.args))
            self._by_functor.setdefault(key, []).append(c)
        self.max_depth = max_depth
        self._fresh = itertools.count()

    def solve(self, *goals: PStruct) -> Iterator[dict[str, Any]]:
        """Enumerate answers as name → resolved-term dictionaries."""
        b = Bindings()
        query_vars = sorted(_vars_of_terms(goals), key=lambda v: v.name)
        for _ in self._solve(list(goals), b, 0):
            yield {
                v.name: b.resolve(v)
                for v in query_vars
            }

    def holds(self, *goals: PStruct) -> bool:
        return next(self.solve(*goals), None) is not None

    def count(self, *goals: PStruct) -> int:
        return sum(1 for _ in self.solve(*goals))

    # -- core loop ----------------------------------------------------------------

    def _solve(self, goals: list, b: Bindings, depth: int) -> Iterator[None]:
        if not goals:
            yield None
            return
        if depth > self.max_depth:
            raise EvaluationError(f"SLD depth limit {self.max_depth} exceeded")
        goal = b.walk(goals[0])
        rest = goals[1:]
        if isinstance(goal, PAtom):
            goal = PStruct(goal.value, ())  # 0-ary predicate
        if not isinstance(goal, PStruct):
            raise EvaluationError(f"goal {goal} is not callable")

        builtin = _BUILTINS.get((goal.functor, len(goal.args)))
        if builtin is not None:
            mark = b.mark()
            for _ in builtin(goal.args, b):
                yield from self._solve(rest, b, depth + 1)
            b.undo(mark)
            return

        for clause in self._by_functor.get((goal.functor, len(goal.args)), ()):
            renamed = self._rename(clause)
            mark = b.mark()
            if unify(goal, renamed.head, b):
                yield from self._solve(list(renamed.body) + rest, b, depth + 1)
            b.undo(mark)

    def _rename(self, c: PClause) -> PClause:
        suffix = f"_{next(self._fresh)}"
        mapping: dict[PVar, PVar] = {}

        def ren(t: PTerm) -> PTerm:
            if isinstance(t, PVar):
                if t not in mapping:
                    mapping[t] = PVar(t.name + suffix)
                return mapping[t]
            if isinstance(t, PStruct):
                return PStruct(t.functor, tuple(ren(a) for a in t.args))
            return t

        return PClause(
            head=ren(c.head),
            body=tuple(ren(g) for g in c.body),
        )


def _vars_of_terms(terms: Iterable[PTerm]) -> set[PVar]:
    out: set[PVar] = set()

    def walk(t: PTerm) -> None:
        if isinstance(t, PVar):
            out.add(t)
        elif isinstance(t, PStruct):
            for a in t.args:
                walk(a)

    for t in terms:
        walk(t)
    return out


# ---------------------------------------------------------------------------
# Builtins:  =/2, \=/2, is/2, </2, =</2, >/2, >=/2, ==/2, \==/2
# ---------------------------------------------------------------------------

def _bi_unify(args, b: Bindings):
    mark = b.mark()
    if unify(args[0], args[1], b):
        yield None
    else:
        b.undo(mark)


def _bi_not_unify(args, b: Bindings):
    mark = b.mark()
    ok = unify(args[0], args[1], b)
    b.undo(mark)
    if not ok:
        yield None


def _eval_arith(t: PTerm, b: Bindings) -> int:
    t = b.walk(t)
    if isinstance(t, PAtom) and isinstance(t.value, int):
        return t.value
    if isinstance(t, PStruct) and len(t.args) == 2:
        l = _eval_arith(t.args[0], b)
        r = _eval_arith(t.args[1], b)
        if t.functor == "+":
            return l + r
        if t.functor == "-":
            return l - r
        if t.functor == "*":
            return l * r
        if t.functor == "//":
            return l // r
    raise EvaluationError(f"cannot evaluate arithmetic term {t}")


def _bi_is(args, b: Bindings):
    value = PAtom(_eval_arith(args[1], b))
    mark = b.mark()
    if unify(args[0], value, b):
        yield None
    else:
        b.undo(mark)


def _make_compare(op):
    def bi(args, b: Bindings):
        if op(_eval_arith(args[0], b), _eval_arith(args[1], b)):
            yield None
    return bi


def _bi_struct_eq(args, b: Bindings):
    if b.resolve(args[0]) == b.resolve(args[1]):
        yield None


def _bi_struct_neq(args, b: Bindings):
    if b.resolve(args[0]) != b.resolve(args[1]):
        yield None


import operator as _op

_BUILTINS = {
    ("=", 2): _bi_unify,
    ("\\=", 2): _bi_not_unify,
    ("is", 2): _bi_is,
    ("<", 2): _make_compare(_op.lt),
    ("=<", 2): _make_compare(_op.le),
    (">", 2): _make_compare(_op.gt),
    (">=", 2): _make_compare(_op.ge),
    ("==", 2): _bi_struct_eq,
    ("\\==", 2): _bi_struct_neq,
}
