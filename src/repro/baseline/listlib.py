"""The paper's introduction, verbatim: sets as Prolog lists.

These are the list programs the introduction uses to motivate LPS — the
programmer "has to specify a lot of details about the implementation, such
as how to iterate over the sets":

``member/2``::

    member(X, [X | L]).
    member(X, [Y | L]) :- member(X, L).

``disj/2`` (the paper's recursion on both lists)::

    disj([], L).
    disj([X | L1], L2) :- nonmember(X, L2), disj(L1, L2).
    nonmember(X, []).
    nonmember(X, [Y | L]) :- X \\= Y, nonmember(X, L).

plus ``subset/2``, ``union/3`` and ``sumlist/2`` in the same style, used by
benchmark B1 against the LPS engine's declarative definitions.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from .prolog import NIL, PClause, PrologEngine, PStruct, PVar, plist, struct

X, Y, L, L1, L2, L3, M, N, K = (PVar(n) for n in
                                ("X", "Y", "L", "L1", "L2", "L3", "M", "N", "K"))


def cons(head, tail) -> PStruct:
    return PStruct(".", (head, tail))


def list_clauses() -> list[PClause]:
    """The introduction's list library."""
    return [
        # member(X, [X|L]).
        PClause(struct("member", X, cons(X, L))),
        # member(X, [Y|L]) :- member(X, L).
        PClause(struct("member", X, cons(Y, L)), (struct("member", X, L),)),
        # nonmember(X, []).
        PClause(struct("nonmember", X, NIL)),
        # nonmember(X, [Y|L]) :- X \= Y, nonmember(X, L).
        PClause(
            struct("nonmember", X, cons(Y, L)),
            (struct("\\=", X, Y), struct("nonmember", X, L)),
        ),
        # disj([], L).
        PClause(struct("disj", NIL, L)),
        # disj([X|L1], L2) :- nonmember(X, L2), disj(L1, L2).
        PClause(
            struct("disj", cons(X, L1), L2),
            (struct("nonmember", X, L2), struct("disj", L1, L2)),
        ),
        # subset([], L).
        PClause(struct("subset", NIL, L)),
        # subset([X|L1], L2) :- member(X, L2), subset(L1, L2).
        PClause(
            struct("subset", cons(X, L1), L2),
            (struct("member", X, L2), struct("subset", L1, L2)),
        ),
        # union([], L, L).
        PClause(struct("union", NIL, L, L)),
        # union([X|L1], L2, [X|L3]) :- nonmember(X, L2), union(L1, L2, L3).
        PClause(
            struct("union", cons(X, L1), L2, cons(X, L3)),
            (struct("nonmember", X, L2), struct("union", L1, L2, L3)),
        ),
        # union([X|L1], L2, L3) :- member(X, L2), union(L1, L2, L3).
        PClause(
            struct("union", cons(X, L1), L2, L3),
            (struct("member", X, L2), struct("union", L1, L2, L3)),
        ),
        # sumlist([], 0).
        PClause(struct("sumlist", NIL, 0)),
        # sumlist([X|L], N) :- sumlist(L, M), N is X + M.
        PClause(
            struct("sumlist", cons(X, L), N),
            (struct("sumlist", L, M), struct("is", N, PStruct("+", (X, M)))),
        ),
    ]


class ListSetBaseline:
    """Convenience wrapper: the intro's list encoding as a set library."""

    def __init__(self, max_depth: int = 1_000_000) -> None:
        self.engine = PrologEngine(list_clauses(), max_depth=max_depth)

    def member(self, x: Any, xs: Sequence[Any]) -> bool:
        return self.engine.holds(struct("member", x, plist(xs)))

    def disjoint(self, xs: Sequence[Any], ys: Sequence[Any]) -> bool:
        return self.engine.holds(struct("disj", plist(xs), plist(ys)))

    def subset(self, xs: Sequence[Any], ys: Sequence[Any]) -> bool:
        return self.engine.holds(struct("subset", plist(xs), plist(ys)))

    def union(self, xs: Sequence[Any], ys: Sequence[Any]) -> list[Any]:
        from .prolog import from_pterm

        z = PVar("Z")
        for answer in self.engine.solve(struct("union", plist(xs), plist(ys), z)):
            return from_pterm(answer["Z"])
        raise AssertionError("union/3 always has a solution")

    def sumlist(self, xs: Sequence[int]) -> int:
        from .prolog import from_pterm

        n = PVar("N")
        for answer in self.engine.solve(struct("sumlist", plist(xs), n)):
            return from_pterm(answer["N"])
        raise AssertionError("sumlist/2 always has a solution")
