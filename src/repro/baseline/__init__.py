"""Baselines: the introduction's Prolog-with-lists encoding of sets.

* :mod:`repro.baseline.prolog` — a from-scratch mini-Prolog (SLD
  resolution, unification, lists, arithmetic builtins);
* :mod:`repro.baseline.listlib` — the paper's ``member``/``disj`` list
  programs and friends, wrapped for the B1 benchmark.
"""

from .prolog import (
    NIL,
    Bindings,
    PAtom,
    PClause,
    PrologEngine,
    PStruct,
    PVar,
    from_pterm,
    plist,
    struct,
    to_pterm,
    unify,
)
from .listlib import ListSetBaseline, list_clauses

__all__ = [
    "PVar",
    "PAtom",
    "PStruct",
    "PClause",
    "NIL",
    "Bindings",
    "unify",
    "plist",
    "struct",
    "to_pterm",
    "from_pterm",
    "PrologEngine",
    "list_clauses",
    "ListSetBaseline",
]
