"""Concrete syntax: lexer, parser, sort inference, pretty-printer."""

from .lexer import Token, tokenize
from .parser import Parser, parse_atom, parse_program, parse_term
from .pretty import (
    pretty_atom,
    pretty_clause,
    pretty_formula,
    pretty_program,
    pretty_term,
)
from .sortinfer import BUILTIN_SORTS, SortInference, infer_sorts

__all__ = [
    "tokenize",
    "Token",
    "Parser",
    "parse_program",
    "parse_atom",
    "parse_term",
    "pretty_term",
    "pretty_atom",
    "pretty_clause",
    "pretty_formula",
    "pretty_program",
    "BUILTIN_SORTS",
    "SortInference",
    "infer_sorts",
]
