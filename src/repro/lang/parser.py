"""Recursive-descent parser for the LPS/ELPS/LDL surface syntax.

Grammar (see :mod:`repro.lang.lexer` for tokens)::

    program    := (directive | clause)*
    directive  := '#' name                      -- '#elps' or '#lps'
    clause     := head [ ':-' body ] '.'
    head       := ident [ '(' headarg (',' headarg)* ')' ]
    headarg    := '<' VARIABLE '>' | term       -- '<X>' is LDL grouping
    body       := or_expr
    or_expr    := and_expr (('or' | ';') and_expr)*
    and_expr   := unary ((',' | 'and') unary)*
    unary      := 'not' unary | quantifier | primary
    quantifier := ('forall' | 'exists') VARIABLE 'in' term qbody
    qbody      := quantifier | '(' body ')'
    primary    := '(' body ')' | 'true' | comparison
    comparison := expr [ ('=' | '!=' | 'in' | '<' | '<=' | '>' | '>=') expr ]
    expr       := mul (('+' | '-') mul)*        -- arithmetic sugar
    mul        := term ('*' term)*
    term       := VARIABLE | INT | quoted | ident [ '(' expr,* ')' ]
                | '{' [ expr,* ] '}'

A ``comparison`` without an operator must be a predicate atom.  Arithmetic
operators are sugar: ``M + N = K`` becomes the builtin atom ``plus(M,N,K)``,
and nested expressions are flattened with fresh temporaries.

Variables are capitalised; their sort (``a`` vs ``s``) is inferred by
:mod:`repro.lang.sortinfer` in LPS mode, or left untyped in ELPS mode.
Rules whose bodies are not already in Definition 5's prefix form are
compiled to pure LPS clauses via the Theorem 6 transformation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.atoms import Atom, Literal, neg, pos
from ..core.clauses import GroupingClause, LPSClause, Rule
from ..core.errors import ParseError
from ..core.formulas import (
    AndF,
    AtomF,
    ExistsIn,
    ForallIn,
    Formula,
    NotF,
    OrF,
    TRUE,
    conj,
    disj,
)
from ..core.program import MODE_ELPS, MODE_LPS, Program
from ..core.sorts import EQUALS, MEMBER, SORT_U
from ..core.terms import App, Const, SetExpr, Term, Var
from .lexer import (
    DIRECTIVE,
    EOF,
    IDENT,
    INT,
    KEYWORD,
    PUNCT,
    STRING,
    Token,
    VARIABLE,
    tokenize,
)

_COMPARISONS = {
    "<": "lt",
    "<=": "le",
    ">": "gt",
    ">=": "ge",
}

_ARITH = {"+": "plus", "-": "minus", "*": "times"}


@dataclass
class _BinOp:
    """A transient arithmetic node, flattened before formula construction."""

    op: str
    left: "Term | _BinOp"
    right: "Term | _BinOp"


@dataclass
class _Apply:
    """A transient ``name(args)`` node: becomes an Atom in formula position
    or an App (with the Example 8 sort check) in term position."""

    name: str
    args: tuple

    line: int = 0
    column: int = 0


@dataclass
class ParsedRule:
    head: Atom
    body: Formula


@dataclass
class ParsedGrouping:
    pred: str
    head_args: tuple[Term, ...]
    group_pos: int
    group_var: Var
    body: Formula


Statement = "ParsedRule | ParsedGrouping"


class Parser:
    """One-pass parser producing untyped statements."""

    def __init__(self, source: str) -> None:
        self._tokens = tokenize(source)
        self._pos = 0
        self._tmp = itertools.count(1)
        self.directives: list[str] = []

    # -- token plumbing ------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _next(self) -> Token:
        t = self._tokens[self._pos]
        self._pos += 1
        return t

    def _at_punct(self, text: str) -> bool:
        t = self._peek()
        return t.kind == PUNCT and t.text == text

    def _at_keyword(self, text: str) -> bool:
        t = self._peek()
        return t.kind == KEYWORD and t.text == text

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        t = self._peek()
        if t.kind != kind or (text is not None and t.text != text):
            want = text or kind
            raise ParseError(
                f"expected {want!r}, found {t.text or t.kind!r}", t.line, t.column
            )
        return self._next()

    def _error(self, message: str) -> ParseError:
        t = self._peek()
        return ParseError(message, t.line, t.column)

    # -- program ----------------------------------------------------------------

    def parse_statements(self) -> list:
        out: list = []
        while self._peek().kind != EOF:
            if self._peek().kind == DIRECTIVE:
                self.directives.append(self._next().text)
                if self._at_punct("."):
                    self._next()
                continue
            out.append(self._parse_clause())
        return out

    def _parse_clause(self):
        head_tok = self._peek()
        pred, args, group = self._parse_head()
        body: Formula = TRUE
        if self._at_punct(":-"):
            self._next()
            body = self._parse_body()
        self._expect(PUNCT, ".")
        if group is not None:
            group_pos, group_var = group
            if isinstance(body, type(TRUE)):
                raise ParseError(
                    "grouping clause requires a body", head_tok.line, head_tok.column
                )
            return ParsedGrouping(
                pred=pred,
                head_args=tuple(args),
                group_pos=group_pos,
                group_var=group_var,
                body=body,
            )
        return ParsedRule(head=Atom(pred, tuple(args)), body=body)

    def _parse_head(self):
        t = self._expect(IDENT)
        pred = t.text
        args: list[Term] = []
        group: Optional[tuple[int, Var]] = None
        if self._at_punct("("):
            self._next()
            index = 0
            while True:
                if self._at_punct("<"):
                    self._next()
                    v = self._expect(VARIABLE)
                    self._expect(PUNCT, ">")
                    if group is not None:
                        raise ParseError(
                            "at most one grouped argument per clause",
                            v.line, v.column,
                        )
                    group = (index, Var(v.text, SORT_U))
                else:
                    term, aux = self._parse_expr_term()
                    if aux:
                        raise self._error(
                            "arithmetic expressions are not allowed in heads"
                        )
                    args.append(self._resolve(term))
                index += 1
                if self._at_punct(","):
                    self._next()
                    continue
                break
            self._expect(PUNCT, ")")
        return pred, args, group

    # -- body formulas -------------------------------------------------------------

    def _parse_body(self) -> Formula:
        return self._parse_or()

    def _parse_or(self) -> Formula:
        parts = [self._parse_and()]
        while self._at_keyword("or") or self._at_punct(";"):
            self._next()
            parts.append(self._parse_and())
        return disj(*parts) if len(parts) > 1 else parts[0]

    def _parse_and(self) -> Formula:
        parts = [self._parse_unary()]
        while self._at_punct(",") or self._at_keyword("and"):
            self._next()
            parts.append(self._parse_unary())
        return conj(*parts) if len(parts) > 1 else parts[0]

    def _parse_unary(self) -> Formula:
        if self._at_keyword("not"):
            self._next()
            return NotF(self._parse_unary())
        if self._at_keyword("forall") or self._at_keyword("exists"):
            return self._parse_quantifier()
        return self._parse_primary()

    def _parse_quantifier(self) -> Formula:
        kw = self._next()
        v = self._expect(VARIABLE)
        self._expect(KEYWORD, "in")
        source, aux = self._parse_expr_term()
        if aux:
            raise self._error("arithmetic is not allowed in quantifier ranges")
        source = self._resolve(source)
        if self._at_keyword("forall") or self._at_keyword("exists"):
            body = self._parse_quantifier()
        else:
            self._expect(PUNCT, "(")
            body = self._parse_body()
            self._expect(PUNCT, ")")
        var = Var(v.text, SORT_U)
        if kw.text == "forall":
            return ForallIn(var, source, body)
        return ExistsIn(var, source, body)

    def _parse_primary(self) -> Formula:
        if self._at_punct("("):
            self._next()
            f = self._parse_body()
            self._expect(PUNCT, ")")
            return f
        if self._at_keyword("true"):
            self._next()
            return TRUE
        left, aux = self._parse_expr()
        op_tok = self._peek()
        op: Optional[str] = None
        if op_tok.kind == PUNCT and op_tok.text in ("=", "!=", "<", "<=", ">", ">="):
            op = op_tok.text
            self._next()
        elif op_tok.kind == KEYWORD and op_tok.text == "in":
            op = "in"
            self._next()
        if op is None:
            atom = self._term_to_atom(left)
            return conj(*aux, AtomF(atom)) if aux else AtomF(atom)
        right, aux2 = self._parse_expr()
        aux = aux + aux2
        if op == "=":
            # Sugar: a single top-level arithmetic node on one side becomes
            # the corresponding builtin atom directly (`M + N = K`).
            if isinstance(left, _BinOp) and not isinstance(right, _BinOp):
                l2, aux_l = self._flatten_children(left)
                atom = Atom(_ARITH[left.op], (l2[0], l2[1], right))
                return conj(*aux, *aux_l, AtomF(atom))
            if isinstance(right, _BinOp) and not isinstance(left, _BinOp):
                r2, aux_r = self._flatten_children(right)
                atom = Atom(_ARITH[right.op], (r2[0], r2[1], left))
                return conj(*aux, *aux_r, AtomF(atom))
            lt, aux_l = self._flatten(left)
            rt, aux_r = self._flatten(right)
            return conj(*aux, *aux_l, *aux_r, AtomF(Atom(EQUALS, (lt, rt))))
        lt, aux_l = self._flatten(left)
        rt, aux_r = self._flatten(right)
        aux = aux + aux_l + aux_r
        if op == "!=":
            return conj(*aux, AtomF(Atom("neq", (lt, rt))))
        if op == "in":
            return conj(*aux, AtomF(Atom(MEMBER, (lt, rt))))
        return conj(*aux, AtomF(Atom(_COMPARISONS[op], (lt, rt))))

    def _term_to_atom(self, t) -> Atom:
        if isinstance(t, _BinOp):
            raise self._error("arithmetic expression used where an atom is expected")
        if isinstance(t, _Apply):
            return Atom(t.name, tuple(self._resolve(a) for a in t.args))
        if isinstance(t, App):
            return Atom(t.fname, t.args)
        if isinstance(t, Const) and isinstance(t.value, str):
            return Atom(t.value, ())
        raise self._error(f"{t} is not an atom")

    # -- terms and arithmetic --------------------------------------------------------

    def _parse_expr(self):
        """Additive expression; returns (Term | _BinOp, aux_formulas)."""
        left, aux = self._parse_mul()
        while self._at_punct("+") or self._at_punct("-"):
            op = self._next().text
            right, aux2 = self._parse_mul()
            aux = aux + aux2
            left = _BinOp(op, left, right)
        return left, aux

    def _parse_mul(self):
        left, aux = self._parse_expr_term()
        while self._at_punct("*"):
            self._next()
            right, aux2 = self._parse_expr_term()
            aux = aux + aux2
            left = _BinOp("*", left, right)
        return left, aux

    def _parse_expr_term(self):
        """A basic term; returns (Term, aux_formulas)."""
        t = self._peek()
        if t.kind == VARIABLE:
            self._next()
            return Var(t.text, SORT_U), []
        if t.kind == INT:
            self._next()
            return Const(int(t.text)), []
        if (
            t.kind == PUNCT
            and t.text == "-"
            and self._tokens[self._pos + 1].kind == INT
        ):
            # A leading minus at term start is a negative integer literal
            # (the pretty-printer emits them); binary minus never reaches
            # here because _parse_expr consumes the operator first.
            self._next()
            return Const(-int(self._next().text)), []
        if t.kind == STRING:
            self._next()
            return Const(t.text), []
        if t.kind == IDENT:
            self._next()
            if self._at_punct("("):
                self._next()
                args: list[Term] = []
                aux: list[Formula] = []
                if not self._at_punct(")"):
                    while True:
                        raw, aux2 = self._parse_expr()
                        aux = aux + aux2
                        term, aux3 = self._flatten(raw)
                        aux = aux + aux3
                        args.append(term)
                        if self._at_punct(","):
                            self._next()
                            continue
                        break
                self._expect(PUNCT, ")")
                return _Apply(t.text, tuple(args), t.line, t.column), aux
            return Const(t.text), []
        if t.kind == PUNCT and t.text == "{":
            self._next()
            elems: list[Term] = []
            aux: list[Formula] = []
            if not self._at_punct("}"):
                while True:
                    raw, aux2 = self._parse_expr()
                    aux = aux + aux2
                    term, aux3 = self._flatten(raw)
                    aux = aux + aux3
                    elems.append(term)
                    if self._at_punct(","):
                        self._next()
                        continue
                    break
            self._expect(PUNCT, "}")
            from ..core.terms import canonicalize

            return canonicalize(SetExpr(tuple(elems))), aux
        raise ParseError(
            f"expected a term, found {t.text or t.kind!r}", t.line, t.column
        )

    def _resolve(self, node) -> Term:
        """Convert a transient _Apply into a real App term (term position)."""
        if isinstance(node, _Apply):
            from ..core.errors import SortError

            try:
                return App(node.name, tuple(self._resolve(a) for a in node.args))
            except SortError as exc:
                raise ParseError(str(exc), node.line, node.column) from exc
        if isinstance(node, _BinOp):
            raise self._error("arithmetic expression used where a term is expected")
        return node

    def _flatten(self, node):
        """Flatten an arithmetic tree to a term plus builtin conjuncts."""
        if not isinstance(node, _BinOp):
            return self._resolve(node), []
        (lchild, rchild), aux = self._flatten_children(node)
        tmp = Var(f"Tmp_{next(self._tmp)}", SORT_U)
        atom = Atom(_ARITH[node.op], (lchild, rchild, tmp))
        return tmp, aux + [AtomF(atom)]

    def _flatten_children(self, node: _BinOp):
        lt, aux_l = self._flatten(node.left)
        rt, aux_r = self._flatten(node.right)
        return (lt, rt), aux_l + aux_r


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------

def parse_program(
    source: str,
    mode: Optional[str] = None,
    faithful: bool = False,
) -> Program:
    """Parse a program text into a :class:`~repro.core.program.Program`.

    ``mode`` overrides the ``#lps`` / ``#elps`` directive (default LPS).
    Sort inference runs in LPS mode; rule bodies not already in Definition 5
    prefix form are compiled away per Theorem 6.
    """
    parser = Parser(source)
    statements = parser.parse_statements()
    if mode is None:
        if "elps" in parser.directives:
            mode = MODE_ELPS
        else:
            mode = MODE_LPS
    if mode == MODE_LPS:
        from .sortinfer import infer_sorts

        statements = infer_sorts(statements)
    return _assemble(statements, mode, faithful)


def _assemble(statements: Sequence, mode: str, faithful: bool) -> Program:
    from ..transform.positive import compile_program

    items: list = []
    for s in statements:
        if isinstance(s, ParsedGrouping):
            items.append(_to_grouping(s))
        else:
            clause = _try_prefix_clause(s)
            items.append(clause if clause is not None else Rule(s.head, s.body))
    program = compile_program(items, mode=mode, faithful=faithful)
    program.validate()
    return program


def _try_prefix_clause(s: ParsedRule) -> Optional[LPSClause]:
    """Recognise Definition 5 prefix form directly, avoiding auxiliaries."""
    quantifiers: list[tuple[Var, Term]] = []
    body = s.body
    seen: set[Var] = set()
    while isinstance(body, ForallIn):
        if body.var in seen:
            return None
        quantifiers.append((body.var, body.source))
        seen.add(body.var)
        body = body.body
    literals: list[Literal] = []
    parts = body.parts if isinstance(body, AndF) else (body,)
    for p in parts:
        if isinstance(p, AtomF):
            literals.append(pos(p.atom))
        elif isinstance(p, NotF) and isinstance(p.sub, AtomF):
            literals.append(neg(p.sub.atom))
        elif isinstance(p, type(TRUE)):
            continue
        else:
            return None
    return LPSClause(
        head=s.head, quantifiers=tuple(quantifiers), body=tuple(literals)
    )


def _to_grouping(s: ParsedGrouping) -> GroupingClause:
    body = s.body
    literals: list[Literal] = []
    parts = body.parts if isinstance(body, AndF) else (body,)
    for p in parts:
        if isinstance(p, AtomF):
            literals.append(pos(p.atom))
        elif isinstance(p, NotF) and isinstance(p.sub, AtomF):
            literals.append(neg(p.sub.atom))
        else:
            raise ParseError(
                "grouping clause bodies must be conjunctions of literals"
            )
    return GroupingClause(
        pred=s.pred,
        head_args=s.head_args,
        group_pos=s.group_pos,
        group_var=s.group_var,
        body=tuple(literals),
    )


def parse_term(source: str) -> Term:
    """Parse a single term (variables come out untyped)."""
    parser = Parser(source)
    raw, aux = parser.parse_expr_term_public()
    if aux:
        raise ParseError("arithmetic is not allowed in standalone terms")
    if parser._peek().kind != EOF:
        raise parser._error("trailing input after term")
    return parser._resolve(raw)


def parse_atom(source: str) -> Atom:
    """Parse a single atom (e.g. for queries); variables come out untyped."""
    parser = Parser(source)
    f = parser._parse_primary()
    if parser._peek().kind != EOF:
        raise parser._error("trailing input after atom")
    if isinstance(f, AtomF):
        return f.atom
    raise ParseError(f"{source!r} is not a single atom")


def _expr_term_public(self: Parser):
    return self._parse_expr_term()


Parser.parse_expr_term_public = _expr_term_public
