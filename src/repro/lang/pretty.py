"""Pretty-printer for programs, clauses and formulas.

Produces text in the concrete syntax of :mod:`repro.lang.parser`, so that
``parse_program(pretty(p))`` round-trips (the property tests check this).
"""

from __future__ import annotations

from ..core.atoms import Atom, Literal
from ..core.clauses import GroupingClause, LPSClause, Rule
from ..core.formulas import (
    AndF,
    AtomF,
    ExistsIn,
    ForallIn,
    Formula,
    NotF,
    OrF,
    TrueF,
)
from ..core.program import Program
from ..core.sorts import EQUALS, MEMBER
from ..core.terms import App, Const, SetExpr, SetValue, Term, Var
from .lexer import KEYWORDS

_COMPARISON_NAMES = {"lt": "<", "le": "<=", "gt": ">", "ge": ">="}


def _quote(value: str) -> str:
    """Quote a string payload, doubling embedded quotes (lexer folds back)."""
    return "'" + value.replace("'", "''") + "'"


def pretty_term(t: Term) -> str:
    if isinstance(t, Var):
        return t.name
    if isinstance(t, Const):
        if isinstance(t.value, int):
            return str(t.value)
        # Bare only when it re-lexes as a plain IDENT: keywords would come
        # back as KEYWORD tokens and fail to parse in term position.
        if (
            t.value
            and t.value[0].islower()
            and t.value.isidentifier()
            and t.value not in KEYWORDS
        ):
            return t.value
        return _quote(t.value)
    if isinstance(t, App):
        return f"{t.fname}({', '.join(pretty_term(a) for a in t.args)})"
    if isinstance(t, SetExpr):
        return "{" + ", ".join(pretty_term(e) for e in t.elems) + "}"
    if isinstance(t, SetValue):
        return "{" + ", ".join(pretty_term(e) for e in t.sorted_elems()) + "}"
    raise TypeError(f"not a term: {t!r}")


def pretty_atom(a: Atom) -> str:
    if a.pred == EQUALS and a.arity == 2:
        return f"{pretty_term(a.args[0])} = {pretty_term(a.args[1])}"
    if a.pred == MEMBER and a.arity == 2:
        return f"{pretty_term(a.args[0])} in {pretty_term(a.args[1])}"
    if a.pred == "neq" and a.arity == 2:
        return f"{pretty_term(a.args[0])} != {pretty_term(a.args[1])}"
    if a.pred in _COMPARISON_NAMES and a.arity == 2:
        op = _COMPARISON_NAMES[a.pred]
        return f"{pretty_term(a.args[0])} {op} {pretty_term(a.args[1])}"
    if not a.args:
        return a.pred
    return f"{a.pred}({', '.join(pretty_term(t) for t in a.args)})"


def pretty_literal(l: Literal) -> str:
    body = pretty_atom(l.atom)
    if l.positive:
        return body
    if l.atom.pred in (EQUALS, MEMBER, "neq") or l.atom.pred in _COMPARISON_NAMES:
        return f"not ({body})"
    return f"not {body}"


def pretty_formula(f: Formula) -> str:
    if isinstance(f, TrueF):
        return "true"
    if isinstance(f, AtomF):
        return pretty_atom(f.atom)
    if isinstance(f, NotF):
        inner = pretty_formula(f.sub)
        if isinstance(f.sub, AtomF) and not _is_operator_atom(f.sub.atom):
            return f"not {inner}"
        return f"not ({inner})"
    if isinstance(f, AndF):
        return ", ".join(_wrap(p) for p in f.parts) if f.parts else "true"
    if isinstance(f, OrF):
        return " or ".join(_wrap(p) for p in f.parts)
    if isinstance(f, ForallIn):
        return (
            f"forall {f.var.name} in {pretty_term(f.source)} "
            f"({pretty_formula(f.body)})"
        )
    if isinstance(f, ExistsIn):
        return (
            f"exists {f.var.name} in {pretty_term(f.source)} "
            f"({pretty_formula(f.body)})"
        )
    raise TypeError(f"not a formula: {f!r}")


def _is_operator_atom(a: Atom) -> bool:
    return a.pred in (EQUALS, MEMBER, "neq") or a.pred in _COMPARISON_NAMES


def _wrap(f: Formula) -> str:
    if isinstance(f, (AndF, OrF)):
        return f"({pretty_formula(f)})"
    return pretty_formula(f)


def pretty_clause(c) -> str:
    if isinstance(c, LPSClause):
        head = pretty_atom(c.head)
        if c.is_fact:
            return f"{head}."
        body = ", ".join(pretty_literal(l) for l in c.body) or "true"
        for v, s in reversed(c.quantifiers):
            body = f"forall {v.name} in {pretty_term(s)} ({body})"
        return f"{head} :- {body}."
    if isinstance(c, GroupingClause):
        args = [pretty_term(t) for t in c.head_args]
        args.insert(c.group_pos, f"<{c.group_var.name}>")
        body = ", ".join(pretty_literal(l) for l in c.body)
        return f"{c.pred}({', '.join(args)}) :- {body}."
    if isinstance(c, Rule):
        if isinstance(c.body, TrueF):
            return f"{pretty_atom(c.head)}."
        return f"{pretty_atom(c.head)} :- {pretty_formula(c.body)}."
    raise TypeError(f"not a clause: {c!r}")


def pretty_program(p: Program) -> str:
    lines = []
    if p.mode == "elps":
        lines.append("#elps")
    lines.extend(pretty_clause(c) for c in p.clauses)
    return "\n".join(lines)
