"""Tokenizer for the concrete LPS/ELPS/LDL syntax.

The surface syntax is Prolog-flavoured::

    % facts and Horn rules
    edge(a, b).
    path(X, Z) :- edge(X, Y), path(Y, Z).

    % the paper's Example 1, with restricted quantifiers
    disj(S, T) :- forall X in S (forall Y in T (X != Y)).

    % LDL grouping (Definition 14)
    parts(P, <C>) :- component(P, C).

Identifiers starting with an upper-case letter are variables (their sort is
inferred — see :mod:`repro.lang.sortinfer`); lower-case identifiers are
constants or predicate/function symbols; ``{...}`` builds set terms;
``%`` starts a line comment; ``#elps`` selects ELPS mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..core.errors import ParseError

KEYWORDS = {"forall", "exists", "in", "not", "or", "and", "true"}

#: Token kinds.
IDENT = "IDENT"          # lower-case identifier
VARIABLE = "VARIABLE"    # upper-case identifier
INT = "INT"
STRING = "STRING"
PUNCT = "PUNCT"
KEYWORD = "KEYWORD"
DIRECTIVE = "DIRECTIVE"  # '#name'
EOF = "EOF"

_PUNCT_2 = (":-", "!=", "<=", ">=")
_PUNCT_1 = "(){},.=<>+-*;"


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int
    column: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind}({self.text!r})@{self.line}:{self.column}"


def tokenize(source: str) -> list[Token]:
    """Tokenize a program text; raises :class:`ParseError` on bad input."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(k: int) -> None:
        nonlocal i, line, col
        for _ in range(k):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            advance(1)
            continue
        if ch == "%":
            while i < n and source[i] != "\n":
                advance(1)
            continue
        start_line, start_col = line, col
        two = source[i:i + 2]
        if two in _PUNCT_2:
            tokens.append(Token(PUNCT, two, start_line, start_col))
            advance(2)
            continue
        if ch == "#":
            j = i + 1
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            name = source[i + 1:j]
            if not name:
                raise ParseError("empty directive after '#'", line, col)
            tokens.append(Token(DIRECTIVE, name, start_line, start_col))
            advance(j - i)
            continue
        if ch in _PUNCT_1:
            tokens.append(Token(PUNCT, ch, start_line, start_col))
            advance(1)
            continue
        if ch == "'":
            # A doubled quote inside a quoted constant is an escaped quote
            # (SQL style), so every string payload round-trips through the
            # pretty-printer: pretty writes '' for ' and we fold it back.
            j = i + 1
            buf = []
            closed = False
            while j < n:
                if source[j] == "'":
                    if j + 1 < n and source[j + 1] == "'":
                        buf.append("'")
                        j += 2
                        continue
                    closed = True
                    break
                buf.append(source[j])
                j += 1
            if not closed:
                raise ParseError("unterminated quoted constant", line, col)
            tokens.append(Token(STRING, "".join(buf), start_line, start_col))
            advance(j - i + 1)
            continue
        if ch.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            tokens.append(Token(INT, source[i:j], start_line, start_col))
            advance(j - i)
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            if word in KEYWORDS:
                kind = KEYWORD
            elif word[0].isupper() or word[0] == "_":
                kind = VARIABLE
            else:
                kind = IDENT
            tokens.append(Token(kind, word, start_line, start_col))
            advance(j - i)
            continue
        raise ParseError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token(EOF, "", line, col))
    return tokens
