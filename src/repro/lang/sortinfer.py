"""Sort inference for parsed LPS programs.

The paper's typography distinguishes sort-a variables (``x, y, z``) from
sort-s variables (``X, Y, Z``) by case; a practical Prolog-style syntax
capitalises *all* variables, so the parser emits untyped variables and this
module recovers Definition 1's two-sorted discipline by constraint
propagation:

* quantifier bound variables are sort ``a``, their ranges sort ``s``;
* ``e in S`` forces ``e : a`` and ``S : s``; set-term elements are ``a``
  and set terms are ``s``; function arguments and results are ``a``;
* the two sides of an equality share a sort; every occurrence of a
  predicate argument position shares a sort across the program (one global
  signature per predicate, as in Definition 1);
* builtins have fixed signatures (``plus : aaa``, ``card : sa``,
  ``union : sss``, ``scons : ass``, ...).

Constraints are solved by union-find; conflicts raise
:class:`~repro.core.errors.SortError` with the offending clause, and any
variable left unconstrained defaults to sort ``a``.  ELPS mode skips
inference entirely (Section 5 is untyped by design).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.atoms import Atom
from ..core.errors import SortError
from ..core.formulas import (
    AndF,
    AtomF,
    ExistsIn,
    ForallIn,
    Formula,
    NotF,
    OrF,
    TrueF,
)
from ..core.sorts import EQUALS, MEMBER, SORT_A, SORT_S, SORT_U
from ..core.terms import App, Const, SetExpr, SetValue, Term, Var

#: Fixed signatures of the engine builtins (``None`` = unconstrained).
BUILTIN_SORTS: dict[str, tuple[Optional[str], ...]] = {
    "plus": (SORT_A, SORT_A, SORT_A),
    "minus": (SORT_A, SORT_A, SORT_A),
    "times": (SORT_A, SORT_A, SORT_A),
    "lt": (SORT_A, SORT_A),
    "le": (SORT_A, SORT_A),
    "gt": (SORT_A, SORT_A),
    "ge": (SORT_A, SORT_A),
    "neq": (None, None),
    "card": (SORT_S, SORT_A),
    "union": (SORT_S, SORT_S, SORT_S),
    "scons": (SORT_A, SORT_S, SORT_S),
    "choose_min": (SORT_A, SORT_S, SORT_S),
    "setdiff": (SORT_S, SORT_S, SORT_S),
    "intersect": (SORT_S, SORT_S, SORT_S),
    "subset_enum": (SORT_S, SORT_S),
}


class _UnionFind:
    """Union-find over sort slots, each optionally pinned to a sort."""

    def __init__(self) -> None:
        self._parent: dict = {}
        self._sort: dict = {}

    def find(self, node):
        self._parent.setdefault(node, node)
        root = node
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[node] != root:
            self._parent[node], node = root, self._parent[node]
        return root

    def union(self, n1, n2, context: str) -> None:
        r1, r2 = self.find(n1), self.find(n2)
        if r1 == r2:
            return
        s1, s2 = self._sort.get(r1), self._sort.get(r2)
        if s1 is not None and s2 is not None and s1 != s2:
            raise SortError(
                f"sort conflict ({s1} vs {s2}) between {n1} and {n2} in {context}"
            )
        self._parent[r1] = r2
        if s1 is not None:
            self._sort[r2] = s1

    def pin(self, node, sort: str, context: str) -> None:
        root = self.find(node)
        existing = self._sort.get(root)
        if existing is not None and existing != sort:
            raise SortError(
                f"sort conflict for {node}: {existing} vs {sort} in {context}"
            )
        self._sort[root] = sort

    def sort_of(self, node) -> Optional[str]:
        return self._sort.get(self.find(node))


class SortInference:
    """Collects constraints from parsed statements and solves them."""

    def __init__(self) -> None:
        self.uf = _UnionFind()

    # Node constructors -------------------------------------------------------

    @staticmethod
    def vnode(clause_i: int, name: str):
        return ("v", clause_i, name)

    @staticmethod
    def pnode(pred: str, pos: int):
        return ("p", pred, pos)

    # Constraint collection -----------------------------------------------------

    def constrain_term(self, t: Term, ci: int, expect, context: str) -> None:
        """``expect`` is a sort string, a UF node, or ``None``."""
        if isinstance(t, Var):
            node = self.vnode(ci, t.name)
            if isinstance(expect, str):
                self.uf.pin(node, expect, context)
            elif expect is not None:
                self.uf.union(node, expect, context)
            return
        if isinstance(t, Const):
            self._expect_concrete(expect, SORT_A, t, context)
            return
        if isinstance(t, App):
            self._expect_concrete(expect, SORT_A, t, context)
            for a in t.args:
                self.constrain_term(a, ci, SORT_A, context)
            return
        if isinstance(t, (SetExpr, SetValue)):
            self._expect_concrete(expect, SORT_S, t, context)
            if isinstance(t, SetExpr):
                for e in t.elems:
                    self.constrain_term(e, ci, SORT_A, context)
            return
        raise SortError(f"unexpected term {t!r} in {context}")

    def _expect_concrete(self, expect, actual: str, t: Term, context: str) -> None:
        if expect is None:
            return
        if isinstance(expect, str):
            if expect != actual:
                raise SortError(
                    f"term {t} has sort {actual}, expected {expect} in {context}"
                )
        else:
            self.uf.pin(expect, actual, context)

    def constrain_atom(self, a: Atom, ci: int, context: str) -> None:
        if a.pred == EQUALS and a.arity == 2:
            l, r = a.args
            hint = _sort_hint(l) or _sort_hint(r)
            if isinstance(l, Var) and isinstance(r, Var):
                self.uf.union(self.vnode(ci, l.name), self.vnode(ci, r.name), context)
            self.constrain_term(l, ci, hint, context)
            self.constrain_term(r, ci, hint, context)
            return
        if a.pred == MEMBER and a.arity == 2:
            self.constrain_term(a.args[0], ci, SORT_A, context)
            self.constrain_term(a.args[1], ci, SORT_S, context)
            return
        sig = BUILTIN_SORTS.get(a.pred)
        if sig is not None:
            if len(sig) != a.arity:
                raise SortError(
                    f"builtin {a.pred!r} used with arity {a.arity} in {context}"
                )
            for t, s in zip(a.args, sig):
                self.constrain_term(t, ci, s, context)
            return
        for i, t in enumerate(a.args):
            self.constrain_term(t, ci, self.pnode(a.pred, i), context)

    def constrain_formula(self, f: Formula, ci: int, context: str) -> None:
        if isinstance(f, (TrueF,)):
            return
        if isinstance(f, AtomF):
            self.constrain_atom(f.atom, ci, context)
            return
        if isinstance(f, NotF):
            self.constrain_formula(f.sub, ci, context)
            return
        if isinstance(f, (AndF, OrF)):
            for p in f.parts:
                self.constrain_formula(p, ci, context)
            return
        if isinstance(f, (ForallIn, ExistsIn)):
            self.constrain_term(f.var, ci, SORT_A, context)
            self.constrain_term(f.source, ci, SORT_S, context)
            self.constrain_formula(f.body, ci, context)
            return
        raise SortError(f"unexpected formula {f!r} in {context}")

    # Solution ------------------------------------------------------------------

    def var_sort(self, ci: int, name: str) -> str:
        return self.uf.sort_of(self.vnode(ci, name)) or SORT_A

    def signature(self, pred: str, arity: int) -> tuple[str, ...]:
        return tuple(
            self.uf.sort_of(self.pnode(pred, i)) or SORT_A for i in range(arity)
        )


# ---------------------------------------------------------------------------
# Retyping (rewrite untyped variables with their inferred sorts)
# ---------------------------------------------------------------------------

def _retype_term(t: Term, sorts: dict[str, str]) -> Term:
    if isinstance(t, Var):
        return Var(t.name, sorts.get(t.name, SORT_A))
    if isinstance(t, App):
        return App(t.fname, tuple(_retype_term(a, sorts) for a in t.args))
    if isinstance(t, SetExpr):
        return SetExpr(tuple(_retype_term(e, sorts) for e in t.elems))
    return t


def _retype_atom(a: Atom, sorts: dict[str, str]) -> Atom:
    return Atom(a.pred, tuple(_retype_term(t, sorts) for t in a.args))


def _retype_formula(f: Formula, sorts: dict[str, str]) -> Formula:
    if isinstance(f, TrueF):
        return f
    if isinstance(f, AtomF):
        return AtomF(_retype_atom(f.atom, sorts))
    if isinstance(f, NotF):
        return NotF(_retype_formula(f.sub, sorts))
    if isinstance(f, AndF):
        return AndF(tuple(_retype_formula(p, sorts) for p in f.parts))
    if isinstance(f, OrF):
        return OrF(tuple(_retype_formula(p, sorts) for p in f.parts))
    if isinstance(f, ForallIn):
        return ForallIn(
            Var(f.var.name, sorts.get(f.var.name, SORT_A)),
            _retype_term(f.source, sorts),
            _retype_formula(f.body, sorts),
        )
    if isinstance(f, ExistsIn):
        return ExistsIn(
            Var(f.var.name, sorts.get(f.var.name, SORT_A)),
            _retype_term(f.source, sorts),
            _retype_formula(f.body, sorts),
        )
    raise SortError(f"unexpected formula {f!r}")


def _sort_hint(t: Term) -> Optional[str]:
    if isinstance(t, (Const, App)):
        return SORT_A
    if isinstance(t, (SetExpr, SetValue)):
        return SORT_S
    return None


def _collect_var_names(f: Formula, out: set[str]) -> None:
    from ..core.formulas import walk
    from ..core.terms import free_vars

    for sub in walk(f):
        if isinstance(sub, AtomF):
            for t in sub.atom.args:
                out |= {v.name for v in free_vars(t)}
        elif isinstance(sub, (ForallIn, ExistsIn)):
            out.add(sub.var.name)
            out |= {v.name for v in free_vars(sub.source)}


def infer_sorts(statements: Sequence) -> list:
    """Infer sorts for a list of parsed statements and retype them."""
    from .parser import ParsedGrouping, ParsedRule

    inf = SortInference()
    for ci, s in enumerate(statements):
        context = f"clause {ci + 1}"
        if isinstance(s, ParsedRule):
            inf.constrain_atom(s.head, ci, context)
            inf.constrain_formula(s.body, ci, context)
        elif isinstance(s, ParsedGrouping):
            inf.constrain_term(s.group_var, ci, SORT_A, context)
            # Reconstruct the full head signature with the grouped slot.
            arg_terms = list(s.head_args)
            for i, t in enumerate(arg_terms):
                pos = i if i < s.group_pos else i + 1
                inf.constrain_term(t, ci, inf.pnode(s.pred, pos), context)
            inf.uf.pin(inf.pnode(s.pred, s.group_pos), SORT_S, context)
            inf.constrain_formula(s.body, ci, context)

    out: list = []
    for ci, s in enumerate(statements):
        if isinstance(s, ParsedRule):
            names: set[str] = set()
            for t in s.head.args:
                from ..core.terms import free_vars

                names |= {v.name for v in free_vars(t)}
            _collect_var_names(s.body, names)
            sorts = {n: inf.var_sort(ci, n) for n in names}
            out.append(
                ParsedRule(
                    head=_retype_atom(s.head, sorts),
                    body=_retype_formula(s.body, sorts),
                )
            )
        else:
            names = {s.group_var.name}
            for t in s.head_args:
                from ..core.terms import free_vars

                names |= {v.name for v in free_vars(t)}
            _collect_var_names(s.body, names)
            sorts = {n: inf.var_sort(ci, n) for n in names}
            out.append(
                ParsedGrouping(
                    pred=s.pred,
                    head_args=tuple(_retype_term(t, sorts) for t in s.head_args),
                    group_pos=s.group_pos,
                    group_var=Var(s.group_var.name, sorts[s.group_var.name]),
                    body=_retype_formula(s.body, sorts),
                )
            )
    return out
