"""Synthetic workload generators for tests and benchmarks.

All generators are deterministic given a seed, so benchmark numbers in
EXPERIMENTS.md are reproducible.  They produce plain Python values (the
engine's :class:`~repro.engine.database.Database` converts them).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Optional

from ..engine.database import Database


def random_sets(
    n_sets: int,
    universe: int,
    min_size: int = 0,
    max_size: int = 6,
    seed: int = 0,
) -> list[frozenset[int]]:
    """``n_sets`` random subsets of ``{0..universe-1}``."""
    rng = random.Random(seed)
    out = []
    for _ in range(n_sets):
        k = rng.randint(min_size, max_size)
        out.append(frozenset(rng.sample(range(universe), min(k, universe))))
    return out


def set_database(
    pred: str,
    n_sets: int,
    universe: int,
    max_size: int = 6,
    seed: int = 0,
) -> Database:
    """A database of unary set facts ``pred(S)``."""
    db = Database()
    for s in random_sets(n_sets, universe, max_size=max_size, seed=seed):
        db.add(pred, s)
    return db


def chain_graph(n: int) -> list[tuple[str, str]]:
    """Edges of a path ``v0 → v1 → … → vn``."""
    return [(f"v{i}", f"v{i+1}") for i in range(n)]


def cycle_graph(n: int) -> list[tuple[str, str]]:
    return chain_graph(n - 1) + [(f"v{n-1}", "v0")]


def grid_graph(w: int, h: int) -> list[tuple[str, str]]:
    """Edges of a directed w×h grid (right and down)."""
    out = []
    for i in range(w):
        for j in range(h):
            if i + 1 < w:
                out.append((f"g{i}_{j}", f"g{i+1}_{j}"))
            if j + 1 < h:
                out.append((f"g{i}_{j}", f"g{i}_{j+1}"))
    return out


def random_graph(n: int, m: int, seed: int = 0) -> list[tuple[str, str]]:
    rng = random.Random(seed)
    out = set()
    while len(out) < m:
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b:
            out.add((f"v{a}", f"v{b}"))
    return sorted(out)


@dataclass(frozen=True)
class PartsWorld:
    """A parts-explosion hierarchy (the paper's Example 6).

    ``parts`` maps assemblies to their component sets; ``cost`` gives base
    costs of leaf parts; ``expected`` is the analytically computed roll-up
    cost of every object — what the LPS program must reproduce.
    """

    parts: dict[str, frozenset[str]]
    cost: dict[str, int]
    expected: dict[str, int]


def parts_world(
    depth: int,
    fanout: int,
    leaf_cost: int = 1,
    seed: int = 0,
) -> PartsWorld:
    """A complete ``fanout``-ary assembly tree of the given depth.

    Every internal node is an assembly whose components are its children;
    leaves have base costs ``leaf_cost + (index mod 3)``.
    """
    rng = random.Random(seed)
    parts: dict[str, frozenset[str]] = {}
    cost: dict[str, int] = {}
    expected: dict[str, int] = {}
    counter = [0]

    def build(level: int) -> str:
        name = f"p{counter[0]}"
        counter[0] += 1
        if level >= depth:
            c = leaf_cost + (counter[0] % 3)
            cost[name] = c
            expected[name] = c
            return name
        children = [build(level + 1) for _ in range(fanout)]
        parts[name] = frozenset(children)
        expected[name] = sum(expected[ch] for ch in children)
        return name

    build(0)
    return PartsWorld(parts=parts, cost=cost, expected=expected)


def parts_database(world: PartsWorld) -> Database:
    db = Database()
    for obj, components in world.parts.items():
        db.add("parts", obj, components)
    for leaf, c in world.cost.items():
        db.add("cost", leaf, c)
    return db


def number_set(n: int, seed: int = 0) -> frozenset[int]:
    """``n`` distinct positive integers (for the Example 5 sum benchmark)."""
    rng = random.Random(seed)
    out: set[int] = set()
    while len(out) < n:
        out.add(rng.randint(1, 10 * n + 10))
    return frozenset(out)


def nested_relation_rows(
    n_rows: int,
    set_width: int,
    universe: int = 1000,
    seed: int = 0,
) -> list[tuple[str, frozenset[int]]]:
    """Rows for an Example 4 style relation ``R(x, Y)``."""
    rng = random.Random(seed)
    out = []
    for i in range(n_rows):
        members = frozenset(
            rng.randrange(universe) for _ in range(set_width)
        )
        out.append((f"k{i}", members))
    return out
