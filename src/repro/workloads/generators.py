"""Synthetic workload generators for tests and benchmarks.

All generators are deterministic given a seed, so benchmark numbers in
EXPERIMENTS.md are reproducible.  They produce plain Python values (the
engine's :class:`~repro.engine.database.Database` converts them).
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from typing import Iterable, Optional

from ..engine.database import Database


def random_sets(
    n_sets: int,
    universe: int,
    min_size: int = 0,
    max_size: int = 6,
    seed: int = 0,
) -> list[frozenset[int]]:
    """``n_sets`` random subsets of ``{0..universe-1}``."""
    rng = random.Random(seed)
    out = []
    for _ in range(n_sets):
        k = rng.randint(min_size, max_size)
        out.append(frozenset(rng.sample(range(universe), min(k, universe))))
    return out


def set_database(
    pred: str,
    n_sets: int,
    universe: int,
    max_size: int = 6,
    seed: int = 0,
) -> Database:
    """A database of unary set facts ``pred(S)``."""
    db = Database()
    for s in random_sets(n_sets, universe, max_size=max_size, seed=seed):
        db.add(pred, s)
    return db


def chain_graph(n: int) -> list[tuple[str, str]]:
    """Edges of a path ``v0 → v1 → … → vn``."""
    return [(f"v{i}", f"v{i+1}") for i in range(n)]


def cycle_graph(n: int) -> list[tuple[str, str]]:
    return chain_graph(n - 1) + [(f"v{n-1}", "v0")]


def grid_graph(w: int, h: int) -> list[tuple[str, str]]:
    """Edges of a directed w×h grid (right and down)."""
    out = []
    for i in range(w):
        for j in range(h):
            if i + 1 < w:
                out.append((f"g{i}_{j}", f"g{i+1}_{j}"))
            if j + 1 < h:
                out.append((f"g{i}_{j}", f"g{i}_{j+1}"))
    return out


def random_graph(n: int, m: int, seed: int = 0) -> list[tuple[str, str]]:
    rng = random.Random(seed)
    out = set()
    while len(out) < m:
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b:
            out.add((f"v{a}", f"v{b}"))
    return sorted(out)


@dataclass(frozen=True)
class PartsWorld:
    """A parts-explosion hierarchy (the paper's Example 6).

    ``parts`` maps assemblies to their component sets; ``cost`` gives base
    costs of leaf parts; ``expected`` is the analytically computed roll-up
    cost of every object — what the LPS program must reproduce.
    """

    parts: dict[str, frozenset[str]]
    cost: dict[str, int]
    expected: dict[str, int]


def parts_world(
    depth: int,
    fanout: int,
    leaf_cost: int = 1,
    seed: int = 0,
) -> PartsWorld:
    """A complete ``fanout``-ary assembly tree of the given depth.

    Every internal node is an assembly whose components are its children;
    leaves have base costs ``leaf_cost + (index mod 3)``.
    """
    rng = random.Random(seed)
    parts: dict[str, frozenset[str]] = {}
    cost: dict[str, int] = {}
    expected: dict[str, int] = {}
    counter = [0]

    def build(level: int) -> str:
        name = f"p{counter[0]}"
        counter[0] += 1
        if level >= depth:
            c = leaf_cost + (counter[0] % 3)
            cost[name] = c
            expected[name] = c
            return name
        children = [build(level + 1) for _ in range(fanout)]
        parts[name] = frozenset(children)
        expected[name] = sum(expected[ch] for ch in children)
        return name

    build(0)
    return PartsWorld(parts=parts, cost=cost, expected=expected)


def parts_database(world: PartsWorld) -> Database:
    db = Database()
    for obj, components in world.parts.items():
        db.add("parts", obj, components)
    for leaf, c in world.cost.items():
        db.add("cost", leaf, c)
    return db


@dataclass(frozen=True)
class ChurnBatch:
    """One batch of EDB changes: fact specs as ``(pred, args...)`` tuples."""

    adds: tuple[tuple, ...]
    dels: tuple[tuple, ...]


def churn_stream(
    pred: str,
    rows: Iterable[tuple],
    n_batches: int,
    batch_size: int = 1,
    p_delete: float = 0.5,
    fresh_row=None,
    seed: int = 0,
) -> list[ChurnBatch]:
    """A deterministic insert/delete stream over one predicate.

    Starting from the live set ``rows``, each batch draws ``batch_size``
    operations: with probability ``p_delete`` a deletion of a live fact,
    otherwise an insertion — preferring a ``fresh_row(rng)`` row when the
    callable is given, else re-inserting a previously deleted row.  The
    stream never inserts a live row or deletes a dead one, so every
    operation is a *net* change; feed the batches to
    :meth:`~repro.engine.maintenance.MaterializedModel.apply_delta`.
    """
    rng = random.Random(seed)
    live: set[tuple] = {tuple(r) for r in rows}
    # Deletions draw from a sorted list maintained incrementally (bisect),
    # not re-sorted per operation: stream generation stays O(ops · log n)
    # and the draw order is still deterministic under the seed.
    live_sorted: list[tuple] = sorted(live)
    dead: list[tuple] = []
    dead_rows: set[tuple] = set()
    out: list[ChurnBatch] = []
    for _ in range(n_batches):
        adds: list[tuple] = []
        dels: list[tuple] = []
        # Rows touched earlier in the same batch are neither deletion nor
        # re-insertion candidates: `apply_delta` processes deletions before
        # insertions, so an insert+delete (or delete+re-insert) pair within
        # one batch would net out and desynchronize the live-set tracking.
        # Batch-added rows join `live_sorted` only when the batch closes.
        batch_added: set[tuple] = set()
        batch_deleted: set[tuple] = set()
        for _ in range(batch_size):
            revivable = [i for i, r in enumerate(dead)
                         if r not in batch_deleted]
            if live_sorted and (rng.random() < p_delete or
                                (fresh_row is None and not revivable)):
                row = live_sorted.pop(rng.randrange(len(live_sorted)))
                live.discard(row)
                batch_deleted.add(row)
                dead.append(row)
                dead_rows.add(row)
                dels.append((pred, *row))
            else:
                row: Optional[tuple] = None
                if fresh_row is not None:
                    # Dead rows are excluded here too: re-inserting one
                    # without unlisting it would let a later revival emit
                    # an insert of an already-live row.
                    for _attempt in range(20):
                        cand = tuple(fresh_row(rng))
                        if (cand not in live and cand not in batch_deleted
                                and cand not in dead_rows):
                            row = cand
                            break
                if row is None and revivable:
                    row = dead.pop(rng.choice(revivable))
                    dead_rows.discard(row)
                if row is None:
                    continue
                live.add(row)
                batch_added.add(row)
                adds.append((pred, *row))
        for row in batch_added:
            bisect.insort(live_sorted, row)
        out.append(ChurnBatch(adds=tuple(adds), dels=tuple(dels)))
    return out


def edge_churn(
    edges: Iterable[tuple[str, str]],
    n_batches: int,
    batch_size: int = 1,
    n_nodes: int = 0,
    p_delete: float = 0.5,
    seed: int = 0,
) -> list[ChurnBatch]:
    """Insert/delete churn over an ``e(u, v)`` edge relation.

    With ``n_nodes > 0`` insertions may create fresh random edges among
    ``v0..v{n_nodes-1}``; otherwise they re-insert deleted edges.
    """
    fresh = None
    if n_nodes > 1:
        def fresh(rng: random.Random) -> tuple[str, str]:
            while True:
                a, b = rng.randrange(n_nodes), rng.randrange(n_nodes)
                if a != b:
                    return (f"v{a}", f"v{b}")
    return churn_stream(
        "e", edges, n_batches, batch_size=batch_size,
        p_delete=p_delete, fresh_row=fresh, seed=seed,
    )


def cost_churn(
    world: PartsWorld,
    n_batches: int,
    max_delta: int = 9,
    seed: int = 0,
) -> list[ChurnBatch]:
    """Leaf-cost repricing churn for the parts-explosion workload.

    Each batch retracts one leaf's ``cost`` fact and asserts a new price —
    the canonical small-delta update that forces the roll-up costs above
    the leaf to be remaintained.
    """
    rng = random.Random(seed)
    current = dict(world.cost)
    leaves = sorted(current)
    out: list[ChurnBatch] = []
    for _ in range(n_batches):
        leaf = rng.choice(leaves)
        old = current[leaf]
        new = 1 + rng.randrange(max_delta)
        if new == old:
            new = old + 1
        current[leaf] = new
        out.append(ChurnBatch(
            adds=(("cost", leaf, new),),
            dels=(("cost", leaf, old),),
        ))
    return out


@dataclass(frozen=True)
class TrafficPlan:
    """A deterministic concurrent-traffic schedule for the query service.

    ``reader_streams[i]`` is the full query-text sequence reader thread
    ``i`` will issue; ``writer_batches`` is the churn stream the single
    writer applies concurrently.  Everything is derived from the seed, so
    a concurrency failure reproduces from ``(workload args, seed)`` even
    though thread interleaving does not.
    """

    reader_streams: tuple[tuple[str, ...], ...]
    writer_batches: tuple[ChurnBatch, ...]

    @property
    def n_queries(self) -> int:
        return sum(len(s) for s in self.reader_streams)


def query_stream(
    n_queries: int,
    n_nodes: int,
    pred: str = "t",
    p_ground: float = 0.3,
    p_open: float = 0.1,
    seed: int = 0,
) -> tuple[str, ...]:
    """Deterministic pattern queries over a binary graph predicate.

    A mix of half-bound (``t(vI, X)``), ground (``t(vI, vJ)``) and fully
    open (``t(X, Y)``) goals — the shapes a point-lookup / reachability /
    dump read workload issues against the closure.
    """
    rng = random.Random(seed)
    out: list[str] = []
    for _ in range(n_queries):
        r = rng.random()
        if r < p_open:
            out.append(f"{pred}(X, Y)")
        elif r < p_open + p_ground:
            a, b = rng.randrange(n_nodes), rng.randrange(n_nodes)
            out.append(f"{pred}(v{a}, v{b})")
        else:
            out.append(f"{pred}(v{rng.randrange(n_nodes)}, X)")
    return tuple(out)


def mixed_traffic(
    edges: Iterable[tuple[str, str]],
    n_readers: int,
    queries_per_reader: int,
    n_batches: int,
    batch_size: int = 1,
    n_nodes: int = 0,
    pred: str = "t",
    seed: int = 0,
) -> TrafficPlan:
    """N reader query streams plus one writer churn stream, from one seed.

    The canonical service workload: readers hammer the closure predicate
    while the writer churns the underlying edge relation.  Reader ``i``
    draws from sub-seed ``seed*1000 + i`` so adding readers never changes
    the streams of the existing ones (throughput comparisons across
    thread counts stay apples-to-apples).
    """
    edges = list(edges)
    nodes = n_nodes if n_nodes > 0 else len(
        {u for u, _ in edges} | {v for _, v in edges}
    )
    readers = tuple(
        query_stream(
            queries_per_reader, nodes, pred=pred, seed=seed * 1000 + i
        )
        for i in range(n_readers)
    )
    batches = tuple(edge_churn(
        edges, n_batches=n_batches, batch_size=batch_size,
        n_nodes=n_nodes, seed=seed,
    ))
    return TrafficPlan(reader_streams=readers, writer_batches=batches)


#: The program every crash-recovery plan runs: transitive closure plus a
#: stratified-negation stratum, a grouping stratum and a set-membership
#: rule — one rule per maintenance plan class (DRed / recompute /
#: counting), so recovery replay exercises all of them.
CRASH_RECOVERY_PROGRAM = """\
t(X, Y) :- e(X, Y).
t(X, Z) :- e(X, Y), t(Y, Z).
dead(X) :- n(X), not t(X, X).
succ(X, <Y>) :- e(X, Y).
mem(X) :- sf(S), X in S.
"""


@dataclass(frozen=True)
class CrashRecoveryPlan:
    """A deterministic durable-write schedule with designated crash points.

    ``program`` + ``initial_facts`` seed the durable store;
    ``batches[i]`` is the i-th committed delta; ``crash_after`` lists the
    batch indices after which the driver simulates a crash (kill the
    process / truncate the WAL) and recovers before continuing.  All
    derived from the seed, so a recovery failure reproduces exactly.
    """

    program: str
    initial_facts: tuple[tuple, ...]
    batches: tuple[ChurnBatch, ...]
    crash_after: tuple[int, ...]


def crash_recovery(
    n_nodes: int = 12,
    n_edges: int = 24,
    n_batches: int = 16,
    batch_size: int = 2,
    n_crashes: int = 3,
    n_sets: int = 4,
    seed: int = 0,
) -> CrashRecoveryPlan:
    """Edge churn over :data:`CRASH_RECOVERY_PROGRAM` with crash points.

    The fact base mixes the ``e``/``n`` scalar relations with ``sf`` set
    facts, so WAL records and checkpoints carry set terms; crash points
    are drawn without replacement from the batch indices.
    """
    rng = random.Random(seed)
    edges = random_graph(n_nodes, n_edges, seed=seed)
    initial = [("e", u, v) for u, v in edges]
    initial += [("n", f"v{i}") for i in range(0, n_nodes, 3)]
    for s in random_sets(n_sets, n_nodes, min_size=1, max_size=4,
                         seed=seed + 1):
        initial.append(("sf", frozenset(f"v{i}" for i in s)))
    batches = edge_churn(
        edges, n_batches=n_batches, batch_size=batch_size,
        n_nodes=n_nodes, seed=seed + 2,
    )
    crash_after = tuple(sorted(rng.sample(
        range(n_batches), min(n_crashes, n_batches)
    )))
    return CrashRecoveryPlan(
        program=CRASH_RECOVERY_PROGRAM,
        initial_facts=tuple(initial),
        batches=tuple(batches),
        crash_after=crash_after,
    )


@dataclass(frozen=True)
class FailoverPlan:
    """A deterministic replicated-write schedule with fault injections.

    ``batches[i]`` is the i-th committed delta applied on the leader;
    ``drop_stream_after`` lists batch indices after which the harness
    severs the follower replication streams (a torn stream plus reconnect
    must be idempotent — no lost or doubled records);
    ``kill_leader_after`` is the batch index after which the leader is
    killed and the most caught-up follower promoted — the remaining
    batches go to the new leader.  All drawn from the seed, so a failover
    bug reproduces from ``(workload args, seed)``.
    """

    program: str
    initial_facts: tuple[tuple, ...]
    batches: tuple[ChurnBatch, ...]
    drop_stream_after: tuple[int, ...]
    kill_leader_after: int


def failover_plan(
    n_nodes: int = 12,
    n_edges: int = 24,
    n_batches: int = 18,
    batch_size: int = 2,
    n_drops: int = 3,
    n_sets: int = 4,
    seed: int = 0,
) -> FailoverPlan:
    """Edge churn over :data:`CRASH_RECOVERY_PROGRAM` with replication
    faults: the same program/fact mix as :func:`crash_recovery` (so
    shipped records carry set terms and exercise every maintenance plan
    class), stream drops in the first two thirds of the run, and the
    leader kill at the two-thirds mark."""
    rng = random.Random(seed + 7)
    base = crash_recovery(
        n_nodes=n_nodes, n_edges=n_edges, n_batches=n_batches,
        batch_size=batch_size, n_crashes=0, n_sets=n_sets, seed=seed,
    )
    kill_after = max(1, (2 * n_batches) // 3)
    drops = tuple(sorted(rng.sample(
        range(kill_after), min(n_drops, kill_after)
    )))
    return FailoverPlan(
        program=base.program,
        initial_facts=base.initial_facts,
        batches=base.batches,
        drop_stream_after=drops,
        kill_leader_after=kill_after,
    )


@dataclass(frozen=True)
class SubscriptionPlan:
    """A deterministic churn-plus-subscribers schedule for the service.

    ``goals[k]`` is the text of standing query ``k``;
    ``subscribe_at[k]`` / ``unsubscribe_at[k]`` are the batch indices
    before which subscriber ``k`` registers and (when ``>= 0``) cancels,
    so subscriptions open and close mid-churn; ``batches`` is the writer
    stream.  Everything derives from the seed, so a diff-equivalence
    failure reproduces from ``(workload args, seed)``.
    """

    program: str
    initial_facts: tuple[tuple, ...]
    batches: tuple[ChurnBatch, ...]
    goals: tuple[str, ...]
    subscribe_at: tuple[int, ...]
    unsubscribe_at: tuple[int, ...]


def subscriber_plan(
    n_nodes: int = 12,
    n_edges: int = 24,
    n_batches: int = 16,
    batch_size: int = 2,
    n_subscribers: int = 6,
    p_unsubscribe: float = 0.4,
    seed: int = 0,
) -> SubscriptionPlan:
    """Edge churn over :data:`CRASH_RECOVERY_PROGRAM` with standing
    queries riding along.

    Goals mix half-bound closure lookups (``t(vI, X)``), ground probes
    (``t(vI, vJ)``), the fully open dump (``t(X, Y)``) and a conjunctive
    goal (``t(X, Y), e(Y, Z)``) — the shapes the subscription manager
    must diff exactly.  Subscribers register at staggered batch indices
    and a ``p_unsubscribe`` fraction cancel mid-churn.
    """
    rng = random.Random(seed + 13)
    base = crash_recovery(
        n_nodes=n_nodes, n_edges=n_edges, n_batches=n_batches,
        batch_size=batch_size, n_crashes=0, seed=seed,
    )
    goals: list[str] = []
    for k in range(n_subscribers):
        r = rng.random()
        if r < 0.15:
            goals.append("t(X, Y)")
        elif r < 0.3:
            a, b = rng.randrange(n_nodes), rng.randrange(n_nodes)
            goals.append(f"t(v{a}, v{b})")
        elif r < 0.45:
            goals.append("t(X, Y), e(Y, Z)")
        else:
            goals.append(f"t(v{rng.randrange(n_nodes)}, X)")
    subscribe_at = tuple(
        rng.randrange(max(1, n_batches // 2)) for _ in range(n_subscribers)
    )
    unsubscribe_at = tuple(
        rng.randrange(subscribe_at[k] + 1, n_batches + 1)
        if rng.random() < p_unsubscribe else -1
        for k in range(n_subscribers)
    )
    return SubscriptionPlan(
        program=base.program,
        initial_facts=base.initial_facts,
        batches=base.batches,
        goals=tuple(goals),
        subscribe_at=subscribe_at,
        unsubscribe_at=unsubscribe_at,
    )


def number_set(n: int, seed: int = 0) -> frozenset[int]:
    """``n`` distinct positive integers (for the Example 5 sum benchmark)."""
    rng = random.Random(seed)
    out: set[int] = set()
    while len(out) < n:
        out.add(rng.randint(1, 10 * n + 10))
    return frozenset(out)


def nested_relation_rows(
    n_rows: int,
    set_width: int,
    universe: int = 1000,
    seed: int = 0,
) -> list[tuple[str, frozenset[int]]]:
    """Rows for an Example 4 style relation ``R(x, Y)``."""
    rng = random.Random(seed)
    out = []
    for i in range(n_rows):
        members = frozenset(
            rng.randrange(universe) for _ in range(set_width)
        )
        out.append((f"k{i}", members))
    return out
