"""Deterministic synthetic workloads for tests and benchmarks."""

from .generators import (
    PartsWorld,
    chain_graph,
    cycle_graph,
    grid_graph,
    nested_relation_rows,
    number_set,
    parts_database,
    parts_world,
    random_graph,
    random_sets,
    set_database,
)

__all__ = [
    "random_sets",
    "set_database",
    "chain_graph",
    "cycle_graph",
    "grid_graph",
    "random_graph",
    "PartsWorld",
    "parts_world",
    "parts_database",
    "number_set",
    "nested_relation_rows",
]
