"""Deterministic synthetic workloads for tests and benchmarks."""

from .generators import (
    ChurnBatch,
    PartsWorld,
    chain_graph,
    churn_stream,
    cost_churn,
    cycle_graph,
    edge_churn,
    grid_graph,
    nested_relation_rows,
    number_set,
    parts_database,
    parts_world,
    random_graph,
    random_sets,
    set_database,
)

__all__ = [
    "random_sets",
    "set_database",
    "chain_graph",
    "cycle_graph",
    "grid_graph",
    "random_graph",
    "PartsWorld",
    "parts_world",
    "parts_database",
    "number_set",
    "nested_relation_rows",
    "ChurnBatch",
    "churn_stream",
    "edge_churn",
    "cost_churn",
]
