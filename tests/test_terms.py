"""Unit tests for the term language (Definitions 1, 2, 7)."""

import pytest

from repro.core import (
    EMPTY_SET,
    App,
    Const,
    SetExpr,
    SetValue,
    SortError,
    Var,
    app,
    canonicalize,
    const,
    free_vars,
    mkset,
    nesting_depth,
    order_key,
    setvalue,
    subterms,
    var_a,
    var_s,
    var_u,
)
from repro.core.sorts import SORT_A, SORT_S, SORT_U


class TestSorts:
    def test_variable_sorts(self):
        assert var_a("x").sort == SORT_A
        assert var_s("X").sort == SORT_S
        assert var_u("u").sort == SORT_U

    def test_unknown_sort_rejected(self):
        with pytest.raises(SortError):
            Var("x", "weird")

    def test_constant_sort(self):
        assert const("a").sort == SORT_A
        assert const(7).sort == SORT_A

    def test_app_sort(self):
        assert app("f", const("a")).sort == SORT_A

    def test_set_sorts(self):
        assert mkset(const("a")).sort == SORT_S
        assert EMPTY_SET.sort == SORT_S


class TestExample8Guard:
    """Example 8: functions must not produce (or consume) sets."""

    def test_app_rejects_set_argument(self):
        with pytest.raises(SortError):
            app("f", mkset(const("a")))

    def test_app_rejects_set_variable_argument(self):
        with pytest.raises(SortError):
            app("f", var_s("X"))

    def test_function_signature_rejects_set_range(self):
        from repro.core import FunctionSignature

        with pytest.raises(SortError):
            FunctionSignature("f", 1, range_sort=SORT_S)


class TestSetValues:
    """Definition 7: ground set constructors denote canonical finite sets."""

    def test_order_insensitive(self):
        a, b = const("a"), const("b")
        assert mkset(a, b) == mkset(b, a)

    def test_duplicate_insensitive(self):
        a, b = const("a"), const("b")
        assert mkset(a, a, b) == mkset(a, b)

    def test_empty_set(self):
        assert mkset() == EMPTY_SET
        assert len(EMPTY_SET) == 0

    def test_membership(self):
        a, b, c = const("a"), const("b"), const("c")
        s = setvalue([a, b])
        assert a in s and b in s and c not in s

    def test_sorted_elems_deterministic(self):
        s = setvalue([const(3), const(1), const(2)])
        assert [e.value for e in s.sorted_elems()] == [1, 2, 3]

    def test_set_of_function_terms(self):
        t = mkset(app("f", const("a")), app("f", const("a")))
        assert isinstance(t, SetValue)
        assert len(t) == 1

    def test_setvalue_rejects_non_ground(self):
        with pytest.raises(SortError):
            SetValue(frozenset({var_a("x")}))

    def test_setvalue_rejects_uncanonical_elements(self):
        with pytest.raises(SortError):
            SetValue(frozenset({SetExpr((const("a"),))}))


class TestCanonicalize:
    def test_ground_expr_becomes_value(self):
        e = SetExpr((const("a"), const("b"), const("a")))
        v = canonicalize(e)
        assert isinstance(v, SetValue)
        assert len(v) == 2

    def test_non_ground_expr_stays_expr(self):
        e = SetExpr((const("a"), var_a("x")))
        assert isinstance(canonicalize(e), SetExpr)

    def test_canonicalize_inside_app(self):
        t = App("f", (const("a"),))
        assert canonicalize(t) == t

    def test_idempotent(self):
        e = SetExpr((const("a"),))
        once = canonicalize(e)
        assert canonicalize(once) == once

    def test_nested_elps_value(self):
        inner = SetExpr((const("a"),))
        outer = canonicalize(SetExpr((inner,)))
        assert isinstance(outer, SetValue)
        (elem,) = list(outer)
        assert isinstance(elem, SetValue)


class TestStructure:
    def test_free_vars(self):
        x, X = var_a("x"), var_s("X")
        t = SetExpr((x, const("a")))
        assert free_vars(t) == {x}
        assert free_vars(X) == {X}
        assert free_vars(const("a")) == set()

    def test_subterms_of_app(self):
        t = app("f", app("g", const("a")), const("b"))
        subs = list(subterms(t))
        assert const("a") in subs and const("b") in subs and t in subs

    def test_subterms_of_setvalue(self):
        s = setvalue([const("a")])
        assert const("a") in list(subterms(s))

    def test_nesting_depth(self):
        a = const("a")
        assert nesting_depth(a) == 0
        assert nesting_depth(setvalue([a])) == 1
        assert nesting_depth(setvalue([setvalue([a])])) == 2
        assert nesting_depth(EMPTY_SET) == 1
        assert nesting_depth(var_s("X")) == 1

    def test_is_ground(self):
        assert const("a").is_ground()
        assert not var_a("x").is_ground()
        assert not SetExpr((var_a("x"),)).is_ground()
        assert setvalue([const("a")]).is_ground()


class TestOrderKey:
    def test_total_order_on_mixed_values(self):
        values = [
            const(2),
            const("b"),
            app("f", const("a")),
            setvalue([const(1)]),
            EMPTY_SET,
        ]
        ordered = sorted(values, key=order_key)
        assert ordered.index(const(2)) < ordered.index(const("b"))
        assert ordered.index(const("b")) < ordered.index(app("f", const("a")))
        assert ordered.index(EMPTY_SET) < ordered.index(setvalue([const(1)]))

    def test_str_rendering(self):
        s = setvalue([const("b"), const("a")])
        assert str(s) == "{a, b}"
        assert str(app("f", const("a"))) == "f(a)"
