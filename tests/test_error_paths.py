"""Failure-injection tests: every guard raises the right error, with a
message that names the paper's rule where one applies."""

import pytest

from repro.core import (
    ClauseError,
    EvaluationError,
    LPSError,
    ParseError,
    Program,
    SafetyError,
    SortError,
    StratificationError,
    atom,
    clause,
    fact,
    horn,
    member,
    neg,
    setvalue,
    var_a,
    var_s,
)
from repro.engine import Evaluator, solve
from repro.lang import parse_program

x = var_a("x")
X, Y = var_s("X"), var_s("Y")
a = __import__("repro.core", fromlist=["const"]).const("a")


class TestErrorHierarchy:
    def test_all_derive_from_lpserror(self):
        for exc in (SortError, ClauseError, SafetyError,
                    StratificationError, ParseError, EvaluationError):
            assert issubclass(exc, LPSError)

    def test_parse_error_position(self):
        err = ParseError("boom", line=3, column=7)
        assert "3:7" in str(err)
        assert err.line == 3 and err.column == 7


class TestGuardMessages:
    def test_special_head_names_definition5(self):
        from repro.core import equals

        with pytest.raises(ClauseError, match="Definition 5"):
            horn(equals(x, x))

    def test_function_range_names_example8_rule(self):
        from repro.core import app, mkset

        with pytest.raises(SortError, match="sort-'a' arguments"):
            app("f", mkset(a))

    def test_unstratified_names_section42(self):
        p = Program.of(horn(atom("p", x), neg(atom("p", x))))
        with pytest.raises(StratificationError, match="not stratified"):
            Evaluator(p)


class TestEngineLimits:
    def test_max_rounds(self):
        # A program whose domain grows forever: each round builds a bigger
        # set via scons on its own output.
        from repro.engine.setops import with_set_builtins
        from repro.engine.evaluation import EvalOptions

        p = parse_program("""
            grow({}).
            grow(Z) :- grow(Y), fresh(X), scons(X, Y, Z).
        """)
        # 'fresh' has no facts, so this one terminates; instead grow via
        # nested singleton injection in ELPS:
        p2 = Program.of(
            fact(atom("num", a)),
            horn(atom("num", __import__("repro.core", fromlist=["app"]).app(
                "s", x)), atom("num", x)),
        )
        with pytest.raises(EvaluationError, match="converge|growing"):
            Evaluator(
                p2, options=EvalOptions(max_rounds=5),
            ).run()

    def test_fallback_limit_message(self):
        p = Program.of(
            *(fact(atom("s", setvalue([__import__("repro.core", fromlist=["const"]).const(i)])))
              for i in range(10)),
            clause(atom("subs", X, Y), [(x, X)], [member(x, Y)]),
        )
        with pytest.raises(EvaluationError, match="fallback_limit"):
            solve(p, fallback_limit=5)

    def test_safety_error_lists_variables(self):
        p = Program.of(
            fact(atom("s", setvalue([a]))),
            clause(atom("subs", X, Y), [(x, X)], [member(x, Y)]),
        )
        with pytest.raises(SafetyError, match="unconstrained"):
            solve(p, allow_fallback=False)


class TestParserDiagnostics:
    @pytest.mark.parametrize("source,fragment", [
        ("p(a", "expected"),
        ("p(a) :- .", "term"),
        ("p(a) :- q(a)", "expected '.'"),
        ("g(<A>, <B>) :- p(A, B).", "one grouped"),
        ("p(X) :- forall X (q(X)).", "in"),
    ])
    def test_messages(self, source, fragment):
        with pytest.raises(ParseError):
            parse_program(source)

    def test_sort_conflict_mentions_clause(self):
        with pytest.raises(SortError, match="clause 1"):
            parse_program("p(X) :- X in X.")


class TestProverLimits:
    def test_depth_bound_terminates(self):
        from repro.engine import TopDownProver

        p = Program.of(
            horn(atom("p", x), atom("q", x)),
            horn(atom("q", x), atom("p", x)),
        )
        td = TopDownProver(p, max_depth=30)
        assert not td.holds(atom("p", a))  # loop-checked, no blowup

    def test_grouping_rejected(self):
        from repro.core import GroupingClause, pos
        from repro.engine import TopDownProver

        g = GroupingClause(
            pred="g", head_args=(x,), group_pos=1, group_var=var_a("y"),
            body=(pos(atom("p", x, var_a("y"))),),
        )
        with pytest.raises(EvaluationError):
            TopDownProver(Program.of(g))
