"""Tests for Program: validation, inventories, dependency edges, renaming."""

import pytest

from repro.core import (
    ClauseError,
    GroupingClause,
    LPSClause,
    MODE_ELPS,
    MODE_LPS,
    Program,
    SortError,
    app,
    atom,
    clause,
    const,
    fact,
    horn,
    neg,
    pos,
    rename_predicates,
    setvalue,
    var_a,
    var_s,
    var_u,
)

x, y = var_a("x"), var_a("y")
X = var_s("X")
a, b = const("a"), const("b")


def simple_program() -> Program:
    return Program.of(
        fact(atom("edge", a, b)),
        horn(atom("path", x, y), atom("edge", x, y)),
        horn(atom("path", x, y), atom("edge", x, var_a("z")),
             atom("path", var_a("z"), y)),
    )


class TestInventory:
    def test_predicates(self):
        p = simple_program()
        assert p.predicates() == {"edge": 2, "path": 2}

    def test_arity_conflict_detected(self):
        p = Program.of(fact(atom("p", a)), fact(atom("p", a, b)))
        with pytest.raises(ClauseError):
            p.predicates()

    def test_idb_and_facts(self):
        p = simple_program()
        assert p.idb_predicates() == {"path"}
        assert {f.pred for f in p.facts()} == {"edge"}

    def test_constants_and_sets(self):
        p = Program.of(fact(atom("s", setvalue([a, b]))))
        assert p.constants() == {a, b}
        assert p.set_values() == {setvalue([a, b])}

    def test_function_symbols(self):
        p = Program.of(fact(atom("p", app("f", a))))
        assert p.function_symbols() == {"f": 1}

    def test_program_concatenation(self):
        p1 = Program.of(fact(atom("p", a)))
        p2 = Program.of(fact(atom("q", a)), mode=MODE_ELPS)
        combined = p1 + p2
        assert len(combined) == 2
        assert combined.mode == MODE_ELPS


class TestValidation:
    def test_lps_rejects_nested_sets(self):
        nested = setvalue([setvalue([a])])
        p = Program.of(fact(atom("p", nested)))
        with pytest.raises(SortError):
            p.validate()

    def test_elps_accepts_nested_sets(self):
        nested = setvalue([setvalue([a])])
        p = Program.of(fact(atom("p", nested)), mode=MODE_ELPS)
        p.validate()

    def test_lps_rejects_untyped_vars(self):
        p = Program.of(horn(atom("p", var_u("u")), atom("q", var_u("u"))))
        with pytest.raises(SortError):
            p.validate()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ClauseError):
            Program((), mode="prolog")


class TestDependencies:
    def test_positive_edges(self):
        p = simple_program()
        edges = set(p.dependency_edges())
        assert ("path", "edge", True) in edges
        assert ("path", "path", True) in edges

    def test_negative_edges(self):
        p = Program.of(
            horn(atom("p", x), pos(atom("q", x)), neg(atom("r", x))),
        )
        edges = set(p.dependency_edges())
        assert ("p", "q", True) in edges
        assert ("p", "r", False) in edges

    def test_grouping_edges_are_negative(self):
        g = GroupingClause(
            pred="g", head_args=(x,), group_pos=1, group_var=y,
            body=(pos(atom("p", x, y)),),
        )
        p = Program.of(g)
        assert ("g", "p", False) in set(p.dependency_edges())

    def test_special_atoms_excluded(self):
        from repro.core import equals

        p = Program.of(horn(atom("p", x), equals(x, x)))
        assert list(p.dependency_edges()) == []


class TestRenaming:
    def test_rename(self):
        p = simple_program()
        q = rename_predicates(p, {"edge": "arc"})
        assert "arc" in q.predicates()
        assert "edge" not in q.predicates()
        # Rule bodies renamed too.
        assert any(
            any(l.atom.pred == "arc" for l in c.body)
            for c in q.lps_clauses() if not c.is_fact
        )

    def test_rename_to_special_rejected(self):
        p = simple_program()
        with pytest.raises(ClauseError):
            rename_predicates(p, {"edge": "="})

    def test_pretty_round_trip_shape(self):
        p = simple_program()
        text = p.pretty()
        assert text.count(".") == 3
        assert "path(x, y) :- edge(x, y)." in text
