"""Theorem 3 / Definition 10: the least Herbrand model.

These tests enumerate ALL Herbrand models over tiny universes (the
brute-force oracle in ``repro.semantics.minimal``) and check:

* the intersection of all models is itself a model (Theorem 3(1)),
* it equals ``T_P ↑ ω`` (Theorem 5, cross-validated against the oracle),
* it consists exactly of the logical consequences (Theorem 3(2)),
* positive LPS programs have a unique minimal model.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    Program,
    atom,
    clause,
    const,
    fact,
    horn,
    pos,
    setvalue,
    var_a,
    var_s,
)
from repro.semantics import (
    Universe,
    all_models,
    intersection_of_models,
    is_logical_consequence,
    least_fixpoint,
    minimal_models,
)

x = var_a("x")
X = var_s("X")
a, b = const("a"), const("b")

UNIVERSE = Universe.build([a, b], max_set_size=0)  # no sets: tiny base
SET_UNIVERSE = Universe.build([a], max_set_size=1)


class TestOracle:
    def test_all_models_of_single_fact(self):
        p = Program.of(fact(atom("p", a)))
        sigs = {"p": ("a",)}
        models = list(all_models(p, UNIVERSE, sigs))
        # Models: every superset of {p(a)} over base {p(a), p(b)}.
        assert len(models) == 2
        assert all(m.holds(atom("p", a)) for m in models)

    def test_intersection_is_least(self):
        p = Program.of(fact(atom("p", a)), horn(atom("q", x), atom("p", x)))
        sigs = {"p": ("a",), "q": ("a",)}
        least = intersection_of_models(p, UNIVERSE, sigs)
        assert least.holds(atom("p", a))
        assert least.holds(atom("q", a))
        assert not least.holds(atom("p", b))
        assert not least.holds(atom("q", b))

    def test_theorem3_part1_intersection_is_model(self):
        p = Program.of(
            fact(atom("p", a)),
            horn(atom("q", x), atom("p", x)),
        )
        sigs = {"p": ("a",), "q": ("a",)}
        least = intersection_of_models(p, UNIVERSE, sigs)
        assert least.satisfies_program(p, UNIVERSE)

    def test_theorem3_part2_logical_consequences(self):
        p = Program.of(
            fact(atom("p", a)),
            horn(atom("q", x), atom("p", x)),
        )
        sigs = {"p": ("a",), "q": ("a",)}
        least = intersection_of_models(p, UNIVERSE, sigs)
        base = [atom("p", a), atom("p", b), atom("q", a), atom("q", b)]
        for ground in base:
            assert least.holds(ground) == is_logical_consequence(
                p, UNIVERSE, sigs, ground
            )

    def test_unique_minimal_model_for_positive_program(self):
        p = Program.of(fact(atom("p", a)), horn(atom("q", x), atom("p", x)))
        sigs = {"p": ("a",), "q": ("a",)}
        minimal = minimal_models(p, UNIVERSE, sigs)
        assert len(minimal) == 1

    def test_base_size_guard(self):
        from repro.core import EvaluationError
        from repro.semantics.minimal import finite_base

        big = Universe.build([const(i) for i in range(30)], max_set_size=0)
        with pytest.raises(EvaluationError):
            finite_base(Program.of(), big, {"p": ("a",)})


class TestLemma2StyleClosure:
    def test_quantified_program_least_model(self):
        """M_P of a quantified program matches the oracle intersection."""
        p = Program.of(
            fact(atom("p", a)),
            clause(atom("r", X), [(x, X)], [atom("p", x)]),
        )
        sigs = {"p": ("a",), "r": ("s",)}
        least = intersection_of_models(p, SET_UNIVERSE, sigs)
        fixpoint = least_fixpoint(p, SET_UNIVERSE).interpretation
        assert least == fixpoint
        # Vacuous instance must be a consequence.
        assert least.holds(atom("r", setvalue([])))
        assert least.holds(atom("r", setvalue([a])))


# ---------------------------------------------------------------------------
# The headline property: lfp(T_P) == intersection of all Herbrand models,
# on random positive programs (Theorems 3 + 5 together).
# ---------------------------------------------------------------------------

consts_st = st.sampled_from([a, b])
terms_st = st.sampled_from([a, b, x])


@st.composite
def random_positive_program(draw):
    clauses = [fact(atom("p", draw(consts_st)))]
    for _ in range(draw(st.integers(0, 3))):
        head = atom(draw(st.sampled_from(["p", "q"])), draw(terms_st))
        body = [
            pos(atom(draw(st.sampled_from(["p", "q"])), draw(terms_st)))
            for _ in range(draw(st.integers(0, 2)))
        ]
        free_ok = not head.free_vars() or any(
            head.free_vars() <= l.atom.free_vars() for l in body
        ) or body
        if not body and head.free_vars():
            continue  # skip unsafe unit-with-var clauses for base-size sanity
        clauses.append(horn(head, *body))
    return Program.of(*clauses)


@settings(max_examples=30, deadline=None)
@given(p=random_positive_program())
def test_lfp_equals_model_intersection(p):
    sigs = {"p": ("a",), "q": ("a",)}
    lfp = least_fixpoint(p, UNIVERSE, max_rounds=50).interpretation
    least = intersection_of_models(p, UNIVERSE, sigs)
    assert lfp == least
