"""Incremental model maintenance (`repro.engine.maintenance`).

The contract under test: after any stream of insert/delete batches,
``MaterializedModel.apply_delta`` leaves the interpretation **identical**
to a from-scratch ``Evaluator.run()`` over the final database — for every
program the engine accepts, and across all ``EvalOptions`` index/planner
combinations.  Incrementality (counting / DRed / per-stratum recompute)
is a pure optimisation; these tests are the oracle for that claim.

The regression classes target the classic maintenance traps:

* counting: an atom with a surviving alternative derivation must not die
  when one of its derivations does;
* DRed: transitive closure must re-derive overdeleted atoms reachable
  through surviving paths;
* stratified negation and set construction (grouping, ``union``, the
  Theorem-8 ``setof`` compilation): deletions can *grow* higher strata and
  must regroup rather than over-delete.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import parse_program
from repro.core import Program, atom, const, fact, var_a
from repro.core.atoms import pos
from repro.core.clauses import GroupingClause
from repro.engine import Database, Evaluator, MaterializedModel
from repro.engine.evaluation import EvalOptions
from repro.engine.setops import with_set_builtins
from repro.workloads import (
    chain_graph,
    cost_churn,
    edge_churn,
    parts_database,
    parts_world,
)

MODES = [
    {"use_indexes": True, "plan_joins": True},
    {"use_indexes": True, "plan_joins": False},
    {"use_indexes": False, "plan_joins": True},
    {"use_indexes": False, "plan_joins": False},
    # Legacy tuple-at-a-time maintenance (plans are on by default above).
    {"use_indexes": True, "plan_joins": True, "compile_plans": False},
    {"use_indexes": False, "plan_joins": False, "compile_plans": False},
]


def fresh_eval(program, facts, **mode):
    db = Database()
    for spec in facts:
        db.add(spec[0], *spec[1:])
    options = EvalOptions(**mode)
    return Evaluator(program, db, builtins=with_set_builtins(),
                     options=options).run()


def assert_matches_scratch(materialized, program, facts, **mode):
    fresh = fresh_eval(program, facts, **mode)
    assert (materialized.interpretation.sorted_atoms()
            == fresh.interpretation.sorted_atoms())


def materialize(program, facts=(), **mode):
    db = Database()
    for spec in facts:
        db.add(spec[0], *spec[1:])
    return MaterializedModel(program, db, builtins=with_set_builtins(),
                             options=EvalOptions(**mode))


# ---------------------------------------------------------------------------
# The property: apply_delta ≡ from-scratch evaluation, on random programs
# and random interleaved insert/delete batches.
# ---------------------------------------------------------------------------

#: Rule templates drawn from to make random programs: positive recursion,
#: builtins, and stratified negation at several depths.  Any subset is a
#: stratifiable program over the EDB predicates ``e/2`` and ``n/1``.
RULE_POOL = [
    "t(X, Y) :- e(X, Y).",
    "t(X, Z) :- e(X, Y), t(Y, Z).",
    "r(X) :- n(X), e(X, Y).",
    "p(X) :- e(X, X).",
    "q(X) :- t(X, Y), n(Y).",
    "v(X, Y) :- e(X, Y), X != Y.",
    "s(X) :- n(X), not t(X, X).",
    "u(X, Y) :- t(X, Y), not e(X, Y).",
    "w(X) :- r(X), not s(X).",
]

_CONSTS = ["a", "b", "c", "d"]
FACT_SPACE = (
    [("e", u, v) for u in _CONSTS for v in _CONSTS]
    + [("n", u) for u in _CONSTS]
)


@settings(max_examples=20, deadline=None)
@given(
    rule_idx=st.sets(
        st.integers(0, len(RULE_POOL) - 1), min_size=1, max_size=5
    ),
    initial=st.sets(st.sampled_from(FACT_SPACE), max_size=8),
    batches=st.lists(
        st.lists(
            st.tuples(st.booleans(), st.sampled_from(FACT_SPACE)),
            min_size=1, max_size=4,
        ),
        min_size=1, max_size=3,
    ),
)
def test_apply_delta_equals_recompute(rule_idx, initial, batches):
    program = parse_program(
        "\n".join(RULE_POOL[i] for i in sorted(rule_idx))
    )
    for mode in MODES:
        m = materialize(program, sorted(initial), **mode)
        facts = set(initial)
        for batch in batches:
            adds = [spec for is_add, spec in batch if is_add]
            dels = [spec for is_add, spec in batch if not is_add]
            facts = (facts - set(dels)) | set(adds)
            m.apply_delta(adds=adds, dels=dels)
            assert_matches_scratch(m, program, sorted(facts), **mode)


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(4, 10),
    seed=st.integers(0, 1000),
)
def test_edge_churn_stream_matches_recompute(n, seed):
    """The workload generator's churn streams maintain exactly."""
    program = parse_program("""
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    """)
    edges = chain_graph(n)
    facts = {("e", u, v) for u, v in edges}
    batches = edge_churn(edges, n_batches=4, batch_size=2,
                         n_nodes=n + 1, seed=seed)
    m = materialize(program, sorted(facts))
    for batch in batches:
        facts = (facts - set(batch.dels)) | set(batch.adds)
        m.apply_delta(adds=batch.adds, dels=batch.dels)
        assert_matches_scratch(m, program, sorted(facts))


def test_parts_cost_churn_matches_recompute():
    """Leaf repricing on the paper's Example 6 roll-up program."""
    program = parse_program("""
    item_cost(P, C) :- cost(P, C).
    item_cost(P, C) :- obj_cost(P, C).
    need(S) :- parts(P, S).
    need(Y) :- need(Z), choose_min(X, Y, Z).
    sum_costs({}, 0).
    sum_costs(Z, K) :- need(Z), choose_min(P, Y, Z),
                       item_cost(P, C), sum_costs(Y, M), M + C = K.
    obj_cost(P, C) :- parts(P, S), sum_costs(S, C).
    """)
    world = parts_world(depth=3, fanout=2, seed=5)
    db = parts_database(world)
    m = MaterializedModel(program, db, builtins=with_set_builtins())
    facts = (
        {("parts", o, s) for o, s in world.parts.items()}
        | {("cost", l, c) for l, c in world.cost.items()}
    )
    for batch in cost_churn(world, n_batches=5, seed=7):
        facts = (facts - set(batch.dels)) | set(batch.adds)
        report = m.apply_delta(adds=batch.adds, dels=batch.dels)
        assert report.strategy == "incremental"
        assert_matches_scratch(m, program, sorted(facts))


# ---------------------------------------------------------------------------
# Counting and DRed regression traps.
# ---------------------------------------------------------------------------

TC = parse_program("""
t(X, Y) :- e(X, Y).
t(X, Z) :- e(X, Y), t(Y, Z).
""")

DIAMOND = [("e", "a", "b"), ("e", "b", "d"), ("e", "a", "c"),
           ("e", "c", "d"), ("e", "d", "z")]


def test_dred_rederives_surviving_paths():
    """Deleting one diamond edge must not kill paths through the other."""
    m = materialize(TC, DIAMOND)
    report = m.apply_delta(dels=[("e", "b", "d")])
    assert report.strategy == "incremental"
    assert not m.model.holds_str("t(b, d)")
    # t(a, d) and t(a, z) were overdeletion candidates: both reach d only
    # through b or c, and the c-path survives.
    assert m.model.holds_str("t(a, d)")
    assert m.model.holds_str("t(a, z)")
    assert_matches_scratch(m, TC, [f for f in DIAMOND
                                   if f != ("e", "b", "d")])


def test_counting_keeps_alternative_derivations():
    program = parse_program("out(X) :- e(X, Y).")
    facts = [("e", "c", "d"), ("e", "c", "e"), ("e", "b", "d")]
    m = materialize(program, facts)
    report = m.apply_delta(dels=[("e", "c", "d")])
    assert report.strategy == "incremental"
    assert dict(report.stratum_plans)[
        max(dict(report.stratum_plans))] == "counting"
    assert m.model.holds_str("out(c)")      # survives via e(c, e)
    report = m.apply_delta(dels=[("e", "b", "d")])
    assert not m.model.holds_str("out(b)")  # last derivation gone
    assert_matches_scratch(m, program, [("e", "c", "e")])


def test_edb_fact_with_idb_derivation_survives_retraction():
    """A fact that is both given and derivable keeps its derived support."""
    program = parse_program("""
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    """)
    facts = [("e", "a", "b"), ("e", "b", "c"), ("t", "a", "c")]
    m = materialize(program, facts)
    m.apply_delta(dels=[("t", "a", "c")])   # EDB support gone, path remains
    assert m.model.holds_str("t(a, c)")
    assert_matches_scratch(m, program, facts[:2])


def test_program_fact_clauses_are_never_deleted():
    program = parse_program("""
    e(a, b).
    t(X, Y) :- e(X, Y).
    """)
    m = materialize(program, [("e", "b", "c")])
    m.apply_delta(dels=[("e", "a", "b")])   # only the (absent) EDB copy
    assert m.model.holds_str("e(a, b)")
    assert m.model.holds_str("t(a, b)")
    assert_matches_scratch(m, program, [("e", "b", "c")])


# ---------------------------------------------------------------------------
# Deletion under stratified negation and set construction.
# ---------------------------------------------------------------------------

def test_deletion_under_stratified_negation_grows_upper_stratum():
    program = parse_program("""
    out(X) :- e(X, Y).
    sink(X) :- n(X), not out(X).
    """)
    facts = [("e", "c", "d"), ("e", "c", "e"),
             ("n", "c"), ("n", "d")]
    m = materialize(program, facts)
    assert m.model.holds_str("sink(d)")
    assert not m.model.holds_str("sink(c)")
    # One of c's two derivations dies: out(c) survives, sink unchanged.
    m.apply_delta(dels=[("e", "c", "d")])
    assert not m.model.holds_str("sink(c)")
    # The second dies: out(c) gone, the negation now *adds* sink(c).
    report = m.apply_delta(dels=[("e", "c", "e")])
    assert report.strategy == "incremental"
    assert m.model.holds_str("sink(c)")
    assert_matches_scratch(m, program, [("n", "c"), ("n", "d")])


def test_deletion_with_negation_over_recursion():
    program = parse_program("""
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    u(X, Y) :- t(X, Y), not e(X, Y).
    """)
    facts = list(DIAMOND)
    m = materialize(program, facts)
    assert m.model.holds_str("u(a, d)")
    m.apply_delta(dels=[("e", "b", "d")], adds=[("e", "a", "d")])
    # t(a, d) still holds (via c) but is now also an edge: u(a, d) dies.
    assert m.model.holds_str("t(a, d)")
    assert not m.model.holds_str("u(a, d)")
    final = [f for f in facts if f != ("e", "b", "d")] + [("e", "a", "d")]
    assert_matches_scratch(m, program, final)


def test_deletion_under_grouping_regroups():
    x, y = var_a("x"), var_a("y")
    program = Program.of(
        GroupingClause(pred="bom", head_args=(x,), group_pos=1, group_var=y,
                       body=(pos(atom("comp", x, y)),)),
    )
    facts = [("comp", "a", "b"), ("comp", "a", "c"), ("comp", "b", "c")]
    m = materialize(program, facts)
    assert m.relation("bom") == {("a", frozenset({"b", "c"})),
                                 ("b", frozenset({"c"}))}
    m.apply_delta(dels=[("comp", "a", "c")])
    # The group must shrink, not vanish — and the stale set must go.
    assert m.relation("bom") == {("a", frozenset({"b"})),
                                 ("b", frozenset({"c"}))}
    assert_matches_scratch(m, program, facts[:1] + facts[2:])


def test_deletion_under_union_keeps_alternative_constructions():
    program = parse_program("both(Z) :- s1(X), s2(Y), union(X, Y, Z).")
    facts = [("s1", frozenset([1, 2])), ("s1", frozenset([1, 3])),
             ("s2", frozenset([3])), ("s2", frozenset([2]))]
    m = materialize(program, facts)
    assert ((frozenset({1, 2, 3}),) in m.relation("both"))
    report = m.apply_delta(dels=[("s1", frozenset([1, 2]))])
    assert report.strategy == "incremental"
    # {1,2,3} still constructible as {1,3} ∪ {2}.
    assert ((frozenset({1, 2, 3}),) in m.relation("both"))
    assert_matches_scratch(m, program, facts[1:])


def test_deletion_under_setof_compilation():
    from repro.transform import setof_program

    program = setof_program("a", "b")
    facts = [("a", "x"), ("a", "y")]
    m = materialize(program, facts)
    assert (frozenset({"x", "y"}),) in m.relation("b")
    m.apply_delta(dels=[("a", "y")])
    assert m.relation("b") == {(frozenset({"x"}),)}
    assert_matches_scratch(m, program, facts[:1])


# ---------------------------------------------------------------------------
# Gate behaviour and API surface.
# ---------------------------------------------------------------------------

def test_domain_dependent_program_falls_back_to_recompute():
    """A non-range-restricted rule ranges over the active domain: adding an
    unrelated constant changes its extension, so the maintainer must detect
    the fallback and recompute."""
    program = parse_program("all(X) :- flag(Y).")
    facts = [("flag", "on"), ("c", "z1")]
    m = materialize(program, facts)
    report = m.apply_delta(adds=[("c", "z2")])
    assert report.strategy == "recompute"
    assert m.model.holds_str("all(z2)")
    assert_matches_scratch(m, program, facts + [("c", "z2")])


def test_provenance_tracking_recomputes_and_stays_explainable():
    m = materialize(TC, [("e", "a", "b")], track_provenance=True)
    report = m.apply_delta(adds=[("e", "b", "c")])
    assert report.strategy == "recompute"
    tree = m.model.explain_str("t(a, c)")
    assert "e(b, c)" in tree


def test_builtin_and_special_facts_are_rejected():
    from repro.core.errors import EvaluationError

    m = materialize(TC, [("e", "a", "b")])
    with pytest.raises(EvaluationError):
        m.apply_delta(adds=[("plus", 1, 2, 3)])
    with pytest.raises(EvaluationError):
        m.apply_delta(dels=[("=", "a", "a")])


def test_noop_delta_reports_noop():
    m = materialize(TC, DIAMOND)
    report = m.apply_delta(adds=[DIAMOND[0]])       # already present
    assert report.strategy == "noop"
    report = m.apply_delta(dels=[("e", "q", "q")])  # never present
    assert report.strategy == "noop"
    # Delete-then-reassert of a present fact cancels out...
    report = m.apply_delta(adds=[DIAMOND[0]], dels=[DIAMOND[0]])
    assert report.strategy == "noop"
    # ...but for an absent fact the batch semantics (db − dels) ∪ adds
    # means the assert wins.
    report = m.apply_delta(adds=[("e", "x", "y")], dels=[("e", "x", "y")])
    assert report.net_added == 1
    assert m.model.holds_str("t(x, y)")
    m.apply_delta(dels=[("e", "x", "y")])


def test_add_retract_convenience_and_reports():
    m = materialize(TC, [("e", "a", "b")])
    report = m.add("e", "b", "c")
    assert report.net_added == 1 and report.atoms_added >= 2
    assert m.model.holds_str("t(a, c)")
    report = m.retract("e", "b", "c")
    assert report.net_removed == 1
    assert not m.model.holds_str("t(a, c)")
    assert_matches_scratch(m, TC, [("e", "a", "b")])


def test_maintained_database_is_the_source_of_truth():
    db = Database()
    db.add("e", "a", "b")
    m = MaterializedModel(TC, db, builtins=with_set_builtins())
    m.apply_delta(adds=[("e", "b", "c")], dels=[("e", "a", "b")])
    assert db.relation("e") == {("b", "c")}
    assert not m.model.holds_str("t(a, b)")
    assert m.model.holds_str("t(b, c)")
