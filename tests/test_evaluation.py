"""Tests for the bottom-up engine: solver scheduling, quantifiers (incl. the
vacuous branch), negation, grouping, semi-naive/naive agreement, safety."""

import pytest

from repro.core import (
    Atom,
    GroupingClause,
    Program,
    SafetyError,
    atom,
    clause,
    const,
    equals,
    fact,
    horn,
    member,
    mkset,
    neg,
    pos,
    setvalue,
    var_a,
    var_s,
)
from repro.engine import Database, EvalOptions, Evaluator, solve
from repro.engine.setops import with_set_builtins
from repro.semantics import Universe, least_fixpoint

x, y, z = var_a("x"), var_a("y"), var_a("z")
X, Y, Z = var_s("X"), var_s("Y"), var_s("Z")
a, b, c = const("a"), const("b"), const("c")


class TestHornEvaluation:
    def test_transitive_closure(self):
        p = Program.of(
            fact(atom("e", a, b)),
            fact(atom("e", b, c)),
            horn(atom("t", x, y), atom("e", x, y)),
            horn(atom("t", x, z), atom("e", x, y), atom("t", y, z)),
        )
        m = solve(p)
        assert m.relation("t") == {("a", "b"), ("b", "c"), ("a", "c")}

    def test_database_facts(self):
        db = Database()
        db.add("e", "a", "b")
        p = Program.of(horn(atom("t", x, y), atom("e", x, y)))
        m = Evaluator(p, db).run()
        assert m.relation("t") == {("a", "b")}

    def test_equality_in_body(self):
        p = Program.of(
            fact(atom("q", a)),
            horn(atom("p", x, y), atom("q", x), equals(y, x)),
        )
        m = solve(p)
        assert m.relation("p") == {("a", "a")}

    def test_set_construction_in_head(self):
        """Heads may build sets from bound element variables."""
        from repro.core import SetExpr

        p = Program.of(
            fact(atom("q", a)),
            fact(atom("q", b)),
            horn(Atom("pair", (SetExpr((x, y)),)), atom("q", x), atom("q", y)),
        )
        m = solve(p)
        assert (frozenset({"a", "b"}),) in m.relation("pair")
        assert (frozenset({"a"}),) in m.relation("pair")

    def test_membership_generates_elements(self):
        p = Program.of(
            fact(atom("s", setvalue([a, b]))),
            horn(atom("elem", x), atom("s", X), member(x, X)),
        )
        m = solve(p)
        assert m.relation("elem") == {("a",), ("b",)}

    def test_builtin_heads_rejected(self):
        p = Program.of(horn(atom("plus", x, x, x), atom("q", x)))
        from repro.core import EvaluationError

        with pytest.raises(EvaluationError):
            Evaluator(p)


class TestQuantifiers:
    def test_subset_over_active_domain(self):
        p = Program.of(
            fact(atom("s", setvalue([a]))),
            fact(atom("s", setvalue([a, b]))),
            clause(atom("subset", X, Y), [(x, X)], [member(x, Y)]),
        )
        m = solve(p)
        rel = m.relation("subset")
        assert (frozenset({"a"}), frozenset({"a", "b"})) in rel
        assert (frozenset({"a", "b"}), frozenset({"a"})) not in rel
        # Reflexive pairs and the empty set appear too.
        assert (frozenset(), frozenset({"a"})) in rel

    def test_vacuous_branch_ignores_other_conjuncts(self):
        """Section 4.1: (∀x∈X)(q(y) ∧ p(x)) with X=∅ is true even though
        q(y) is false — the engine must derive the head for X=∅."""
        p = Program.of(
            fact(atom("s", setvalue([]))),
            fact(atom("d", a)),
            clause(
                atom("h", X, y),
                [(x, X)],
                [atom("qq", y), atom("p", x)],
            ),
        )
        m = solve(p)
        # For X=∅ the body holds for EVERY y in the active domain.
        assert m.holds(atom("h", setvalue([]), a))

    def test_nonvacuous_branch_respects_conjuncts(self):
        p = Program.of(
            fact(atom("s", setvalue([a]))),
            fact(atom("p", a)),
            clause(atom("h", X, y), [(x, X)], [atom("qq", y), atom("p", x)]),
        )
        m = solve(p)
        # X={a}: body requires qq(y) which never holds.
        assert not m.holds(atom("h", setvalue([a]), a))

    def test_agreement_with_reference_fixpoint(self):
        """Engine result == reference T_P lfp on the active-domain universe."""
        p = Program.of(
            fact(atom("p", a)),
            fact(atom("s", setvalue([a, b]))),
            fact(atom("s", setvalue([]))),
            clause(atom("allp", X), [(x, X)], [atom("p", x)]),
        )
        m = solve(p)
        u = Universe(
            (a, b), (setvalue([]), setvalue([a, b])),
        )
        ref = least_fixpoint(p, u).interpretation
        for at in ref:
            assert m.holds(at), f"engine missing {at}"
        for at in m.interpretation:
            # engine may know more sets (none here)
            assert ref.holds(at), f"engine over-derived {at}"


class TestNegation:
    def test_stratified_negation(self):
        p = Program.of(
            fact(atom("node", a)),
            fact(atom("node", b)),
            fact(atom("e", a, b)),
            horn(atom("reach", x), atom("e", a, x)),
            horn(atom("unreach", x), pos(atom("node", x)), neg(atom("reach", x))),
        )
        m = solve(p)
        assert m.relation("unreach") == {("a",)}

    def test_negation_on_builtin_style_atom(self):
        p = Program.of(
            fact(atom("q", a)),
            fact(atom("q", b)),
            horn(atom("p", x, y), pos(atom("q", x)), pos(atom("q", y)),
                 neg(equals(x, y))),
        )
        m = solve(p)
        assert m.relation("p") == {("a", "b"), ("b", "a")}


class TestGroupingEvaluation:
    def test_basic_grouping(self):
        p = Program.of(
            fact(atom("comp", a, b)),
            fact(atom("comp", a, c)),
            fact(atom("comp", b, c)),
            GroupingClause(
                pred="bom", head_args=(x,), group_pos=1, group_var=y,
                body=(pos(atom("comp", x, y)),),
            ),
        )
        m = solve(p)
        assert m.relation("bom") == {
            ("a", frozenset({"b", "c"})),
            ("b", frozenset({"c"})),
        }

    def test_grouping_feeds_higher_stratum(self):
        p = Program.of(
            fact(atom("comp", a, b)),
            GroupingClause(
                pred="bom", head_args=(x,), group_pos=1, group_var=y,
                body=(pos(atom("comp", x, y)),),
            ),
            horn(atom("width", x, z), atom("bom", x, X), atom("card", X, z)),
        )
        m = solve(p)
        assert m.relation("width") == {("a", 1)}

    def test_no_empty_groups(self):
        """LDL grouping derives heads only for matched bindings."""
        p = Program.of(
            fact(atom("item", a)),
            GroupingClause(
                pred="g", head_args=(x,), group_pos=1, group_var=y,
                body=(pos(atom("never", x, y)),),
            ),
        )
        m = solve(p)
        assert m.relation("g") == set()


class TestSemiNaive:
    def chain(self, n):
        clauses = [fact(atom("e", const(f"v{i}"), const(f"v{i+1}")))
                   for i in range(n)]
        clauses += [
            horn(atom("t", x, y), atom("e", x, y)),
            horn(atom("t", x, z), atom("e", x, y), atom("t", y, z)),
        ]
        return Program.of(*clauses)

    def test_agreement_on_closure(self):
        p = self.chain(12)
        m1 = solve(p, semi_naive=True)
        m2 = solve(p, semi_naive=False)
        assert m1.interpretation == m2.interpretation
        assert len(m1.relation("t")) == 12 * 13 // 2

    def test_agreement_with_quantified_rules(self):
        p = Program.of(
            fact(atom("s", setvalue([a, b]))),
            fact(atom("s", setvalue([c]))),
            clause(atom("disj", X, Y), [(x, X), (y, Y)],
                   [atom("neq", x, y)]),
            horn(atom("both", X, Y), atom("disj", X, Y), atom("disj", Y, X)),
        )
        m1 = solve(p, semi_naive=True)
        m2 = solve(p, semi_naive=False)
        assert m1.interpretation == m2.interpretation

    def test_fewer_rule_applications(self):
        def work(model):
            # Fact examinations across both execution paths: tuple-at-a-time
            # match attempts plus set-at-a-time scan/join row flow.
            return model.report.stats.matches + model.report.exec.rows_in

        p = self.chain(30)
        m1 = solve(p, semi_naive=True)
        m2 = solve(p, semi_naive=False)
        assert work(m1) < work(m2)

    def test_fewer_rule_applications_tuple_path(self):
        p = self.chain(30)
        m1 = solve(p, semi_naive=True, compile_plans=False)
        m2 = solve(p, semi_naive=False, compile_plans=False)
        assert m1.report.stats.matches < m2.report.stats.matches


class TestSafetyControls:
    def test_fallback_disabled_raises(self):
        p = Program.of(
            fact(atom("s", setvalue([a]))),
            clause(atom("subset", X, Y), [(x, X)], [member(x, Y)]),
        )
        with pytest.raises(SafetyError):
            solve(p, allow_fallback=False)

    def test_fallback_limit(self):
        from repro.core import EvaluationError

        facts = [fact(atom("s", setvalue([const(i)]))) for i in range(12)]
        p = Program.of(
            *facts,
            clause(atom("subset", X, Y), [(x, X)], [member(x, Y)]),
        )
        with pytest.raises(EvaluationError):
            solve(p, fallback_limit=10)

    def test_range_restricted_program_runs_without_fallback(self):
        p = Program.of(
            fact(atom("e", a, b)),
            horn(atom("t", x, y), atom("e", x, y)),
        )
        m = solve(p, allow_fallback=False)
        assert m.relation("t") == {("a", "b")}


class TestModelAPI:
    def test_query_bindings(self):
        p = Program.of(fact(atom("e", a, b)), fact(atom("e", a, c)))
        m = solve(p)
        rows = m.query_str("e(a, W)")
        assert {r["W"] for r in rows} == {"b", "c"}

    def test_holds_str_with_sets(self):
        p = Program.of(fact(atom("s", setvalue([a, b]))))
        m = solve(p)
        assert m.holds_str("s({a, b})")
        assert m.holds_str("s({b, a})")
        assert not m.holds_str("s({a})")

    def test_special_atoms_in_holds(self):
        m = solve(Program.of(fact(atom("p", a))))
        assert m.holds(equals(mkset(a), mkset(a)))
        assert m.holds(member(a, mkset(a, b)))

    def test_report_populated(self):
        p = Program.of(
            fact(atom("e", a, b)),
            horn(atom("t", x, y), atom("e", x, y)),
        )
        m = solve(p)
        assert m.report.rounds >= 1
        assert m.report.derived >= 2
        assert m.report.strata >= 1
