"""Section 4.2: set construction with stratified negation.

Theorem 8 says ``B(X) ⇔ X = {x | A(x)}`` is not definable with minimal-model
semantics alone; the paper then defines it with stratified negation via the
C/B construction.  We run that construction (compiled through Theorem 6)
and check it yields exactly the witness set — including as the A-extension
varies, the scenario of Theorem 8's probe."""

import pytest

from repro.core import Program, atom, const, fact, setvalue, var_a
from repro.engine import Evaluator
from repro.engine.setops import with_set_builtins
from repro.transform import setof_program, setof_rules

a, b, c = const("a"), const("b"), const("c")


def run(program: Program):
    return Evaluator(program, builtins=with_set_builtins()).run()


def b_sets(model) -> set:
    return {row[0] for row in model.relation("b")}


class TestConstruction:
    def test_rules_shape(self):
        rules = setof_rules("a_pred", "b_pred")
        assert len(rules) == 3  # ⊊, C, B
        # B's body uses negation (the closed-world step of Section 4.2).
        assert not rules[-1].body.is_positive()

    def test_exact_set(self):
        base = Program.of(fact(atom("a", a)), fact(atom("a", b)))
        program = setof_program("a", "b", base=base)
        m = run(program)
        assert b_sets(m) == {frozenset({"a", "b"})}

    def test_singleton(self):
        base = Program.of(fact(atom("a", a)))
        program = setof_program("a", "b", base=base)
        m = run(program)
        assert b_sets(m) == {frozenset({"a"})}

    def test_theorem8_probe_now_succeeds(self):
        """The P1/P2 probe from Theorem 8's proof: with stratified negation
        the answer tracks the A-extension — no contradiction."""
        p1 = Program.of(fact(atom("a", a)))
        p2 = Program.of(fact(atom("a", a)), fact(atom("a", b)))
        m1 = run(setof_program("a", "b", base=p1))
        m2 = run(setof_program("a", "b", base=p2))
        assert b_sets(m1) == {frozenset({"a"})}
        assert b_sets(m2) == {frozenset({"a", "b"})}
        # Non-monotone: B({a}) held under P1 and is GONE under P2 — the
        # behaviour minimal-model semantics cannot express.
        assert frozenset({"a"}) not in b_sets(m2)

    def test_derived_a_predicate(self):
        """A defined by rules (not just facts) still groups correctly."""
        from repro.core import horn, var_a

        x = var_a("x")
        base = Program.of(
            fact(atom("raw", a)),
            fact(atom("raw", c)),
            horn(atom("a", x), atom("raw", x)),
        )
        program = setof_program("a", "b", base=base)
        m = run(program)
        assert b_sets(m) == {frozenset({"a", "c"})}

    def test_no_candidates_no_answer(self):
        """Without candidate materialisation the maximal set may be missing
        from the domain; the construction then under-reports (documented
        active-domain caveat)."""
        base = Program.of(fact(atom("a", a)), fact(atom("a", b)))
        program = setof_program("a", "b", base=base,
                                materialise_candidates=False)
        m = run(program)
        # Only sets visible in the active domain can be B-candidates; with
        # no set values anywhere, nothing but ∅ is testable, and ∅ fails
        # maximality against… nothing bigger in-domain, so B(∅) may hold.
        assert all(s == frozenset() for s in b_sets(m))

    def test_stratification_of_output(self):
        from repro.engine.stratify import is_stratified

        base = Program.of(fact(atom("a", a)))
        assert is_stratified(setof_program("a", "b", base=base))
