"""Theorem 10: ELPS ≡ Horn + union ≡ Horn + scons.

Each direction is tested by running both sides and comparing the extensions
of the common (original-language) predicates:

* Horn+union / Horn+scons programs run on the engine with the Definition 15
  builtins (their fixed interpretation);
* their ELPS translations run WITHOUT those builtins — ``union``/``scons``
  have been renamed and axiomatised in pure ELPS;
* ELPS programs with quantifier prefixes are iterated away into recursive
  Horn clauses over union/scons and compared against the original.
"""

import pytest

from repro.core import (
    Program,
    atom,
    clause,
    const,
    fact,
    horn,
    member,
    pos,
    setvalue,
    var_a,
    var_s,
)
from repro.engine import Evaluator, solve
from repro.engine.builtins import default_builtins
from repro.engine.evaluation import EvalOptions
from repro.engine.setops import with_set_builtins
from repro.transform import (
    from_horn_scons,
    from_horn_union,
    to_horn_scons,
    to_horn_union,
)

x, y, z = var_a("x"), var_a("y"), var_a("z")
X, Y, Z = var_s("X"), var_s("Y"), var_s("Z")
a, b, c = const("a"), const("b"), const("c")


def run_with_setops(program: Program):
    return Evaluator(program, builtins=with_set_builtins()).run()


def run_pure(program: Program):
    return Evaluator(program, builtins=default_builtins()).run()


class TestFromHornUnion:
    """Horn + union → ELPS (Theorem 10(1))."""

    def horn_union_program(self) -> Program:
        return Program.of(
            fact(atom("s", setvalue([a]))),
            fact(atom("s", setvalue([b]))),
            fact(atom("s", setvalue([a, c]))),
            horn(atom("u", X, Y, Z), atom("s", X), atom("s", Y),
                 atom("union", X, Y, Z)),
        )

    def test_union_head_rejected(self):
        from repro.core import ClauseError

        bad = Program.of(horn(atom("union", X, Y, Z), atom("s", X)))
        with pytest.raises(ClauseError):
            from_horn_union(bad)

    def test_translation_has_no_union_predicate(self):
        translated = from_horn_union(self.horn_union_program())
        assert "union" not in translated.predicates()

    def test_extension_agreement(self):
        """Theorem 10(1) equivalence, with one active-domain caveat made
        explicit: the union BUILTIN constructs new set values, while the
        pure-ELPS axiomatisation can only relate sets already in the
        (finite) active domain.  Over the full Herbrand universe — here,
        after seeding the candidate union sets into the domain with inert
        facts — the extensions agree exactly."""
        original = self.horn_union_program()
        m1 = run_with_setops(original)
        union_sets = {row[2] for row in m1.relation("u")}
        seed = Program.of(*(
            fact(atom("domset", __import__("repro.engine.database",
                                           fromlist=["to_term"]).to_term(s)))
            for s in sorted(union_sets, key=str)
        ))
        m2 = run_pure(from_horn_union(original) + seed)
        assert m1.relation("u") == m2.relation("u")
        assert m1.relation("u")  # non-trivial

    def test_agreement_on_common_domain_without_seeding(self):
        """Without seeding, the translation agrees on all sets it can see."""
        original = self.horn_union_program()
        m1 = run_with_setops(original)
        m2 = run_pure(from_horn_union(original))
        assert m2.relation("u") <= m1.relation("u")
        domain_sets = {frozenset({"a"}), frozenset({"b"}),
                       frozenset({"a", "c"})}
        r1 = {t for t in m1.relation("u") if t[2] in domain_sets}
        r2 = {t for t in m2.relation("u") if t[2] in domain_sets}
        assert r1 == r2

    def test_union_values_materialise(self):
        """The translated program must still relate the DERIVED union sets;
        they exist in the active domain because the original program's
        facts and the builtin's outputs put them there."""
        m = run_with_setops(self.horn_union_program())
        assert (frozenset({"a"}), frozenset({"b"}),
                frozenset({"a", "b"})) in m.relation("u")


class TestFromHornScons:
    """Horn + scons → ELPS (Theorem 10(2))."""

    def horn_scons_program(self) -> Program:
        return Program.of(
            fact(atom("s", setvalue([a, b]))),
            fact(atom("e", c)),
            horn(atom("grown", Z), atom("e", x), atom("s", Y),
                 atom("scons", x, Y, Z)),
        )

    def test_extension_agreement(self):
        original = self.horn_scons_program()
        m1 = run_with_setops(original)
        grown_sets = {row[0] for row in m1.relation("grown")}
        seed = Program.of(*(
            fact(atom("domset", __import__("repro.engine.database",
                                           fromlist=["to_term"]).to_term(s)))
            for s in sorted(grown_sets, key=str)
        ))
        m2 = run_pure(from_horn_scons(original) + seed)
        assert m1.relation("grown") == m2.relation("grown")
        assert m1.relation("grown") == {(frozenset({"a", "b", "c"}),)}


class TestToHorn:
    """ELPS → Horn + union / Horn + scons (Theorem 10(3)/(4))."""

    def elps_program(self) -> Program:
        return Program.of(
            fact(atom("s", setvalue([a]))),
            fact(atom("s", setvalue([a, b]))),
            fact(atom("s", setvalue([]))),
            fact(atom("p", a)),
            clause(atom("allp", X), [(x, X)], [atom("p", x)]),
            clause(atom("subs", X, Y), [(x, X)], [member(x, Y)]),
        )

    @pytest.mark.parametrize("translate", [to_horn_union, to_horn_scons])
    def test_no_quantifiers_remain(self, translate):
        out = translate(self.elps_program())
        for cl in out.lps_clauses():
            assert not cl.quantifiers

    @pytest.mark.parametrize("translate,uses", [
        (to_horn_union, "union"),
        (to_horn_scons, "scons"),
    ])
    def test_uses_decomposition_predicate(self, translate, uses):
        out = translate(self.elps_program())
        body_preds = {
            l.atom.pred for cl in out.lps_clauses() for l in cl.body
        }
        assert uses in body_preds

    @pytest.mark.parametrize("translate", [to_horn_union, to_horn_scons])
    def test_extension_agreement(self, translate):
        original = self.elps_program()
        m1 = run_pure(original)
        out = translate(original)
        m2 = run_with_setops(out)
        for pred in ("allp", "subs"):
            assert m1.relation(pred) <= m2.relation(pred), pred
        # The translated program may additionally relate sets that only
        # arise as decomposition intermediates; on the original program's
        # sets the extensions must agree exactly.
        orig_sets = {frozenset({"a"}), frozenset({"a", "b"}), frozenset()}
        r1 = {t for t in m1.relation("allp") if t[0] in orig_sets}
        r2 = {t for t in m2.relation("allp") if t[0] in orig_sets}
        assert r1 == r2

    @pytest.mark.parametrize("translate", [to_horn_union, to_horn_scons])
    def test_empty_set_base_case(self, translate):
        """Our ∅ base case covers vacuous quantification, which the
        paper's singleton base misses (see module docstring in
        repro.transform.union_scons)."""
        original = self.elps_program()
        out = translate(original)
        m = run_with_setops(out)
        assert m.holds(atom("allp", setvalue([])))
        assert m.holds(atom("subs", setvalue([]), setvalue([])))

    def test_round_trip(self):
        """ELPS → Horn+union → ELPS preserves the original predicates."""
        original = self.elps_program()
        there = to_horn_union(original)
        back = from_horn_union(there)
        m1 = run_pure(original)
        m2 = run_pure(back)
        orig_sets = {frozenset({"a"}), frozenset({"a", "b"}), frozenset()}
        r1 = {t for t in m1.relation("allp") if t[0] in orig_sets}
        r2 = {t for t in m2.relation("allp") if t[0] in orig_sets}
        assert r1 == r2


class TestMultipleQuantifiers:
    def test_two_quantifier_elimination(self):
        original = Program.of(
            fact(atom("s", setvalue([a]))),
            fact(atom("s", setvalue([b]))),
            fact(atom("s", setvalue([a, b]))),
            fact(atom("s", setvalue([]))),
            clause(atom("disj", X, Y), [(x, X), (y, Y)],
                   [atom("neq", x, y)]),
        )
        m1 = run_pure(original)
        for translate in (to_horn_union, to_horn_scons):
            out = translate(original)
            m2 = run_with_setops(out)
            orig_sets = {frozenset({"a"}), frozenset({"b"}),
                         frozenset({"a", "b"}), frozenset()}
            r1 = {t for t in m1.relation("disj")
                  if t[0] in orig_sets and t[1] in orig_sets}
            r2 = {t for t in m2.relation("disj")
                  if t[0] in orig_sets and t[1] in orig_sets}
            assert r1 == r2
            assert (frozenset({"a"}), frozenset({"b"})) in r2
            assert (frozenset({"a"}), frozenset({"a", "b"})) not in r2
